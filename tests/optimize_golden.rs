//! Golden tests for the semantics-preserving dependency rewriter:
//!
//! * the shipped example bundles and the paper workloads are already
//!   irredundant — the optimizer must return them unchanged (in
//!   particular, the *repaired* Theorem 3 clique reduction must survive
//!   with its added consistency tgd intact, not be "simplified" back to
//!   the paper's too-weak literal form);
//! * a deliberately padded setting produces an exact, stable certificate
//!   (golden JSON), which round-trips through `from_json` and is rejected
//!   by `verify_rewrite` as soon as any recorded fact is tampered with.

use pde_analysis::{
    forward_schedule, optimize_setting, verify_rewrite, RewriteCertificate, RewriteError,
};
use peer_data_exchange::core::Bundle;
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::{boundary, clique, genomics, graphs};

fn assert_unchanged(name: &str, setting: &PdeSetting, input: &Instance) {
    let opt = optimize_setting(setting, input);
    assert!(
        opt.certificate.actions.is_empty(),
        "{name}: expected no rewrite actions, got {:?}",
        opt.certificate.actions
    );
    assert_eq!(
        opt.certificate.before, opt.certificate.after,
        "{name}: counts must not change"
    );
    assert_eq!(
        opt.optimized.sigma_st(),
        setting.sigma_st(),
        "{name}: Σst must survive verbatim"
    );
    assert_eq!(
        opt.optimized.sigma_ts(),
        setting.sigma_ts(),
        "{name}: Σts must survive verbatim"
    );
    assert_eq!(
        opt.optimized.sigma_t(),
        setting.sigma_t(),
        "{name}: Σt must survive verbatim"
    );
    verify_rewrite(setting, input, &opt.certificate)
        .unwrap_or_else(|e| panic!("{name}: certificate re-verification failed: {e:?}"));
    let n = pde_analysis::forward_dependencies(setting).len();
    assert!(
        forward_schedule(&opt.optimized).is_partition_of(n),
        "{name}: schedule must partition the forward dependencies"
    );
}

#[test]
fn example_bundles_rewrite_to_themselves() {
    for name in ["triangle", "divergent"] {
        let path = format!("{}/examples/{name}.pde", env!("CARGO_MANIFEST_DIR"));
        let src = std::fs::read_to_string(&path).unwrap();
        let bundle = Bundle::parse(&src).unwrap();
        assert_unchanged(name, &bundle.setting, &bundle.input);
    }
}

#[test]
fn repaired_clique_reduction_survives_unweakened() {
    // The corrected Theorem 3 setting carries a third Σts consistency tgd
    // the paper omits; it is neither a duplicate nor subsumed by the other
    // two, and the optimizer must keep it — weakening it would silently
    // reintroduce the paper's incomplete reduction.
    let p = clique::clique_setting();
    let g = graphs::Graph::complete(4);
    let input = clique::clique_instance(&p, &g, 3);
    assert_unchanged("clique", &p, &input);
    assert_eq!(
        p.sigma_ts().len(),
        3,
        "the repaired reduction has 3 Σts tgds"
    );
}

#[test]
fn boundary_and_genomics_workloads_survive_unweakened() {
    let p = boundary::egd_boundary_setting();
    let input = boundary::egd_boundary_instance(&p, &graphs::Graph::cycle(5), 3);
    assert_unchanged("egd-boundary", &p, &input);

    let p = genomics::genomics_setting();
    let params = genomics::GenomicsParams {
        proteins: 8,
        preloaded: 2,
        ..Default::default()
    };
    let input = genomics::genomics_instance(&p, &params);
    assert_unchanged("genomics", &p, &input);
}

/// A setting padded with every kind of redundancy the rewriter removes:
/// an alpha-renamed duplicate, a subsumed tgd, a trivial egd, and a
/// target tgd reading a relation no chase can populate.
fn padded() -> (PdeSetting, Instance) {
    let setting = PdeSetting::parse(
        "source E/2; target G/2; target H/2; target K/2;",
        "E(x, y) -> H(x, y);
         E(u, v) -> H(u, v);
         E(x, y), E(y, z) -> H(x, y)",
        "H(x, y) -> E(x, y)",
        "H(x, y) -> x = x;
         G(x, y) -> K(x, y)",
    )
    .unwrap();
    let input = parse_instance(setting.schema(), "E(a, b). E(b, c).").unwrap();
    (setting, input)
}

#[test]
fn padded_setting_produces_the_golden_certificate() {
    let (setting, input) = padded();
    let opt = optimize_setting(&setting, &input);
    // Σst keeps only the first copy: #1 is an alpha-renamed duplicate of
    // #0, #2 is subsumed by #0. Σt loses the trivial egd and the dead
    // G-reader; G is empty in the input and no surviving tgd concludes it.
    let golden = concat!(
        "{\"v\":1,\"kind\":\"pde-rewrite-certificate\",",
        "\"input_nonempty\":[\"E\"],\"dead_relations\":[\"G\",\"K\"],",
        "\"before\":{\"sigma_st\":3,\"sigma_ts\":1,\"sigma_t\":2},",
        "\"after\":{\"sigma_st\":1,\"sigma_ts\":1,\"sigma_t\":0},",
        "\"actions\":[",
        "{\"action\":\"remove-duplicate\",\"group\":\"sigma_st\",\"index\":1,\"kept\":0},",
        "{\"action\":\"remove-subsumed\",\"group\":\"sigma_st\",\"index\":2,\"by\":0},",
        "{\"action\":\"remove-trivial-egd\",\"group\":\"sigma_t\",\"index\":0},",
        "{\"action\":\"remove-dead\",\"group\":\"sigma_t\",\"index\":1,\"relation\":\"G\"}",
        "]}"
    );
    assert_eq!(opt.certificate.to_json(), golden);
    verify_rewrite(&setting, &input, &opt.certificate).unwrap();

    // Round-trip through the serialized form.
    let parsed = RewriteCertificate::from_json(&opt.certificate.to_json()).unwrap();
    assert_eq!(parsed, opt.certificate);
    verify_rewrite(&setting, &input, &parsed).unwrap();
}

#[test]
fn verify_rewrite_rejects_tampered_certificates() {
    let (setting, input) = padded();
    let cert = optimize_setting(&setting, &input).certificate;
    let json = cert.to_json();
    // Each tampering flips one recorded fact; all must be caught by the
    // independent checker, not trusted from the certificate.
    let tamperings = [
        // Claim a different original shape.
        ("\"before\":{\"sigma_st\":3", "\"before\":{\"sigma_st\":4"),
        // Claim the subsumed tgd was justified by a different survivor.
        ("\"by\":0", "\"by\":1"),
        // Drop a dead relation the actions still rely on.
        (
            "\"dead_relations\":[\"G\",\"K\"]",
            "\"dead_relations\":[\"K\"]",
        ),
        // Pretend the populatability seed was different.
        (
            "\"input_nonempty\":[\"E\"]",
            "\"input_nonempty\":[\"E\",\"G\"]",
        ),
        // Remove one action but keep the counts.
        (
            "{\"action\":\"remove-trivial-egd\",\"group\":\"sigma_t\",\"index\":0},",
            "",
        ),
    ];
    for (from, to) in tamperings {
        let bad = json.replacen(from, to, 1);
        assert_ne!(bad, json, "tampering '{from}' must apply");
        let parsed = RewriteCertificate::from_json(&bad).unwrap();
        assert!(
            verify_rewrite(&setting, &input, &parsed).is_err(),
            "tampering '{from}' -> '{to}' must be rejected"
        );
    }
    // A certificate for one input must not verify against another whose
    // nonempty relations differ.
    let other = parse_instance(setting.schema(), "E(a, b). G(a, b).").unwrap();
    assert!(matches!(
        verify_rewrite(&setting, &other, &cert),
        Err(RewriteError::Mismatch(_))
    ));
}
