//! Telemetry integration tests over the in-process serve loop:
//!
//! * golden test for the versioned access-log record schema — one
//!   `pde-access` line per request, keyed by the monotone request id,
//!   with wall-clock durations scrubbed;
//! * span sampling (`trace_sample`) interleaves `pde-span-sample` lines
//!   for exactly the sampled ids;
//! * property test: over random request sequences — including invalid,
//!   panicking (fault-injection builds), and over-budget ones — the
//!   `serve.request_ns` histogram count equals the `serve.requests`
//!   counter, and the per-kind histogram counts partition it.

use peer_data_exchange::core::Bundle;
use peer_data_exchange::serve::{serve, ServeOptions};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

fn bundle() -> Bundle {
    Bundle::parse(
        "%schema\nsource E/2; target H/2;\n%st\nE(x, z), E(z, y) -> H(x, y)\n\
         %ts\nH(x, y) -> E(x, y)\n%t\n%instance\nE(a, a).\n",
    )
    .unwrap()
}

/// A unique scratch directory; callers remove it when the test passes.
fn temp_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("pde-telemetry-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Run one in-process serve session over `script`; returns the response
/// lines and the store directory (which also holds flight dumps).
fn run_serve(
    tag: &str,
    script: &str,
    configure: impl FnOnce(&mut ServeOptions),
) -> (Vec<String>, PathBuf) {
    let store = temp_dir(tag);
    let mut options = ServeOptions {
        store_dir: store.to_string_lossy().into_owned(),
        timeout: None,
        memory_limit: None,
        stats: false,
        access_log: None,
        trace_sample: 0,
    };
    configure(&mut options);
    let mut out: Vec<u8> = Vec::new();
    serve(&bundle(), &options, script.as_bytes(), &mut out).unwrap();
    let lines = String::from_utf8(out)
        .unwrap()
        .lines()
        .map(str::to_owned)
        .collect();
    (lines, store)
}

/// Replace the digits after `"<key>":` with `N` for every listed key.
/// Durations are wall-clock noise; every other access-record field is
/// deterministic for a fixed script and gets pinned exactly.
fn scrub(line: &str, keys: &[&str]) -> String {
    let mut out = line.to_owned();
    for key in keys {
        let pat = format!("\"{key}\":");
        let mut scrubbed = String::new();
        let mut rest = out.as_str();
        while let Some(at) = rest.find(&pat) {
            let end = at + pat.len();
            scrubbed.push_str(&rest[..end]);
            scrubbed.push('N');
            rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
        }
        scrubbed.push_str(rest);
        out = scrubbed;
    }
    out
}

/// Extract the integer after `"<name>":` (counters, ids).
fn counter(line: &str, name: &str) -> u64 {
    let pat = format!("\"{name}\":");
    let at = line
        .find(&pat)
        .unwrap_or_else(|| panic!("no {name} in: {line}"));
    line[at + pat.len()..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("non-numeric {name} in: {line}"))
}

/// All `serve.request_ns*` histogram names with their counts, scanned
/// from a `metrics` JSON fragment.
fn request_histogram_counts(line: &str) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(at) = rest.find("\"serve.request_ns") {
        let name_start = at + 1;
        let tail = &rest[name_start..];
        let name_len = tail.find('"').expect("histogram name closes");
        let name = tail[..name_len].to_string();
        let after = &tail[name_len..];
        if let Some(stripped) = after.strip_prefix("\":{\"count\":") {
            let digits: String = stripped.chars().take_while(char::is_ascii_digit).collect();
            out.push((name, digits.parse().expect("count is numeric")));
        }
        rest = &rest[name_start..];
    }
    out
}

#[test]
fn access_log_golden_one_record_per_request_keyed_by_id() {
    let log = temp_dir("access-golden").with_extension("jsonl");
    let (responses, store) = run_serve(
        "access-golden",
        concat!(
            "{\"op\":\"insert\",\"facts\":\"E(a, b).\"}\n",
            "{\"op\":\"solve\"}\n",
            "this is not a request\n",
            "{\"op\":\"certain\",\"query\":\"q() :- H(x, y)\"}\n",
            "{\"op\":\"stats\"}\n",
        ),
        |o| o.access_log = Some(log.to_string_lossy().into_owned()),
    );
    assert_eq!(responses.len(), 6, "hello + five responses: {responses:?}");

    let text = std::fs::read_to_string(&log).unwrap();
    let records: Vec<&str> = text.lines().collect();
    assert_eq!(records.len(), 5, "one record per request:\n{text}");

    // Records are keyed by the monotone request id, in arrival order,
    // matching the ids echoed in the responses.
    for (i, rec) in records.iter().enumerate() {
        let id = u64::try_from(i).unwrap() + 1;
        assert_eq!(counter(rec, "id"), id, "record: {rec}");
        assert_eq!(counter(&responses[i + 1], "id"), id, "{}", responses[i + 1]);
    }

    // The schema golden: versioned records, durations scrubbed. Byte
    // counts are the exact request/response line lengths and stay pinned.
    let scrubbed: Vec<String> = records
        .iter()
        .map(|r| scrub(r, &["total_ns", "chase_ns", "solve_ns"]))
        .collect();
    let expect = [
        "{\"v\":1,\"kind\":\"pde-access\",\"id\":1,\"op\":\"insert\",\"result\":\"ok\",\
         \"status\":0,\"total_ns\":N,\"chase_ns\":N,\"solve_ns\":N,\"governor\":\"none\",\
         \"epoch\":2,\"bytes_in\":34,\"bytes_out\":55}",
        "{\"v\":1,\"kind\":\"pde-access\",\"id\":2,\"op\":\"solve\",\"result\":\"yes\",\
         \"status\":0,\"total_ns\":N,\"chase_ns\":N,\"solve_ns\":N,\"governor\":\"none\",\
         \"epoch\":2,\"bytes_in\":14,\"bytes_out\":56}",
        "{\"v\":1,\"kind\":\"pde-access\",\"id\":3,\"op\":\"invalid\",\"result\":\"error\",\
         \"status\":2,\"total_ns\":N,\"chase_ns\":N,\"solve_ns\":N,\"governor\":\"none\",\
         \"epoch\":2,\"bytes_in\":21,\"bytes_out\":75}",
        "{\"v\":1,\"kind\":\"pde-access\",\"id\":4,\"op\":\"certain\",\"result\":\"yes\",\
         \"status\":0,\"total_ns\":N,\"chase_ns\":N,\"solve_ns\":N,\"governor\":\"none\",\
         \"epoch\":2,\"bytes_in\":41,\"bytes_out\":104}",
    ];
    for (got, want) in scrubbed.iter().zip(expect.iter()) {
        assert_eq!(got, want);
    }
    // The stats record's response length varies with the histogram
    // payload; pin everything before the byte counts.
    assert!(
        scrubbed[4].starts_with(
            "{\"v\":1,\"kind\":\"pde-access\",\"id\":5,\"op\":\"stats\",\"result\":\"ok\",\
             \"status\":0,\"total_ns\":N,\"chase_ns\":N,\"solve_ns\":N,\"governor\":\"none\",\
             \"epoch\":2,\"bytes_in\":14,\"bytes_out\":"
        ),
        "record: {}",
        scrubbed[4]
    );

    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_file(&log);
}

#[test]
fn trace_sampling_interleaves_span_lines_for_sampled_ids_only() {
    let log = temp_dir("sample").with_extension("jsonl");
    let (_, store) = run_serve(
        "sample",
        "{\"op\":\"solve\"}\n{\"op\":\"solve\"}\n{\"op\":\"solve\"}\n{\"op\":\"solve\"}\n",
        |o| {
            o.access_log = Some(log.to_string_lossy().into_owned());
            o.trace_sample = 2;
        },
    );
    let text = std::fs::read_to_string(&log).unwrap();
    let mut sampled_ids = Vec::new();
    for line in text.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "line: {line}");
        if line.contains("\"kind\":\"pde-span-sample\"") {
            assert!(line.contains("\"v\":1"), "line: {line}");
            sampled_ids.push(counter(line, "id"));
        }
    }
    // Every 2nd request is sampled; the tractable fast path emits spans
    // for each (chase refresh + homomorphism check).
    assert!(!sampled_ids.is_empty(), "no samples in:\n{text}");
    assert!(
        sampled_ids.iter().all(|id| id % 2 == 0),
        "sampled ids {sampled_ids:?} in:\n{text}"
    );
    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_file(&log);
}

/// One random request line. Variant 5 injects a panic, which the
/// fault-injection build turns into an isolated panic mid-solve and the
/// regular build rejects in-band — either way it must be counted.
fn request_line(variant: u8) -> &'static str {
    match variant {
        0 => "{\"op\":\"insert\",\"facts\":\"E(a, b).\"}",
        1 => "{\"op\":\"solve\"}",
        2 => "{\"op\":\"certain\",\"query\":\"q() :- H(x, y)\"}",
        3 => "{\"op\":\"stats\"}",
        4 => "definitely not json",
        _ => "{\"op\":\"solve\",\"inject_panic_at\":0}",
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn histogram_counts_equal_the_request_counter(
        ops in prop::collection::vec(0u8..6, 1..10),
        budget in 0u8..2,
    ) {
        let mut script = String::new();
        for v in &ops {
            script.push_str(request_line(*v));
            script.push('\n');
        }
        // A final stats request reads back the session metrics; it is
        // itself a request and must appear in its own histogram.
        script.push_str("{\"op\":\"stats\"}\n");

        let (responses, store) = run_serve("prop", &script, |o| {
            if budget == 1 {
                // Over-budget sessions: every solve stops undecided.
                o.timeout = Some(Duration::from_nanos(1));
            }
        });
        let stats = responses.last().expect("stats response");
        let total_requests = u64::try_from(ops.len()).unwrap() + 1;
        prop_assert_eq!(counter(stats, "serve.requests"), total_requests);

        let hists = request_histogram_counts(stats);
        let overall: u64 = hists
            .iter()
            .filter(|(n, _)| n == "serve.request_ns")
            .map(|(_, c)| *c)
            .sum();
        let per_kind: u64 = hists
            .iter()
            .filter(|(n, _)| n.starts_with("serve.request_ns."))
            .map(|(_, c)| *c)
            .sum();
        prop_assert_eq!(overall, total_requests, "stats: {}", stats);
        prop_assert_eq!(per_kind, total_requests, "stats: {}", stats);
        let _ = std::fs::remove_dir_all(&store);
    }
}
