//! Integration tests for the resilient execution layer (`pde-runtime`):
//!
//! * a governed run that trips a deadline / memory budget / cancellation
//!   mid-chase reports a structured `Undecided { reason }` — never a wrong
//!   answer — and leaves the caller's input `Instance` unmodified;
//! * under deterministic fault injection (`--features fault-injection`),
//!   every `FaultPlan` point yields either the oracle's answer (after the
//!   naive-engine retry) or a structured stop — zero wrong answers, zero
//!   escaped panics, across random weakly acyclic settings and all four
//!   solver routes.

use pde_core::SolvePlan;
use peer_data_exchange::prelude::*;
use std::time::Duration;

/// A chase-heavy tractable-shaped setting: transitive closure over the
/// target copy of a cycle, so the governed chase has real rounds to be
/// interrupted in.
fn transitive_setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, y) -> H(x, y)",
        "",
        "H(x, y), H(y, z) -> H(x, z)",
    )
    .unwrap()
}

/// A cycle v0 -> v1 -> ... -> v{n-1} -> v0 over `E`.
fn cycle_input(setting: &PdeSetting, n: usize) -> Instance {
    let mut src = String::new();
    for i in 0..n {
        src.push_str(&format!("E(v{}, v{}). ", i, (i + 1) % n));
    }
    parse_instance(setting.schema(), &src).unwrap()
}

/// Equality check for ground-ish instances: identical fact sets.
fn same_instance(a: &Instance, b: &Instance) -> bool {
    a.fact_count() == b.fact_count() && a.contained_in(b) && b.contained_in(a)
}

/// Run `decide_governed` under `config` and assert the structured-undecided
/// contract: no answer, the expected stop reason, and an untouched input.
fn assert_undecided(
    config: GovernorConfig,
    expect: impl Fn(&StopReason) -> bool,
) -> peer_data_exchange::core::SolveReport {
    let setting = transitive_setting();
    let input = cycle_input(&setting, 6);
    let snapshot = input.clone();
    let governor = Governor::new(config);
    let plan = SolvePlan::for_setting(&setting);
    let report = decide_governed(&setting, &input, &plan, &governor).unwrap();
    assert_eq!(report.exists, None, "budget stop must not answer");
    assert!(report.witness.is_none());
    let reason = report.undecided.as_ref().expect("structured stop reason");
    assert!(expect(reason), "unexpected stop reason: {reason}");
    assert!(
        same_instance(&input, &snapshot),
        "governed run modified the caller's input"
    );
    assert!(report.governor.stops >= 1);
    assert!(report.governor.checks >= 1);
    report
}

#[test]
fn deadline_mid_chase_is_undecided_and_input_untouched() {
    let report = assert_undecided(
        GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        },
        |r| matches!(r, StopReason::DeadlineExceeded { .. }),
    );
    // An expired deadline reports no remaining time.
    assert_eq!(report.governor.deadline_remaining, Some(Duration::ZERO));
}

#[test]
fn memory_budget_is_undecided_and_input_untouched() {
    let report = assert_undecided(
        GovernorConfig {
            memory_budget_bytes: Some(1),
            ..GovernorConfig::default()
        },
        |r| matches!(r, StopReason::MemoryExhausted { .. }),
    );
    assert!(
        report.governor.peak_bytes > 1,
        "observed footprint recorded"
    );
}

#[test]
fn cancellation_is_undecided_and_input_untouched() {
    let token = CancelToken::new();
    token.cancel();
    let report = assert_undecided(
        GovernorConfig {
            cancel: Some(token),
            ..GovernorConfig::default()
        },
        |r| matches!(r, StopReason::Cancelled),
    );
    assert!(report.governor.cancellations_observed >= 1);
}

#[test]
fn ungoverned_decide_is_unaffected() {
    // The same setting decides fine with no budgets: the governed plumbing
    // is pay-for-what-you-use.
    let setting = transitive_setting();
    let input = cycle_input(&setting, 6);
    let report = decide(&setting, &input).unwrap();
    assert_eq!(report.exists, Some(true));
}

/// The deterministic fault-injection matrix (ISSUE 4 acceptance): every
/// `FaultPlan` point, driven across random weakly acyclic settings (and so
/// across all solver routes), produces either the ungoverned oracle's
/// answer or a structured stop. Zero wrong answers, zero escaped panics.
#[cfg(feature = "fault-injection")]
mod faults {
    use super::*;
    use peer_data_exchange::core::SolveError;
    use peer_data_exchange::runtime::FaultPlan;
    use peer_data_exchange::workloads::random::{
        random_instance, random_weakly_acyclic_setting, RandomSettingParams,
    };

    /// One armed plan per fault point, plus the deadline such a plan needs
    /// to surface (clock skew only matters under a deadline).
    fn fault_matrix() -> Vec<(FaultPlan, Option<Duration>)> {
        vec![
            (
                FaultPlan {
                    fail_alloc_at_step: Some(1),
                    ..FaultPlan::default()
                },
                None,
            ),
            (
                FaultPlan {
                    cancel_at_round: Some(1),
                    ..FaultPlan::default()
                },
                None,
            ),
            (
                FaultPlan {
                    panic_in_trigger_at_step: Some(1),
                    ..FaultPlan::default()
                },
                None,
            ),
            (
                FaultPlan {
                    clock_skip_at_round: Some((1, Duration::from_secs(7200))),
                    ..FaultPlan::default()
                },
                Some(Duration::from_secs(3600)),
            ),
        ]
    }

    #[test]
    fn every_fault_point_is_contained_across_random_settings() {
        let params = RandomSettingParams::default();
        for seed in 0..64u64 {
            for n_t in 0..3u32 {
                let Ok(setting) = random_weakly_acyclic_setting(&params, n_t, seed) else {
                    continue; // rare degenerate draw
                };
                let input = random_instance(&setting, 4, 0, 3, seed ^ 0xfa17);
                let snapshot = input.clone();
                let plan = SolvePlan::for_setting(&setting);
                let Ok(oracle) = decide_with_plan(&setting, &input, &plan) else {
                    continue; // oracle precondition failures are out of scope
                };
                for (fault, deadline) in fault_matrix() {
                    let governor = peer_data_exchange::runtime::Governor::with_faults(
                        GovernorConfig {
                            deadline,
                            ..GovernorConfig::default()
                        },
                        fault.clone(),
                    );
                    match decide_governed(&setting, &input, &plan, &governor) {
                        Ok(report) => match report.exists {
                            // A decided governed run must agree with the
                            // oracle whenever the oracle decided too.
                            Some(answer) => {
                                if let Some(expected) = oracle.exists {
                                    assert_eq!(
                                        answer, expected,
                                        "wrong answer under {fault:?} (seed {seed}, n_t {n_t}, \
                                         solver {:?})",
                                        plan.kind
                                    );
                                }
                            }
                            // Otherwise the stop must be structured.
                            None => {
                                assert!(
                                    report.undecided.is_some(),
                                    "unstructured non-answer under {fault:?} (seed {seed})"
                                );
                            }
                        },
                        // A contained panic is an acceptable structured
                        // failure; anything else is not.
                        Err(SolveError::Engine(_)) => {}
                        Err(other) => {
                            panic!("unexpected error under {fault:?} (seed {seed}): {other}")
                        }
                    }
                    assert!(
                        super::same_instance(&input, &snapshot),
                        "fault run modified the caller's input ({fault:?}, seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn alloc_and_panic_faults_degrade_to_the_naive_engine() {
        // On the chase-heavy transitive setting the step-indexed faults
        // always fire in the semi-naive engine; the retry on the naive
        // oracle engine must still produce the true answer.
        let setting = super::transitive_setting();
        let input = super::cycle_input(&setting, 5);
        let plan = SolvePlan::for_setting(&setting);
        let oracle = decide_with_plan(&setting, &input, &plan).unwrap();
        assert_eq!(oracle.exists, Some(true));
        for fault in [
            FaultPlan {
                fail_alloc_at_step: Some(1),
                ..FaultPlan::default()
            },
            FaultPlan {
                panic_in_trigger_at_step: Some(1),
                ..FaultPlan::default()
            },
        ] {
            let governor = peer_data_exchange::runtime::Governor::with_faults(
                GovernorConfig::default(),
                fault.clone(),
            );
            let report = decide_governed(&setting, &input, &plan, &governor).unwrap();
            assert_eq!(report.exists, oracle.exists, "under {fault:?}");
            assert!(report.engine_fallback, "retry expected under {fault:?}");
        }
    }
}
