//! Golden lint tests: each paper workload triggers exactly the diagnostic
//! codes its complexity classification predicts.
//!
//! Assertions pin the *warning-and-above* code multiset. `Note`-level
//! diagnostics (e.g. `PDE018` wildcard hints on projection tgds) are
//! deliberately unconstrained: they never affect exit codes and may grow
//! as the analyzer learns new hints.

use pde_analysis::{
    analyze_disjunctive, analyze_setting, AnalysisInput, Code, Diagnostic, Group, RenderContext,
    Severity,
};
use pde_constraints::parser::parse_dependencies;
use pde_core::split_sections;
use pde_relational::parse_schema;
use pde_workloads::{boundary, clique, paper, threecol};
use std::sync::Arc;

/// The codes of all diagnostics at `Warning` severity or above, in the
/// analyzer's deterministic order.
fn warnings_of(diags: &[Diagnostic]) -> Vec<Code> {
    diags
        .iter()
        .filter(|d| d.severity >= Severity::Warning)
        .map(|d| d.code)
        .collect()
}

#[test]
fn example1_is_clean() {
    let diags = analyze_setting(&paper::example1_setting());
    assert_eq!(warnings_of(&diags), vec![], "diagnostics: {diags:?}");
}

#[test]
fn clique_setting_violates_ctract() {
    let diags = analyze_setting(&clique::clique_setting());
    let warnings = warnings_of(&diags);
    assert!(
        warnings.contains(&Code::OutsideCtract),
        "expected PDE002, got {warnings:?}"
    );
    assert!(
        warnings.iter().all(|c| *c == Code::OutsideCtract),
        "CLIQUE should trigger only PDE002 at warning level, got {warnings:?}"
    );
    assert!(diags.iter().all(|d| d.severity < Severity::Error));
}

#[test]
fn paper_literal_clique_setting_also_violates_ctract() {
    let diags = analyze_setting(&clique::clique_setting_paper_literal());
    assert!(warnings_of(&diags).contains(&Code::OutsideCtract));
}

#[test]
fn egd_boundary_flags_target_egds() {
    let diags = analyze_setting(&boundary::egd_boundary_setting());
    // Two target egds => two PDE003 warnings, and nothing else at
    // warning level (the Σt gate suppresses PDE002 here).
    assert_eq!(
        warnings_of(&diags),
        vec![Code::TargetEgdBoundary, Code::TargetEgdBoundary],
        "diagnostics: {diags:?}"
    );
    let refs: Vec<_> = diags
        .iter()
        .filter(|d| d.code == Code::TargetEgdBoundary)
        .map(|d| d.constraint.expect("boundary diags name a constraint"))
        .collect();
    assert!(refs.iter().all(|r| r.group == Group::T));
}

#[test]
fn full_tgd_boundary_flags_full_target_tgds() {
    let diags = analyze_setting(&boundary::full_tgd_boundary_setting());
    assert_eq!(
        warnings_of(&diags),
        vec![Code::FullTargetTgdBoundary, Code::FullTargetTgdBoundary],
        "diagnostics: {diags:?}"
    );
}

#[test]
fn non_weakly_acyclic_target_tgds_are_an_error() {
    let schema = Arc::new(parse_schema("source E/2; target H/2;").expect("schema"));
    let sigma_st = pde_constraints::parser::parse_tgds(&schema, "E(x, y) -> H(x, y)").unwrap();
    let sigma_t = parse_dependencies(&schema, "H(x, y) -> exists z . H(y, z)").unwrap();
    let input = AnalysisInput::from_parts(schema, sigma_st, Vec::new(), sigma_t);
    let diags = input.analyze();
    let errors: Vec<_> = diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .collect();
    // PDE001 plus its PDE052 companion: every criterion of the
    // termination hierarchy fails on this self-feeding dependency.
    assert_eq!(errors.len(), 2, "diagnostics: {diags:?}");
    assert_eq!(errors[0].code, Code::WeakAcyclicityViolation);
    assert_eq!(errors[1].code, Code::AllTerminationCriteriaFail);
    // The witness cycle is named in the rendered message, and the
    // diagnostic points at the Σt dependency on the cycle.
    assert!(
        errors[0].message.contains("witness cycle"),
        "message: {}",
        errors[0].message
    );
    assert_eq!(
        errors[0].constraint.map(|c| (c.group, c.index)),
        Some((Group::T, 0))
    );
}

#[test]
fn disjunctive_sigma_ts_is_reported() {
    let problem = threecol::threecol_problem();
    let diags = analyze_disjunctive(problem.schema(), problem.sigma_ts());
    let warnings = warnings_of(&diags);
    assert_eq!(warnings, vec![Code::DisjunctiveTsBoundary]);
}

const DEMO_BUNDLE: &str = "\
%schema
source E/2; target H/2;

%st
E(x, y) -> H(x, y)

%t
# a non-terminating self-feeding dependency
H(x, y) -> exists z . H(y, z)
";

#[test]
fn text_rendering_resolves_spans_to_file_positions() {
    let sources = split_sections(DEMO_BUNDLE).expect("bundle splits");
    let input = AnalysisInput::from_sources(&sources).expect("bundle parses");
    let diags = input.analyze();
    let ctx = RenderContext {
        path: "demo.pde",
        sources: &sources,
    };
    let text = pde_analysis::render_text(&diags, Some(&ctx));
    assert!(
        text.contains("error[PDE001]"),
        "unexpected rendering:\n{text}"
    );
    // The offending Σt dependency sits on file line 9 (1-based), past a
    // comment line that the section line map must account for.
    assert!(
        text.contains("demo.pde:9:1"),
        "unexpected rendering:\n{text}"
    );
    assert!(
        text.contains("error[PDE052]"),
        "unexpected rendering:\n{text}"
    );
    assert!(text.contains("2 error(s)"), "unexpected rendering:\n{text}");
}

#[test]
fn json_rendering_is_stable() {
    let sources = split_sections(DEMO_BUNDLE).expect("bundle splits");
    let input = AnalysisInput::from_sources(&sources).expect("bundle parses");
    let diags = input.analyze();
    let ctx = RenderContext {
        path: "demo.pde",
        sources: &sources,
    };
    let json = pde_analysis::render_json(&diags, Some(&ctx));
    assert!(json.contains("\"code\":\"PDE001\""), "json:\n{json}");
    assert!(json.contains("\"severity\":\"error\""), "json:\n{json}");
    assert!(json.contains("\"line\":9"), "json:\n{json}");
    assert!(json.contains("\"code\":\"PDE052\""), "json:\n{json}");
    assert!(json.contains("\"counts\":{\"error\":2"), "json:\n{json}");
}
