//! Integration tests for the `pde` command-line binary, driving it as a
//! real subprocess on temp files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pde")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pde-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

const EX1_TRIANGLE: &str = "
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b). E(b, c). E(a, c).
";

const EX1_NOSOL: &str = "
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b). E(b, c).
";

#[test]
fn classify_reports_ctract() {
    let p = write_temp("tri.pde", EX1_TRIANGLE);
    let out = run(&["classify", p.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("in C_tract:                     true"));
    assert!(stdout.contains("polynomial algorithm applies:   true"));
}

#[test]
fn solve_yes_and_no_exit_codes() {
    let yes = write_temp("tri2.pde", EX1_TRIANGLE);
    let out = run(&["solve", yes.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("solution exists"));
    assert!(stdout.contains("H(a, c)"));

    let no = write_temp("nosol.pde", EX1_NOSOL);
    let out = run(&["solve", no.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no solution"));
}

#[test]
fn certain_boolean_query() {
    let p = write_temp("tri3.pde", EX1_TRIANGLE);
    let out = run(&["certain", p.to_str().unwrap(), "H(x, y), H(y, z)"]);
    // certain = false on the triangle (the minimal solution has only H(a,c)).
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("certain = false"));
}

#[test]
fn certain_with_head_lists_answers() {
    let p = write_temp("tri4.pde", EX1_TRIANGLE);
    let out = run(&["certain", p.to_str().unwrap(), "q(x, y) :- H(x, y)"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(a, c)"));
}

#[test]
fn chase_prints_canonical_artifacts() {
    let p = write_temp("nosol2.pde", EX1_NOSOL);
    let out = run(&["chase", p.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("J_can"));
    assert!(stdout.contains("H(a, c)"));
    assert!(stdout.contains("I_can"));
    assert!(stdout.contains("E(a, c)"));
}

#[test]
fn check_validates_candidates() {
    let p = write_temp("tri5.pde", EX1_TRIANGLE);
    let good = write_temp("good.inst", "H(a, c).");
    let out = run(&["check", p.to_str().unwrap(), good.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("IS a solution"));

    let bad = write_temp("bad.inst", "H(a, b).");
    let out = run(&["check", p.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("NOT a solution"));
}

#[test]
fn format_roundtrips() {
    let p = write_temp("tri6.pde", EX1_TRIANGLE);
    let out = run(&["format", p.to_str().unwrap()]);
    assert!(out.status.success());
    let rendered = String::from_utf8(out.stdout).unwrap();
    let p2 = write_temp("tri6b.pde", &rendered);
    let out2 = run(&["solve", p2.to_str().unwrap()]);
    assert!(out2.status.success());
}

#[test]
fn enumerate_lists_solutions() {
    let p = write_temp("tri7.pde", EX1_TRIANGLE);
    let out = run(&["enumerate", p.to_str().unwrap(), "5"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("distinct solution"));
    assert!(stdout.contains("H(a, c)"));
}

#[test]
fn shrink_extracts_small_solution() {
    let p = write_temp("tri8.pde", EX1_TRIANGLE);
    let bloated = write_temp("bloat.inst", "H(a, c). H(a, b). H(b, c).");
    let out = run(&["shrink", p.to_str().unwrap(), bloated.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("shrunk 3 target facts to 1"));
    assert!(stdout.contains("H(a, c)"));
}

/// A bundle with a lint *warning*: the second Σst tgd duplicates the first.
const LINT_WARN: &str = "
%schema
source E/2; target H/2
%st
E(x, y) -> H(x, y)
E(x, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b).
";

/// A bundle with a lint *error*: Σt is not weakly acyclic.
const LINT_ERROR: &str = "
%schema
source E/2; target H/2
%st
E(x, y) -> H(x, y)
%t
H(x, y) -> exists z . H(y, z)
";

#[test]
fn lint_clean_bundle_exits_0() {
    let p = write_temp("lint_clean.pde", EX1_TRIANGLE);
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("0 error(s), 0 warning(s)"),
        "stdout: {stdout}"
    );
}

#[test]
fn lint_warnings_exit_0_unless_denied() {
    let p = write_temp("lint_warn.pde", LINT_WARN);
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[PDE020]"), "stdout: {stdout}");

    let out = run(&["lint", "--deny", "warnings", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_errors_exit_1() {
    let p = write_temp("lint_err.pde", LINT_ERROR);
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[PDE001]"), "stdout: {stdout}");
    assert!(stdout.contains("witness cycle"), "stdout: {stdout}");
}

#[test]
fn lint_parse_errors_exit_2() {
    let p = write_temp("lint_bad.pde", "%schema\nsource E/2\n%st\nE(x y) ->\n");
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    // Parse errors carry a file position (line 4 of the bundle).
    assert!(stderr.contains(":4:"), "stderr: {stderr}");
}

#[test]
fn lint_json_output() {
    let p = write_temp("lint_json.pde", LINT_ERROR);
    let out = run(&["lint", "--format", "json", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"diagnostics\":["), "stdout: {stdout}");
    assert!(stdout.contains("\"code\":\"PDE001\""), "stdout: {stdout}");
    assert!(stdout.contains("\"counts\":"), "stdout: {stdout}");
}

/// A bundle whose lint warning survives parse-time dedupe: the second Σst
/// tgd is *subsumed* by the first (PDE021), not an exact copy of it.
const LINT_WARN_SUBSUMED: &str = "
%schema
source E/2; target H/2; target K/2
%st
E(x, y) -> H(x, y), K(x, y)
E(x, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b).
";

#[test]
fn solve_auto_lints_to_stderr_unless_no_lint() {
    let p = write_temp("warn_solve.pde", LINT_WARN_SUBSUMED);
    let out = run(&["solve", p.to_str().unwrap()]);
    // Lint findings go to stderr and never change the outcome.
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("warning[PDE021]"), "stderr: {stderr}");
    assert!(stderr.contains("--no-lint"), "stderr: {stderr}");

    let out = run(&["solve", "--no-lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("PDE"), "stderr: {stderr}");
}

#[test]
fn parse_time_dedupe_warns_and_removes_exact_duplicates() {
    // The exact-duplicate bundle is normalized at parse time: solve sees a
    // single copy, and the removal is reported on stderr (worded without
    // lint-code vocabulary so it survives --no-lint).
    let p = write_temp("dedupe_solve.pde", LINT_WARN);
    let out = run(&["solve", "--no-lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("keeping one copy"), "stderr: {stderr}");
    assert!(!stderr.contains("PDE"), "stderr: {stderr}");

    // The lint command works from the raw sources, so PDE020 still fires
    // there (covered by lint_warnings_exit_0_unless_denied).
}

#[test]
fn plan_emits_a_versioned_certificate() {
    let p = write_temp("plan_tri.pde", EX1_TRIANGLE);
    let out = run(&["plan", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("regime: tractable"), "stdout: {stdout}");
    assert!(stdout.contains("weakly acyclic"), "stdout: {stdout}");
    assert!(stdout.contains("budgets:"), "stdout: {stdout}");

    let out = run(&["plan", p.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.starts_with("{\"version\":1,"), "json: {json}");
    assert!(json.contains("\"regime\":\"tractable\""), "json: {json}");
    assert!(json.contains("\"step_bound\":"), "json: {json}");
}

#[test]
fn plan_check_accepts_own_output_and_rejects_tampering() {
    let p = write_temp("plan_chk.pde", EX1_TRIANGLE);
    let out = run(&["plan", p.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).unwrap();

    let cert = write_temp("plan_chk.cert.json", &json);
    let out = run(&[
        "plan",
        p.to_str().unwrap(),
        "--check",
        cert.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("certificate OK"));

    // Inflate one rank: the independent checker must refuse it.
    let tampered = json.replacen("\"rank\":0", "\"rank\":1", 1);
    assert_ne!(tampered, json, "fixture has a rank-0 entry to tamper with");
    let bad = write_temp("plan_chk.bad.json", &tampered);
    let out = run(&[
        "plan",
        p.to_str().unwrap(),
        "--check",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("certificate REJECTED"), "stdout: {stdout}");

    // A certificate for a *different* setting must also be refused.
    let other = write_temp("plan_chk_other.pde", EX1_NOSOL_T);
    let out = run(&[
        "plan",
        other.to_str().unwrap(),
        "--check",
        cert.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1));

    // Garbage is a usage-level error, not a rejection.
    let garbage = write_temp("plan_chk.garbage.json", "{\"version\":");
    let out = run(&[
        "plan",
        p.to_str().unwrap(),
        "--check",
        garbage.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

/// A bundle with redundancy of every rewrite kind: an alpha-renamed
/// duplicate Σst tgd, a trivial egd, and a Σt tgd reading a relation no
/// derivation can populate.
const REDUNDANT: &str = "
%schema
source E/2; target G/2; target H/2; target K/2
%st
E(x, y) -> H(x, y)
E(u, v) -> H(u, v)
%ts
H(x, y) -> E(x, y)
%t
H(x, y) -> x = x
G(x, y) -> K(x, y)
%instance
E(a, b).
";

#[test]
fn optimize_reports_actions_and_strata() {
    let p = write_temp("opt.pde", REDUNDANT);
    let out = run(&["optimize", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("dependencies: 5 -> 2 (3 removed)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("duplicate of #0"), "stdout: {stdout}");
    assert!(stdout.contains("trivial egd"), "stdout: {stdout}");
    assert!(
        stdout.contains("unpopulatable relation G"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("chase strata:"), "stdout: {stdout}");

    // The JSON report carries the full certificate and the schedule.
    let out = run(&["optimize", p.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(
        json.contains("\"kind\":\"pde-optimize-report\""),
        "json: {json}"
    );
    assert!(json.contains("pde-rewrite-certificate"), "json: {json}");
    assert!(json.contains("\"strata\":"), "json: {json}");
}

#[test]
fn optimize_check_accepts_own_certificate_and_rejects_tampering() {
    let p = write_temp("optchk.pde", REDUNDANT);
    let cert = write_temp("optchk.cert.json", "");
    let out = run(&[
        "optimize",
        p.to_str().unwrap(),
        "--emit",
        cert.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));

    // `--check` with no path self-checks a fresh derivation.
    let out = run(&["optimize", p.to_str().unwrap(), "--check"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("independently re-verified"));

    // `--check <cert>` re-verifies the saved certificate.
    let out = run(&[
        "optimize",
        p.to_str().unwrap(),
        "--check",
        cert.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("rewrite certificate OK"));

    // Tampering with the surviving counts must be caught (exit 2: the
    // certificate no longer describes this bundle).
    let json = std::fs::read_to_string(&cert).unwrap();
    let tampered = json.replacen("\"sigma_st\":1", "\"sigma_st\":2", 1);
    assert_ne!(
        tampered, json,
        "fixture has a sigma_st count to tamper with"
    );
    let bad = write_temp("optchk.bad.json", &tampered);
    let out = run(&[
        "optimize",
        p.to_str().unwrap(),
        "--check",
        bad.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("REJECTED"));

    // A certificate for a different bundle is likewise refused.
    let other = write_temp("optchk_other.pde", EX1_TRIANGLE);
    let out = run(&[
        "optimize",
        other.to_str().unwrap(),
        "--check",
        cert.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));

    // `plan --check` still requires an explicit certificate path.
    let out = run(&["plan", p.to_str().unwrap(), "--check"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn terminate_reports_certified_and_uncertified_verdicts() {
    // The shipped spiral bundle is not weakly acyclic but jointly
    // acyclic: `terminate` exits 0 and names the certifying criterion.
    let spiral = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/spiral.pde");
    let out = run(&["terminate", spiral]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("joint-acyclicity"), "{stdout}");
    assert!(stdout.contains("weak-acyclicity"), "{stdout}");

    // JSON output carries the versioned termination section.
    let out = run(&["terminate", spiral, "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"kind\":\"pde-terminate-report\""), "{json}");
    assert!(
        json.contains("\"criterion\":\"joint-acyclicity\""),
        "{json}"
    );

    // The divergent bundle fails every criterion: exit 1, criterion null.
    let divergent = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/divergent.pde");
    let out = run(&["terminate", divergent, "--format", "json"]);
    assert_eq!(out.status.code(), Some(1));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"criterion\":null"), "{json}");
}

#[test]
fn terminate_check_accepts_own_certificate_and_rejects_tampering() {
    let spiral = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/spiral.pde");
    let cert = write_temp("termchk.cert.json", "");
    let out = run(&["terminate", spiral, "--emit", cert.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));

    // `--check` with no path self-checks a fresh derivation.
    let out = run(&["terminate", spiral, "--check"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("independently re-verified"));

    // `--check <cert>` re-verifies the saved certificate and always exits
    // 0 on success, so a CI smoke loop can include uncertified bundles.
    let out = run(&["terminate", spiral, "--check", cert.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("termination certificate OK"));

    // Tampering with the claimed criterion must be caught (exit 2).
    let json = std::fs::read_to_string(&cert).unwrap();
    let tampered = json.replacen(
        "\"criterion\":\"joint-acyclicity\"",
        "\"criterion\":\"weak-acyclicity\"",
        1,
    );
    assert_ne!(tampered, json, "fixture has a criterion to tamper with");
    let bad = write_temp("termchk.bad.json", &tampered);
    let out = run(&["terminate", spiral, "--check", bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("REJECTED"));

    // A certificate for a different bundle is likewise refused.
    let divergent = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/divergent.pde");
    let out = run(&["terminate", divergent, "--check", cert.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));

    // An uncertified bundle's own certificate still checks clean.
    let dcert = write_temp("termchk.div.cert.json", "");
    let out = run(&["terminate", divergent, "--emit", dcert.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1), "plain run reports uncertified");
    let out = run(&["terminate", divergent, "--check", dcert.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("uncertified"));
}

#[test]
fn solve_optimizes_by_default_with_opt_out() {
    let p = write_temp("opt_solve.pde", REDUNDANT);
    let out = run(&["solve", "--no-lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("optimizer: removed 3 of 5"),
        "stderr: {stderr}"
    );

    let out = run(&["solve", "--no-lint", "--no-optimize", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("optimizer:"), "stderr: {stderr}");

    // --stats surfaces the rewrite counts and the stratified schedule.
    let out = run(&["solve", "--no-lint", "--stats", p.to_str().unwrap()]);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("dependencies:            5 -> 2 (3 removed)"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("chase strata:"), "stdout: {stdout}");

    // The JSON run report carries an optimize section — null when off.
    let out = run(&[
        "solve",
        "--no-lint",
        "--format",
        "json",
        p.to_str().unwrap(),
    ]);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(
        json.contains("\"optimize\":{\"before\":5,\"after\":2,\"actions\":3"),
        "json: {json}"
    );
    let out = run(&[
        "solve",
        "--no-lint",
        "--no-optimize",
        "--format",
        "json",
        p.to_str().unwrap(),
    ]);
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.contains("\"optimize\":null"), "json: {json}");
}

#[test]
fn saved_plan_disables_optimization() {
    let p = write_temp("opt_plan.pde", REDUNDANT);
    let out = run(&["plan", p.to_str().unwrap(), "--format", "json"]);
    assert_eq!(out.status.code(), Some(0));
    let cert = write_temp(
        "opt_plan.cert.json",
        &String::from_utf8(out.stdout).unwrap(),
    );

    // The saved certificate describes the unoptimized setting, so solve
    // verifies it against that and skips the optimizer entirely.
    let out = run(&[
        "solve",
        "--no-lint",
        "--plan",
        cert.to_str().unwrap(),
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("optimizer:"), "stderr: {stderr}");

    // Asking for both at once is a usage error.
    let out = run(&[
        "solve",
        "--no-lint",
        "--optimize",
        "--plan",
        cert.to_str().unwrap(),
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

/// A bundle routed to the generic witness-chase search: full target tgd
/// plus nonempty Σts (the §4 boundary, PDE004).
const EX_GENERIC: &str = "
%schema
source E/2; target H/2
%st
E(x, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%t
H(x, y), H(y, x) -> H(x, x)
%instance
E(a, b). E(b, a). E(b, c).
";

/// `EX1_NOSOL` with a full target tgd, used as a structurally different
/// setting for cross-checking certificates.
const EX1_NOSOL_T: &str = "
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%t
H(x, y), H(y, x) -> H(x, x)
%instance
E(a, b). E(b, c).
";

/// Like `EX_GENERIC` but with an existential Σst tgd, so the generic
/// search actually branches over the active domain.
const EX_BRANCHY: &str = "
%schema
source S/2; target T/2
%st
S(x1, x2) -> exists y . T(x1, y)
%ts
T(x1, x2) -> S(x2, x1)
%t
T(x, y), T(y, x) -> T(x, x)
%instance
S(a, b).
";

#[test]
fn solve_with_exhausted_budget_reports_undecided() {
    let p = write_temp("budget.pde", EX_GENERIC);
    // Unlimited: the search decides (no solution here — the full tgd
    // derives H(a,a) whose Σts demand E(a,a) is absent).
    let out = run(&["solve", "--no-lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("no solution"));

    // One search node is not enough: undecided (distinct exit code 3),
    // never a wrong answer.
    let out = run(&[
        "solve",
        "--no-lint",
        "--max-steps",
        "1",
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("undecided (search budget exhausted)"),
        "stdout: {stdout}"
    );
    assert!(!stdout.contains("no solution"), "stdout: {stdout}");

    // --max-branches caps how many active-domain values an existential
    // may try; skipped branches likewise forbid a definite "no".
    let b = write_temp("branchy.pde", EX_BRANCHY);
    let out = run(&["solve", "--no-lint", b.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("no solution"));
    let out = run(&[
        "solve",
        "--no-lint",
        "--max-branches",
        "0",
        b.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("undecided (search budget exhausted)"));

    // certain: an exhausted budget is an explicit "undecided" error (2),
    // never a silently incomplete answer set.
    let out = run(&[
        "certain",
        "--no-lint",
        "--max-steps",
        "1",
        p.to_str().unwrap(),
        "H(x, x)",
    ]);
    assert_eq!(out.status.code(), Some(2));

    // A malformed cap value is a usage error.
    let out = run(&["solve", "--max-steps", "lots", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn solve_accepts_a_precomputed_plan() {
    let p = write_temp("planned.pde", EX1_TRIANGLE);
    let out = run(&["plan", p.to_str().unwrap(), "--format", "json"]);
    let cert = write_temp("planned.cert.json", &String::from_utf8(out.stdout).unwrap());
    let out = run(&[
        "solve",
        "--no-lint",
        "--plan",
        cert.to_str().unwrap(),
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("solution exists"));

    // A plan for a different setting is verified against *this* bundle
    // and refused before any solving happens.
    let other = write_temp("planned_other.pde", EX1_NOSOL_T);
    let out = run(&["plan", other.to_str().unwrap(), "--format", "json"]);
    let wrong = write_temp(
        "planned.wrong.json",
        &String::from_utf8(out.stdout).unwrap(),
    );
    let out = run(&[
        "solve",
        "--no-lint",
        "--plan",
        wrong.to_str().unwrap(),
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn solve_stats_prints_chase_counters() {
    let p = write_temp("stats.pde", EX1_TRIANGLE);
    let out = run(&["solve", "--no-lint", "--stats", p.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("engine:   Seminaive"), "stdout: {stdout}");
    assert!(stdout.contains("chase rounds:"), "stdout: {stdout}");
    assert!(stdout.contains("triggers fired:"), "stdout: {stdout}");
    assert!(stdout.contains("skipped by delta:"), "stdout: {stdout}");
    assert!(stdout.contains("egd merges:"), "stdout: {stdout}");

    // The naive escape hatch decides the bundle identically and, by
    // definition, skips nothing.
    let out = run(&[
        "solve",
        "--no-lint",
        "--chase",
        "naive",
        "--stats",
        p.to_str().unwrap(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("engine:   Naive"), "stdout: {stdout}");
    assert!(stdout.contains("solution exists"), "stdout: {stdout}");
    assert!(
        stdout.contains("skipped by delta:        0"),
        "stdout: {stdout}"
    );

    // A bad engine name is a usage error.
    let out = run(&["solve", "--chase", "magic", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn solve_timeout_on_divergent_bundle_is_undecided_not_a_hang() {
    // The shipped divergent bundle has a non-weakly-acyclic Σt: the chase
    // never terminates, so an ungoverned run would grind until the plan's
    // fallback node caps. A 1ms deadline must cut it short with the
    // distinct undecided exit code.
    let p = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/divergent.pde");
    let out = run(&["solve", "--no-lint", "--timeout", "1ms", p]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "stderr: {stderr}",
        stderr = String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("undecided (deadline exceeded"),
        "stdout: {stdout}"
    );
}

#[test]
fn solve_memory_limit_is_undecided_with_reason() {
    let p = concat!(env!("CARGO_MANIFEST_DIR"), "/examples/divergent.pde");
    // A 1-byte budget trips on the first governed checkpoint.
    let out = run(&["solve", "--no-lint", "--memory-limit", "1", p]);
    assert_eq!(out.status.code(), Some(3));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("undecided (memory budget exhausted"),
        "stdout: {stdout}"
    );
}

#[test]
fn solve_governed_budget_admits_normal_runs() {
    // --governed derives a memory budget from the plan certificate; a
    // well-behaved bundle must still decide under it, and --stats must
    // surface the governor counters.
    let p = write_temp("governed.pde", EX1_TRIANGLE);
    let out = run(&[
        "solve",
        "--no-lint",
        "--governed",
        "--stats",
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("solution exists"), "stdout: {stdout}");
    assert!(
        stdout.contains("engine fallback:         false"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("governor checks:"), "stdout: {stdout}");
    assert!(stdout.contains("peak instance bytes:"), "stdout: {stdout}");
    assert!(
        stdout.contains("governor stops:          0"),
        "stdout: {stdout}"
    );
}

#[test]
fn governance_flags_are_solve_only_and_validated() {
    let p = write_temp("govflags.pde", EX1_TRIANGLE);
    // Governance flags on another command are a usage error.
    let out = run(&["chase", "--timeout", "1s", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("only apply to 'solve'"));
    // Malformed duration / size values are usage errors too.
    let out = run(&["solve", "--timeout", "soon", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["solve", "--memory-limit", "lots", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_errors_exit_2() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["solve", "/nonexistent/x.pde"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage:"));
}
