//! Integration tests for the `pde` command-line binary, driving it as a
//! real subprocess on temp files.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pde")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pde-cli-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

const EX1_TRIANGLE: &str = "
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b). E(b, c). E(a, c).
";

const EX1_NOSOL: &str = "
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b). E(b, c).
";

#[test]
fn classify_reports_ctract() {
    let p = write_temp("tri.pde", EX1_TRIANGLE);
    let out = run(&["classify", p.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("in C_tract:                     true"));
    assert!(stdout.contains("polynomial algorithm applies:   true"));
}

#[test]
fn solve_yes_and_no_exit_codes() {
    let yes = write_temp("tri2.pde", EX1_TRIANGLE);
    let out = run(&["solve", yes.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("solution exists"));
    assert!(stdout.contains("H(a, c)"));

    let no = write_temp("nosol.pde", EX1_NOSOL);
    let out = run(&["solve", no.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no solution"));
}

#[test]
fn certain_boolean_query() {
    let p = write_temp("tri3.pde", EX1_TRIANGLE);
    let out = run(&["certain", p.to_str().unwrap(), "H(x, y), H(y, z)"]);
    // certain = false on the triangle (the minimal solution has only H(a,c)).
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("certain = false"));
}

#[test]
fn certain_with_head_lists_answers() {
    let p = write_temp("tri4.pde", EX1_TRIANGLE);
    let out = run(&["certain", p.to_str().unwrap(), "q(x, y) :- H(x, y)"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("(a, c)"));
}

#[test]
fn chase_prints_canonical_artifacts() {
    let p = write_temp("nosol2.pde", EX1_NOSOL);
    let out = run(&["chase", p.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("J_can"));
    assert!(stdout.contains("H(a, c)"));
    assert!(stdout.contains("I_can"));
    assert!(stdout.contains("E(a, c)"));
}

#[test]
fn check_validates_candidates() {
    let p = write_temp("tri5.pde", EX1_TRIANGLE);
    let good = write_temp("good.inst", "H(a, c).");
    let out = run(&["check", p.to_str().unwrap(), good.to_str().unwrap()]);
    assert!(out.status.success());
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("IS a solution"));

    let bad = write_temp("bad.inst", "H(a, b).");
    let out = run(&["check", p.to_str().unwrap(), bad.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8(out.stdout)
        .unwrap()
        .contains("NOT a solution"));
}

#[test]
fn format_roundtrips() {
    let p = write_temp("tri6.pde", EX1_TRIANGLE);
    let out = run(&["format", p.to_str().unwrap()]);
    assert!(out.status.success());
    let rendered = String::from_utf8(out.stdout).unwrap();
    let p2 = write_temp("tri6b.pde", &rendered);
    let out2 = run(&["solve", p2.to_str().unwrap()]);
    assert!(out2.status.success());
}

#[test]
fn enumerate_lists_solutions() {
    let p = write_temp("tri7.pde", EX1_TRIANGLE);
    let out = run(&["enumerate", p.to_str().unwrap(), "5"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("distinct solution"));
    assert!(stdout.contains("H(a, c)"));
}

#[test]
fn shrink_extracts_small_solution() {
    let p = write_temp("tri8.pde", EX1_TRIANGLE);
    let bloated = write_temp("bloat.inst", "H(a, c). H(a, b). H(b, c).");
    let out = run(&["shrink", p.to_str().unwrap(), bloated.to_str().unwrap()]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("shrunk 3 target facts to 1"));
    assert!(stdout.contains("H(a, c)"));
}

/// A bundle with a lint *warning*: the second Σst tgd duplicates the first.
const LINT_WARN: &str = "
%schema
source E/2; target H/2
%st
E(x, y) -> H(x, y)
E(x, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, b).
";

/// A bundle with a lint *error*: Σt is not weakly acyclic.
const LINT_ERROR: &str = "
%schema
source E/2; target H/2
%st
E(x, y) -> H(x, y)
%t
H(x, y) -> exists z . H(y, z)
";

#[test]
fn lint_clean_bundle_exits_0() {
    let p = write_temp("lint_clean.pde", EX1_TRIANGLE);
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("0 error(s), 0 warning(s)"),
        "stdout: {stdout}"
    );
}

#[test]
fn lint_warnings_exit_0_unless_denied() {
    let p = write_temp("lint_warn.pde", LINT_WARN);
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("warning[PDE020]"), "stdout: {stdout}");

    let out = run(&["lint", "--deny", "warnings", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_errors_exit_1() {
    let p = write_temp("lint_err.pde", LINT_ERROR);
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("error[PDE001]"), "stdout: {stdout}");
    assert!(stdout.contains("witness cycle"), "stdout: {stdout}");
}

#[test]
fn lint_parse_errors_exit_2() {
    let p = write_temp("lint_bad.pde", "%schema\nsource E/2\n%st\nE(x y) ->\n");
    let out = run(&["lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "stderr: {stderr}");
    // Parse errors carry a file position (line 4 of the bundle).
    assert!(stderr.contains(":4:"), "stderr: {stderr}");
}

#[test]
fn lint_json_output() {
    let p = write_temp("lint_json.pde", LINT_ERROR);
    let out = run(&["lint", "--format", "json", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.starts_with("{\"diagnostics\":["), "stdout: {stdout}");
    assert!(stdout.contains("\"code\":\"PDE001\""), "stdout: {stdout}");
    assert!(stdout.contains("\"counts\":"), "stdout: {stdout}");
}

#[test]
fn solve_auto_lints_to_stderr_unless_no_lint() {
    let p = write_temp("warn_solve.pde", LINT_WARN);
    let out = run(&["solve", p.to_str().unwrap()]);
    // Lint findings go to stderr and never change the outcome.
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("warning[PDE020]"), "stderr: {stderr}");
    assert!(stderr.contains("--no-lint"), "stderr: {stderr}");

    let out = run(&["solve", "--no-lint", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(0));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(!stderr.contains("PDE"), "stderr: {stderr}");
}

#[test]
fn usage_errors_exit_2() {
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["solve", "/nonexistent/x.pde"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr).unwrap().contains("usage:"));
}
