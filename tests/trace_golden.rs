//! Golden and property tests for the observability layer:
//!
//! * a golden span sequence for a fixed semi-naive chase (timestamps are
//!   scrubbed by construction — only names and structured fields are
//!   compared, ordered by sequence number);
//! * CLI goldens for `--trace <file.jsonl>` (every line parses, the span
//!   sequence is stable), `--profile` (table shape and deterministic
//!   counts), and `solve --stats --format json` (the versioned run
//!   report, including real search counters for the search-based
//!   solvers);
//! * a property test that the three accounting layers agree on random
//!   inputs: trace span fields, `ChaseStats` counters, and the
//!   `StepRecord` provenance log.

use pde_chase::{chase_naive_with, chase_seminaive_with, ChaseLimits, ChaseResult, WitnessMode};
use pde_constraints::Dependency;
use pde_core::PdeSetting;
use pde_relational::NullGen;
use pde_trace::{CollectingSink, FieldValue, SpanRecord};
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::{boundary, paper, Graph};
use proptest::prelude::*;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::{Arc, Mutex};

/// The span sink is process-global, so in-process tests that install one
/// must run serialized. Poison is ignored: a failing test must not
/// cascade into the others.
static SINK_LOCK: Mutex<()> = Mutex::new(());

fn lock_sink() -> std::sync::MutexGuard<'static, ()> {
    SINK_LOCK
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Run `f` with a fresh collecting sink installed and return the spans it
/// produced, ordered by sequence number.
fn collect_spans(f: impl FnOnce()) -> Vec<SpanRecord> {
    let sink = Arc::new(CollectingSink::bounded(1 << 16));
    pde_trace::set_sink(sink.clone());
    f();
    pde_trace::clear_sink();
    let mut spans = sink.take();
    spans.sort_by_key(|s| s.seq);
    assert_eq!(sink.dropped(), 0, "collecting sink overflowed");
    spans
}

/// Scrub a span down to its deterministic parts: name plus fields.
fn scrub(spans: &[SpanRecord]) -> Vec<(&'static str, Vec<(&'static str, FieldValue)>)> {
    spans.iter().map(|s| (s.name, s.fields.clone())).collect()
}

fn u64_field(span: &SpanRecord, key: &str) -> Option<u64> {
    span.fields.iter().find_map(|(k, v)| match v {
        FieldValue::U64(n) if *k == key => Some(*n),
        _ => None,
    })
}

/// Sum field `key` over every span named `name`.
fn sum_field(spans: &[SpanRecord], name: &str, key: &str) -> u64 {
    spans
        .iter()
        .filter(|s| s.name == name)
        .map(|s| u64_field(s, key).unwrap_or(0))
        .sum()
}

fn tgd_step_count(res: &ChaseResult) -> usize {
    res.log
        .iter()
        .filter(|r| matches!(r, pde_chase::StepRecord::Tgd { .. }))
        .count()
}

fn egd_step_count(res: &ChaseResult) -> usize {
    res.log
        .iter()
        .filter(|r| matches!(r, pde_chase::StepRecord::Egd { .. }))
        .count()
}

fn u(s: &'static str) -> FieldValue {
    FieldValue::Str(s.to_owned())
}

#[test]
fn golden_span_sequence_for_seminaive_chase() {
    let _guard = lock_sink();
    let p = paper::exact_view_setting();
    let input = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
    let deps: Vec<Dependency> = p.sigma_st().iter().cloned().map(Dependency::Tgd).collect();
    let gen = NullGen::new();
    let spans = collect_spans(|| {
        let res = chase_seminaive_with(
            input,
            &deps,
            WitnessMode::FreshNulls(&gen),
            ChaseLimits::default(),
        );
        assert!(res.is_success());
    });
    // Round 1 finds the single E(a,b),E(b,c) chain and fires H(a,c);
    // round 2's delta windows find nothing and the chase stops. Child
    // spans close before their parent round span, so they come first.
    let expected: Vec<(&str, Vec<(&str, FieldValue)>)> = vec![
        ("governor.check", vec![("bytes", FieldValue::U64(536))]),
        (
            "hom.search",
            vec![
                ("kind", u("seminaive")),
                ("atoms", FieldValue::U64(2)),
                ("delta_lo", FieldValue::U64(0)),
                ("delta_hi", FieldValue::U64(1)),
            ],
        ),
        (
            "chase.trigger",
            vec![
                ("engine", u("seminaive")),
                ("dep", FieldValue::U64(0)),
                ("round", FieldValue::U64(1)),
                ("found", FieldValue::U64(1)),
                ("fired", FieldValue::U64(1)),
            ],
        ),
        (
            "chase.round",
            vec![
                ("engine", u("seminaive")),
                ("round", FieldValue::U64(1)),
                ("facts", FieldValue::U64(3)),
            ],
        ),
        ("governor.check", vec![("bytes", FieldValue::U64(784))]),
        (
            "hom.search",
            vec![
                ("kind", u("seminaive")),
                ("atoms", FieldValue::U64(2)),
                ("delta_lo", FieldValue::U64(1)),
                ("delta_hi", FieldValue::U64(2)),
            ],
        ),
        (
            "chase.trigger",
            vec![
                ("engine", u("seminaive")),
                ("dep", FieldValue::U64(0)),
                ("round", FieldValue::U64(2)),
                ("found", FieldValue::U64(0)),
                ("fired", FieldValue::U64(0)),
            ],
        ),
        (
            "chase.round",
            vec![
                ("engine", u("seminaive")),
                ("round", FieldValue::U64(2)),
                ("facts", FieldValue::U64(4)),
            ],
        ),
    ];
    assert_eq!(scrub(&spans), expected);
}

// ---------------------------------------------------------------------
// CLI goldens (separate subprocesses: no sink lock needed).
// ---------------------------------------------------------------------

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pde")
}

fn triangle() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/examples/triangle.pde")
}

fn write_temp(name: &str, content: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pde-trace-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, content).unwrap();
    path
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("binary runs")
}

/// A bundle routed to the generic witness-chase search (full target tgd
/// plus nonempty Σts), so `--stats` exercises the search counters.
const GENERIC_SEARCH: &str = "
%schema
source E/2; target H/2
%st
E(x, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%t
H(x, y), H(y, x) -> H(x, x)
%instance
E(a, b). E(b, a). E(b, c).
";

/// Extract `(name, count)` pairs from the serialized `"histograms"` map.
/// Counts are deterministic per fixture; sums, extrema, and bucket
/// boundaries are wall-clock dependent and deliberately ignored.
fn histogram_counts(hist: &str) -> Vec<(String, String)> {
    let marker = "\":{\"count\":";
    let mut out = Vec::new();
    let mut rest = hist;
    while let Some(at) = rest.find(marker) {
        let name_start = rest[..at].rfind('"').expect("name opens") + 1;
        let name = rest[name_start..at].to_string();
        let after = &rest[at + marker.len()..];
        let digits: String = after.chars().take_while(char::is_ascii_digit).collect();
        out.push((name, digits));
        rest = after;
    }
    out
}

/// Replace the digits after every occurrence of `key` with `N`.
fn scrub_number(line: &str, key: &str) -> String {
    let mut out = String::new();
    let mut rest = line;
    while let Some(at) = rest.find(key) {
        let end = at + key.len();
        out.push_str(&rest[..end]);
        rest = rest[end..].trim_start_matches(|c: char| c.is_ascii_digit());
        out.push('N');
    }
    out.push_str(rest);
    out
}

#[test]
fn trace_flag_streams_golden_jsonl() {
    let out_path = write_temp("triangle_trace.jsonl", "");
    let out = run(&[
        "solve",
        "--no-lint",
        "--trace",
        out_path.to_str().unwrap(),
        triangle(),
    ]);
    assert!(out.status.success());
    let text = std::fs::read_to_string(&out_path).unwrap();
    let lines: Vec<&str> = text.lines().collect();

    // Every line is one self-contained JSON object with the fixed keys.
    for line in &lines {
        assert!(line.starts_with("{\"v\":1,\"span\":\""), "line: {line}");
        assert!(line.ends_with("}}"), "line: {line}");
        for key in ["\"seq\":", "\"dur_ns\":", "\"self_ns\":", "\"fields\":{"] {
            assert!(line.contains(key), "missing {key} in: {line}");
        }
    }

    // The span-name sequence is the tractable solver's fixed anatomy:
    // Σst ∪ Σt chase (2 rounds), Σts backward chase (2 rounds), block
    // decomposition, and the final per-block homomorphism check.
    let names: Vec<&str> = lines
        .iter()
        .map(|l| {
            let rest = &l["{\"v\":1,\"span\":\"".len()..];
            &rest[..rest.find('"').expect("span name closes")]
        })
        .collect();
    let expected = [
        "governor.check",
        "hom.search",
        "chase.trigger",
        "chase.round",
        "governor.check",
        "hom.search",
        "chase.trigger",
        "chase.round",
        "governor.check",
        "hom.search",
        "chase.trigger",
        "chase.round",
        "governor.check",
        "hom.search",
        "chase.trigger",
        "chase.round",
        "blocks.decompose",
        "blocks.decompose",
        "blocks.decompose",
        "hom.search",
        "block.hom_search",
    ];
    assert_eq!(names, expected, "full trace:\n{text}");
}

#[test]
fn profile_flag_prints_phase_breakdown() {
    let out = run(&["solve", "--no-lint", "--profile", triangle()]);
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    let header = stderr.lines().next().expect("profile table on stderr");
    for col in ["phase", "count", "total ms", "self ms", "self %"] {
        assert!(header.contains(col), "header: {header}");
    }
    // Durations vary run to run; the per-phase span counts do not.
    for (phase, count) in [
        ("hom.search", "5"),
        ("chase.trigger", "4"),
        ("chase.round", "4"),
        ("governor.check", "4"),
        ("blocks.decompose", "3"),
        ("block.hom_search", "1"),
    ] {
        let row = stderr
            .lines()
            .find(|l| l.starts_with(phase))
            .unwrap_or_else(|| panic!("no {phase} row in:\n{stderr}"));
        assert_eq!(row.split_whitespace().nth(1), Some(count), "row: {row}");
    }

    // One sink per run: --trace and --profile are mutually exclusive.
    let out = run(&["solve", "--trace", "/dev/null", "--profile", triangle()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8(out.stderr)
        .unwrap()
        .contains("mutually exclusive"));
}

#[test]
fn solve_json_report_golden_tractable() {
    let out = run(&[
        "solve",
        "--no-lint",
        "--stats",
        "--format",
        "json",
        triangle(),
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout.trim_end();
    assert_eq!(line.lines().count(), 1, "one JSONL line: {stdout}");
    let (prefix, hist) = line
        .split_once("\"histograms\":{")
        .expect("report carries a histograms map");
    assert_eq!(
        scrub_number(prefix, "\"solve.elapsed_ns\":"),
        "{\"v\":1,\"solver\":\"tractable\",\"engine\":\"seminaive\",\
         \"result\":\"yes\",\"undecided_reason\":null,\"engine_fallback\":false,\
         \"optimize\":{\"before\":2,\"after\":2,\"actions\":0,\
         \"schedule\":{\"strata\":[[0]]}},\
         \"certificate\":{\"version\":1,\"regime\":\"tractable\",\"solver\":\"tractable\",\
         \"termination\":{\"certified\":true,\"criterion\":\"weak-acyclicity\"}},\
         \"metrics\":{\"counters\":{\
         \"chase.egd_merges\":0,\"chase.rounds\":4,\"chase.skipped_by_delta\":2,\
         \"chase.triggers_fired\":2,\"chase.triggers_found\":2,\"chase.triggers_satisfied\":0,\
         \"governor.cancellations_observed\":0,\"governor.checks\":4,\
         \"governor.faults_fired\":0,\"governor.peak_bytes\":571,\"governor.stops\":0,\
         \"solve.elapsed_ns\":N,\
         \"storage.bytes_per_fact\":143,\"storage.facts\":4,\
         \"storage.heap_bytes\":571,\"storage.index_entries\":8,\
         \"storage.slots\":4},"
    );
    // Histogram names and per-fixture counts are deterministic (the
    // tractable solver's span anatomy is pinned above); durations are not.
    let counts = histogram_counts(hist);
    assert_eq!(
        counts
            .iter()
            .map(|(n, c)| (n.as_str(), c.as_str()))
            .collect::<Vec<_>>(),
        vec![
            ("chase.round_ns", "4"),
            ("phase.block.hom_search.self_ns", "1"),
            ("phase.blocks.decompose.self_ns", "3"),
            ("phase.chase.round.self_ns", "4"),
            ("phase.chase.trigger.self_ns", "4"),
            ("phase.governor.check.self_ns", "4"),
            ("phase.hom.search.self_ns", "5"),
            ("solve.elapsed_ns", "1"),
        ],
        "histograms: {hist}"
    );
    assert!(hist.contains("\"buckets\":[["), "histograms: {hist}");
    assert!(line.ends_with("}}"), "line: {line}");
}

#[test]
fn solve_json_report_golden_generic_search() {
    let p = write_temp("generic_search.pde", GENERIC_SEARCH);
    let out = run(&[
        "solve",
        "--no-lint",
        "--stats",
        "--format",
        "json",
        p.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(1), "no solution here");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout.trim_end();
    let (prefix, hist) = line
        .split_once("\"histograms\":{")
        .expect("report carries a histograms map");
    assert_eq!(
        scrub_number(prefix, "\"solve.elapsed_ns\":"),
        "{\"v\":1,\"solver\":\"generic-search\",\"engine\":\"seminaive\",\
         \"result\":\"no\",\"undecided_reason\":null,\"engine_fallback\":false,\
         \"optimize\":{\"before\":3,\"after\":3,\"actions\":0,\
         \"schedule\":{\"strata\":[[0],[1]]}},\
         \"certificate\":{\"version\":1,\"regime\":\"full-tgd-boundary\",\
         \"solver\":\"generic-search\",\
         \"termination\":{\"certified\":true,\"criterion\":\"weak-acyclicity\"}},\
         \"metrics\":{\"counters\":{\
         \"governor.cancellations_observed\":0,\"governor.checks\":5,\
         \"governor.faults_fired\":0,\"governor.peak_bytes\":0,\"governor.stops\":0,\
         \"search.branches\":5,\"search.candidates_checked\":0,\"search.prunes\":1,\
         \"solve.elapsed_ns\":N},"
    );
    let counts = histogram_counts(hist);
    assert_eq!(
        counts
            .iter()
            .map(|(n, c)| (n.as_str(), c.as_str()))
            .collect::<Vec<_>>(),
        vec![
            ("phase.governor.check.self_ns", "5"),
            ("phase.solver.branch.self_ns", "5"),
            ("solve.elapsed_ns", "1"),
        ],
        "histograms: {hist}"
    );
    assert!(line.ends_with("}}"), "line: {line}");

    // The text form reports the same counters, not an "n/a" shrug.
    let out = run(&["solve", "--no-lint", "--stats", p.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("search branches:         5"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("candidates checked:      0"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("branches pruned:         1"),
        "stdout: {stdout}"
    );
    assert!(
        !stdout.contains("n/a (search-based solver)"),
        "stdout: {stdout}"
    );
}

// ---------------------------------------------------------------------
// Property: the three accounting layers agree.
// ---------------------------------------------------------------------

fn forward_deps(setting: &PdeSetting) -> Vec<Dependency> {
    setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect()
}

/// Chase `input` under `deps` with the named engine, collecting spans,
/// and check that the trace, the `ChaseStats` counters, and the
/// `StepRecord` log tell the same story.
fn check_accounting_layers_agree(
    engine: &str,
    input: &Instance,
    deps: &[Dependency],
) -> Result<(), String> {
    let _guard = lock_sink();
    let gen = NullGen::new();
    let mut result: Option<ChaseResult> = None;
    let spans = collect_spans(|| {
        let res = match engine {
            "naive" => chase_naive_with(
                input.clone(),
                deps,
                WitnessMode::FreshNulls(&gen),
                ChaseLimits::default(),
            ),
            _ => chase_seminaive_with(
                input.clone(),
                deps,
                WitnessMode::FreshNulls(&gen),
                ChaseLimits::default(),
            ),
        };
        result = Some(res);
    });
    let res = result.expect("chase ran");

    // Trace ⇔ stats ⇔ provenance log: tgd applications.
    let fired_in_trace = sum_field(&spans, "chase.trigger", "fired");
    prop_assert_eq!(
        usize::try_from(fired_in_trace).unwrap(),
        res.stats.triggers_fired
    );
    prop_assert_eq!(res.stats.triggers_fired, tgd_step_count(&res));
    prop_assert_eq!(res.stats.triggers_fired, res.tgd_steps);

    // Trace ⇔ stats ⇔ provenance log: egd merges.
    let merges_in_trace = sum_field(&spans, "egd.merge", "merges");
    prop_assert_eq!(
        usize::try_from(merges_in_trace).unwrap(),
        res.stats.egd_merges
    );
    prop_assert_eq!(res.stats.egd_merges, egd_step_count(&res));
    prop_assert_eq!(res.stats.egd_merges, res.egd_steps);

    // Every round produced exactly one round span.
    let round_spans = spans.iter().filter(|s| s.name == "chase.round").count();
    prop_assert_eq!(round_spans, res.stats.rounds);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn trace_stats_and_log_agree_on_random_tgd_chases(
        edges in prop::collection::vec((0..5u32, 0..5u32), 0..10),
        engine_pick in 0..2u32,
    ) {
        let engine = if engine_pick == 0 { "naive" } else { "seminaive" };
        let p = paper::exact_view_setting();
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("E(v{a}, v{b}). "));
        }
        let input = parse_instance(p.schema(), &src).unwrap();
        let deps = forward_deps(&p);
        check_accounting_layers_agree(engine, &input, &deps)?;
    }

    #[test]
    fn trace_stats_and_log_agree_on_egd_heavy_chases(
        k in 2..5u32,
        engine_pick in 0..2u32,
    ) {
        let engine = if engine_pick == 0 { "naive" } else { "seminaive" };
        // The §4 egd-boundary workload: Σst mints two nulls per D fact
        // and the Σt egds merge them, so the egd side of the accounting
        // is actually exercised.
        let setting = boundary::egd_boundary_setting();
        let input = boundary::egd_boundary_instance(&setting, &Graph::complete(3), k);
        let deps = forward_deps(&setting);
        check_accounting_layers_agree(engine, &input, &deps)?;
    }
}
