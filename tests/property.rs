//! Property-based tests (proptest) over the core invariants:
//!
//! * chase postconditions (result satisfies the chased tgds; inputs are
//!   preserved);
//! * solution-aware chase stays inside the supplied solution and within
//!   the polynomial bound of Lemma 1;
//! * block decomposition is a partition and Prop. 1 agrees with the direct
//!   homomorphism test;
//! * the four homomorphism-search configurations agree;
//! * the CLIQUE and 3-COL reductions agree with the direct graph
//!   algorithms on random graphs;
//! * `ExistsSolution` agrees with the complete assignment search on random
//!   instances of `C_tract` settings;
//! * certain answers hold in every enumerated solution;
//! * `pde plan` certificates pass the independent checker and their
//!   static chase bounds dominate actual chase runs on random
//!   weakly-acyclic settings.

use peer_data_exchange::core::{
    assignment, blocks, certain_answers, solution::is_solution, tractable, GenericLimits,
};
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::{clique, graphs, paper, threecol};
use proptest::prelude::*;
use std::ops::ControlFlow;

/// A coarse "never worse" order over predicted complexity classes:
/// tractable < bounded-but-intractable < unbounded. The optimizer must
/// never move a setting rightward in this order.
fn complexity_cost(c: pde_analysis::ComplexityClass) -> u8 {
    use pde_analysis::ComplexityClass as C;
    match c {
        C::PTime => 0,
        C::NpComplete | C::InNp | C::ConpComplete | C::InConp => 1,
        C::Decidable => 2,
        C::NoBound => 3,
    }
}

/// A random ground instance over `E/2` with vertices `v0..vn`.
fn arb_edge_instance(n: u32, max_edges: usize) -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0..n, 0..n), 0..=max_edges)
}

fn edges_to_instance(setting: &PdeSetting, rel: &str, edges: &[(u32, u32)]) -> Instance {
    let mut src = String::new();
    for (a, b) in edges {
        src.push_str(&format!("{rel}(v{a}, v{b}). "));
    }
    parse_instance(setting.schema(), &src).unwrap()
}

/// A random graph from edge pairs (self-pairs dropped).
fn pairs_to_graph(n: u32, pairs: &[(u32, u32)]) -> graphs::Graph {
    let mut g = graphs::Graph::empty(n);
    for (a, b) in pairs {
        if a != b {
            g.add_edge(*a, *b);
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn chase_result_satisfies_chased_tgds(edges in arb_edge_instance(4, 8)) {
        let p = paper::exact_view_setting();
        let input = edges_to_instance(&p, "E", &edges);
        let gen = pde_relational::NullGen::new();
        let res = pde_chase::chase_tgds(input.clone(), p.sigma_st(), &gen);
        prop_assert!(res.is_success());
        let out = res.instance;
        prop_assert!(input.contained_in(&out));
        for t in p.sigma_st() {
            prop_assert!(pde_chase::satisfies_tgd(&out, t));
        }
    }

    #[test]
    fn solution_aware_chase_stays_inside_and_small(edges in arb_edge_instance(4, 6)) {
        // Build a known solution first (if one exists), then chase with it.
        let p = paper::exact_view_setting();
        let input = edges_to_instance(&p, "E", &edges);
        let out = assignment::solve(&p, &input).unwrap();
        if let Some(solution) = out.witness {
            let deps: Vec<Dependency> = p
                .sigma_st()
                .iter()
                .cloned()
                .map(Dependency::Tgd)
                .collect();
            let res = pde_chase::solution_aware_chase(
                input.clone(),
                &deps,
                &solution,
                ChaseLimits::default(),
            );
            prop_assert!(res.is_success());
            let sub = res.instance;
            prop_assert!(sub.contained_in(&solution), "chase stays inside K'");
            // Lemma 1: the chase length is polynomially bounded; for this
            // single full-premise Σst, each trigger fires at most once.
            let triggers = input.fact_count() * input.fact_count();
            prop_assert!(res.steps <= triggers + 1);
        }
    }

    #[test]
    fn blocks_partition_and_prop1(edges in arb_edge_instance(4, 6), nulls in 0u32..4) {
        // An instance with some nulls sprinkled in.
        let p = paper::example1_setting();
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("E(v{a}, v{b}). "));
        }
        for i in 0..nulls {
            src.push_str(&format!("E(?{i}, v0). "));
        }
        let inst = parse_instance(p.schema(), &src).unwrap();
        let bs = blocks::blocks(&inst);
        let total: usize = bs.iter().map(pde_core::Block::len).sum();
        prop_assert_eq!(total, inst.fact_count(), "blocks partition the facts");
        // Prop. 1 agreement.
        let ground = edges_to_instance(&p, "E", &edges);
        prop_assert_eq!(
            blocks::blockwise_hom_exists(&inst, &ground),
            pde_relational::instance_hom_exists(&inst, &ground)
        );
    }

    #[test]
    fn hom_configs_agree(edges in arb_edge_instance(4, 8)) {
        let p = paper::example1_setting();
        let inst = edges_to_instance(&p, "E", &edges);
        let atoms = pde_relational::parse_atoms(p.schema(), "E(x, y), E(y, z), E(z, x)").unwrap();
        let mut counts = Vec::new();
        for use_index in [false, true] {
            for reorder_atoms in [false, true] {
                let mut n = 0usize;
                let _ = pde_relational::for_each_hom_with(
                    &atoms,
                    &inst,
                    &pde_relational::Assignment::new(),
                    pde_relational::HomConfig { use_index, reorder_atoms },
                    |_| {
                        n += 1;
                        ControlFlow::Continue(())
                    },
                );
                counts.push(n);
            }
        }
        prop_assert!(counts.windows(2).all(|w| w[0] == w[1]), "{:?}", counts);
    }

    #[test]
    fn clique_reduction_matches_baseline(pairs in arb_edge_instance(4, 6)) {
        let g = pairs_to_graph(4, &pairs);
        let k = 3;
        let p = clique::clique_setting();
        let input = clique::clique_instance(&p, &g, k);
        let out = assignment::solve(&p, &input).unwrap();
        prop_assert_eq!(out.exists, graphs::has_k_clique(&g, k));
    }

    #[test]
    fn threecol_reduction_matches_baseline(pairs in arb_edge_instance(5, 7)) {
        let g = pairs_to_graph(5, &pairs);
        let p = threecol::threecol_problem();
        let input = threecol::threecol_instance(&p, &g);
        let out = assignment::solve_disjunctive(&p, &input).unwrap();
        prop_assert_eq!(out.exists, graphs::is_three_colorable(&g));
    }

    #[test]
    fn tractable_agrees_with_assignment_on_random_instances(
        edges in arb_edge_instance(4, 7)
    ) {
        for p in [paper::example1_setting(), paper::exact_view_setting()] {
            let input = edges_to_instance(&p, "E", &edges);
            let fast = tractable::exists_solution(&p, &input).unwrap();
            let slow = assignment::solve(&p, &input).unwrap();
            prop_assert_eq!(fast.exists, slow.exists);
            if let Some(w) = fast.witness {
                prop_assert!(is_solution(&p, &input, &w));
            }
            if let Some(w) = slow.witness {
                prop_assert!(is_solution(&p, &input, &w));
            }
        }
    }

    #[test]
    fn certain_answers_hold_in_every_enumerated_solution(
        edges in arb_edge_instance(3, 5)
    ) {
        let p = paper::example1_setting();
        let input = edges_to_instance(&p, "E", &edges);
        let q: UnionQuery = parse_query(p.schema(), "q(x, y) :- H(x, y)").unwrap().into();
        let out = certain_answers(&p, &input, &q, GenericLimits::default()).unwrap();
        if out.solution_exists {
            // Re-enumerate and verify each certain answer in each solution.
            let problem =
                assignment::DisjunctiveProblem::from_setting(&p).unwrap();
            assignment::for_each_solution(&problem, &input, |sol| {
                for ans in &out.answers {
                    assert!(
                        q.contains_answer(sol, ans),
                        "certain answer {ans:?} missing from a solution"
                    );
                }
                ControlFlow::Continue(())
            })
            .unwrap();
        }
    }

    #[test]
    fn weak_acyclicity_of_random_full_tgd_sets(
        arities in prop::collection::vec(0u8..3, 1..4)
    ) {
        // Full tgds never create special edges, so any set of them is
        // weakly acyclic.
        let schema = parse_schema("target A/2; target B/2; target C/2;").unwrap();
        let names = ["A", "B", "C"];
        let mut tgds = Vec::new();
        for (i, a) in arities.iter().enumerate() {
            let from = names[i % 3];
            let to = names[(*a as usize) % 3];
            tgds.push(
                parse_tgd(&schema, &format!("{from}(x, y) -> {to}(y, x)")).unwrap(),
            );
        }
        prop_assert!(pde_constraints::is_weakly_acyclic(&schema, &tgds));
    }

    #[test]
    fn chase_respects_the_constructive_lemma1_bound(
        edges in arb_edge_instance(4, 6)
    ) {
        // The explicit chase_bound must dominate actual chase behavior on
        // random inputs for a weakly acyclic mixed set.
        let schema = std::sync::Arc::new(
            parse_schema("target A/2; target B/2; target C/2;").unwrap(),
        );
        let tgds = parse_tgds(
            &schema,
            "A(x, y) -> exists z . B(y, z); B(x, y) -> C(x, y)",
        )
        .unwrap();
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("A(v{a}, v{b}). "));
        }
        let inst = parse_instance(&schema, &src).unwrap();
        let bound = pde_constraints::chase_bound(
            &schema,
            &tgds,
            inst.active_domain().len().max(1),
        )
        .expect("weakly acyclic");
        let gen = pde_relational::NullGen::new();
        let res = pde_chase::chase_tgds(inst, &tgds, &gen);
        prop_assert!(res.is_success());
        prop_assert!(res.steps <= bound.step_bound);
        prop_assert!(res.instance.fact_count() <= bound.fact_bound);
        prop_assert!(res.instance.active_domain().len() <= bound.value_bound);
    }

    #[test]
    fn certificate_bound_dominates_the_actual_chase(seed in 0u64..512, n_t in 0u32..3) {
        // The planner's certificate is *static*: it sees only the setting,
        // never the instance beyond its active-domain size. Its Lemma 1
        // step/fact bounds must therefore dominate any actual chase of the
        // forward tgds — on settings the planner was never written for.
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let params = RandomSettingParams::default();
        let setting = match random_weakly_acyclic_setting(&params, n_t, seed) {
            Ok(s) => s,
            Err(_) => return Ok(()), // rare degenerate draw (e.g. unsafe Σts)
        };
        let input = random_instance(&setting, 4, 0, 3, seed ^ 0x5eed);
        let cert = pde_analysis::plan_setting(&setting, input.active_domain().len());
        prop_assert!(pde_analysis::verify_certificate(&setting, &cert).is_ok());
        prop_assert!(cert.chase.weakly_acyclic, "generator guarantees weak acyclicity");
        let forward: Vec<Tgd> = setting
            .sigma_st()
            .iter()
            .cloned()
            .chain(setting.target_tgds().cloned())
            .collect();
        let gen = pde_relational::NullGen::new();
        let res = pde_chase::chase_tgds(input, &forward, &gen);
        prop_assert!(res.is_success());
        prop_assert!(
            res.steps <= cert.chase.step_bound,
            "chase took {} steps, certificate promised <= {}",
            res.steps,
            cert.chase.step_bound
        );
        prop_assert!(res.instance.fact_count() <= cert.chase.fact_bound);
        prop_assert!(res.instance.active_domain().len() <= cert.chase.value_bound);
    }

    #[test]
    fn certified_termination_budget_suffices_for_governed_chase(
        seed in 0u64..256, n_t in 0u32..3
    ) {
        // Any setting the termination hierarchy certifies must run
        // `chase_governed_with` to a fixpoint within the certificate's
        // derived budgets — never a `ResourceExceeded` or governor stop —
        // on both engines. Random weakly acyclic settings exercise the
        // weak-acyclicity criterion; two fixed non-WA shapes (the spiral
        // and swap-rule bundles) exercise joint acyclicity and the
        // critical-instance check.
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let mut cases: Vec<(PdeSetting, Instance)> = Vec::new();
        let params = RandomSettingParams::default();
        if let Ok(setting) = random_weakly_acyclic_setting(&params, n_t, seed) {
            let input = random_instance(&setting, 4, 0, 3, seed ^ 0xb0d6);
            cases.push((setting, input));
        }
        // Jointly acyclic but not weakly acyclic (examples/spiral.pde).
        let spiral = PdeSetting::parse(
            "source SA/1; source SB/1; target A/1; target B/1; target C/2",
            "SA(x) -> A(x); SB(x) -> B(x)",
            "",
            "A(x), B(x) -> exists z . C(x, z); C(x, y) -> A(y)",
        )
        .unwrap();
        let spiral_input =
            parse_instance(spiral.schema(), "SA(a). SB(a). SB(b).").unwrap();
        cases.push((spiral, spiral_input));
        // Certified only by the critical-instance check
        // (examples/critical_only.pde).
        let swap = PdeSetting::parse(
            "source S/1; target A/1; target R/2",
            "S(x) -> A(x)",
            "A(x) -> S(x)",
            "A(x) -> exists y . R(x, y); R(x, y) -> R(y, x); R(w, w) -> A(w)",
        )
        .unwrap();
        let swap_input = parse_instance(swap.schema(), "S(a).").unwrap();
        cases.push((swap, swap_input));

        let gov = Governor::unlimited();
        for (setting, input) in &cases {
            let cert = pde_analysis::plan_setting(setting, input.active_domain().len());
            if !cert.chase.termination.certified() {
                continue; // only certified settings carry the budget promise
            }
            prop_assert!(pde_analysis::verify_certificate(setting, &cert).is_ok());
            let deps = pde_analysis::forward_dependencies(setting);
            let limits = ChaseLimits {
                max_steps: cert.budgets.chase_steps,
                max_facts: cert.budgets.chase_facts,
            };
            for engine in [pde_chase::ChaseEngine::Naive, pde_chase::ChaseEngine::Seminaive] {
                let res = pde_chase::chase_governed_with(
                    input.clone(),
                    &deps,
                    pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
                    limits,
                    engine,
                    &gov,
                );
                // An egd conflict (`Failure`) is a legitimate chase
                // verdict; what the certificate rules out is running out
                // of budget before reaching one.
                prop_assert!(
                    !matches!(
                        res.outcome,
                        ChaseOutcome::ResourceExceeded | ChaseOutcome::Stopped { .. }
                    ),
                    "{:?} chase exhausted the derived budget (steps {} / {}, facts {} / {}): {:?}",
                    engine,
                    res.steps,
                    limits.max_steps,
                    res.instance.fact_count(),
                    limits.max_facts,
                    res.outcome
                );
                if res.is_success() {
                    prop_assert!(res.steps <= cert.budgets.chase_steps);
                    prop_assert!(res.instance.fact_count() <= cert.budgets.chase_facts);
                }
            }
        }
    }

    #[test]
    fn naive_and_seminaive_chase_agree(seed in 0u64..512, n_t in 0u32..3) {
        // The delta-driven engine must be indistinguishable from the naive
        // oracle on random weakly acyclic settings: same outcome kind, and
        // on success homomorphically equivalent results that satisfy the
        // chased dependencies (restricted-chase results are only unique up
        // to hom-equivalence, so we do not demand isomorphism here).
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let params = RandomSettingParams::default();
        let setting = match random_weakly_acyclic_setting(&params, n_t, seed) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let input = random_instance(&setting, 4, 0, 3, seed ^ 0xd1ff);
        let deps: Vec<Dependency> = setting
            .sigma_st()
            .iter()
            .cloned()
            .map(Dependency::Tgd)
            .chain(setting.sigma_t().iter().cloned())
            .collect();
        let naive = pde_chase::chase_naive_with(
            input.clone(),
            &deps,
            pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
            ChaseLimits::default(),
        );
        let semi = pde_chase::chase_seminaive_with(
            input,
            &deps,
            pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
            ChaseLimits::default(),
        );
        prop_assert_eq!(naive.is_success(), semi.is_success());
        prop_assert_eq!(naive.is_failure(), semi.is_failure());
        if naive.is_success() {
            prop_assert!(pde_chase::satisfies_all(&naive.instance, &deps));
            prop_assert!(pde_chase::satisfies_all(&semi.instance, &deps));
            prop_assert!(
                pde_relational::instance_hom_exists(&naive.instance, &semi.instance),
                "naive result maps into semi-naive result"
            );
            prop_assert!(
                pde_relational::instance_hom_exists(&semi.instance, &naive.instance),
                "semi-naive result maps into naive result"
            );
        }
    }

    #[test]
    fn naive_and_seminaive_agree_on_egd_heavy_chases(edges in arb_edge_instance(4, 7)) {
        // Egd-focused differential: merge-heavy and failure-prone dep sets
        // over random edge instances. Here both engines run the same merge
        // discipline, so successful results must be isomorphic, not merely
        // hom-equivalent.
        let schema = std::sync::Arc::new(
            parse_schema("source E/2; target H/2; target K/2;").unwrap(),
        );
        let dep_sets = [
            // Two existentials forced together per source node.
            "E(x, y) -> exists z . H(x, z); E(x, y) -> exists w . K(x, w); \
             H(x, y), K(x, z) -> y = z",
            // Key constraint on copied edges: fails when a node has two
            // distinct successors.
            "E(x, y) -> H(x, y); H(x, y), H(x, z) -> y = z",
        ];
        for src_deps in dep_sets {
            let deps = parse_dependencies(&schema, src_deps).unwrap();
            let mut src = String::new();
            for (a, b) in &edges {
                src.push_str(&format!("E(v{a}, v{b}). "));
            }
            let input = parse_instance(&schema, &src).unwrap();
            let naive = pde_chase::chase_naive_with(
                input.clone(),
                &deps,
                pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
                ChaseLimits::default(),
            );
            let semi = pde_chase::chase_seminaive_with(
                input,
                &deps,
                pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
                ChaseLimits::default(),
            );
            prop_assert_eq!(naive.is_success(), semi.is_success(), "{}", src_deps);
            if naive.is_success() {
                prop_assert!(pde_chase::satisfies_all(&semi.instance, &deps));
                prop_assert!(
                    pde_relational::instances_isomorphic(&naive.instance, &semi.instance),
                    "{src_deps}"
                );
            }
        }
    }

    #[test]
    fn heap_accounting_never_drifts_under_random_ops(
        ops in prop::collection::vec((0u8..5, 0u32..6, 0u32..6), 1..80),
    ) {
        // Columnar-storage invariant: the incremental heap-byte counter
        // must equal a from-scratch recount after every mutation —
        // inserts (including duplicates), removes of present and absent
        // rows, egd-style value rewrites, epoch bumps, and the
        // compactions those trigger. `recount_heap_bytes` also
        // cross-checks the liveness / null / index-entry counters via
        // debug assertions, so drift in any of them fails here too.
        use pde_relational::{NullId, Relation, Tuple, Value};
        let val = |k: u32| {
            if k < 4 {
                Value::constant(format!("c{k}"))
            } else {
                Value::Null(NullId(k - 4))
            }
        };
        let mut r = Relation::new(2);
        let mut epoch = 0u64;
        for (op, a, b) in ops {
            let t = Tuple::new(vec![val(a), val(b)]);
            match op {
                0 | 1 => {
                    r.insert_at(t, epoch);
                }
                2 => {
                    r.remove(&t);
                }
                3 => {
                    r.substitute_at(val(a), val(b), epoch);
                }
                _ => epoch += 1,
            }
            prop_assert_eq!(r.heap_bytes(), r.recount_heap_bytes());
        }
    }

    #[test]
    fn heap_accounting_never_drifts_across_chase_engines(edges in arb_edge_instance(4, 7)) {
        // End-to-end twin of the op-sequence drift test: both engines'
        // real mutation mix — trigger inserts, union-find merge
        // application, tombstone compaction — must leave every chased
        // instance's incremental byte counter equal to a recount.
        let schema = std::sync::Arc::new(
            parse_schema("source E/2; target H/2; target K/2;").unwrap(),
        );
        let deps = parse_dependencies(
            &schema,
            "E(x, y) -> exists z . H(x, z); E(x, y) -> exists w . K(x, w); \
             H(x, y), K(x, z) -> y = z",
        )
        .unwrap();
        let mut src = String::new();
        for (a, b) in &edges {
            src.push_str(&format!("E(v{a}, v{b}). "));
        }
        let input = parse_instance(&schema, &src).unwrap();
        prop_assert_eq!(input.heap_bytes(), input.recount_heap_bytes());
        for result in [
            pde_chase::chase_naive_with(
                input.clone(),
                &deps,
                pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
                ChaseLimits::default(),
            ),
            pde_chase::chase_seminaive_with(
                input.clone(),
                &deps,
                pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
                ChaseLimits::default(),
            ),
        ] {
            prop_assert_eq!(
                result.instance.heap_bytes(),
                result.instance.recount_heap_bytes()
            );
        }
    }

    #[test]
    fn shrink_solution_yields_contained_solutions(edges in arb_edge_instance(4, 6)) {
        let p = paper::example1_setting();
        let input = edges_to_instance(&p, "E", &edges);
        if let Some(w) = assignment::solve(&p, &input).unwrap().witness {
            let small = pde_core::shrink_solution(&p, &input, &w).unwrap();
            prop_assert!(small.contained_in(&w));
            prop_assert!(is_solution(&p, &input, &small));
        }
    }

    #[test]
    fn core_of_solution_is_solution(edges in arb_edge_instance(4, 6)) {
        let p = paper::exact_view_setting();
        let input = edges_to_instance(&p, "E", &edges);
        if let Some(w) = assignment::solve(&p, &input).unwrap().witness {
            let cored = pde_core::core_solution(&p, &input, &w).unwrap();
            prop_assert!(is_solution(&p, &input, &cored));
            prop_assert!(cored.fact_count() <= w.fact_count());
        }
    }

    #[test]
    fn isomorphism_is_reflexive_and_rename_invariant(
        edges in arb_edge_instance(3, 5), shift in 0u32..50
    ) {
        let p = paper::example1_setting();
        let mut src = String::new();
        for (i, (a, _)) in edges.iter().enumerate() {
            src.push_str(&format!("E(v{a}, ?{i}). "));
        }
        let x = parse_instance(p.schema(), &src).unwrap();
        let mut src2 = String::new();
        for (i, (a, _)) in edges.iter().enumerate() {
            src2.push_str(&format!("E(v{a}, ?{}). ", u32::try_from(i).unwrap() + shift));
        }
        let y = parse_instance(p.schema(), &src2).unwrap();
        prop_assert!(pde_relational::instances_isomorphic(&x, &x));
        prop_assert!(pde_relational::instances_isomorphic(&x, &y));
    }

    #[test]
    fn parser_roundtrips_random_dependencies(
        n_prem in 1usize..3, n_conc in 1usize..3, n_ex in 0usize..2
    ) {
        let schema = parse_schema("source E/2; target H/2;").unwrap();
        let prem: Vec<String> = (0..n_prem)
            .map(|i| format!("E(x{i}, x{})", i + 1))
            .collect();
        let exvars: Vec<String> = (0..n_ex).map(|i| format!("z{i}")).collect();
        let conc: Vec<String> = (0..n_conc)
            .map(|i| {
                if i < n_ex {
                    format!("H(x0, z{i})")
                } else {
                    "H(x0, x1)".to_string()
                }
            })
            .collect();
        let mut src = prem.join(", ");
        src.push_str(" -> ");
        if !exvars.is_empty() {
            src.push_str(&format!("exists {} . ", exvars.join(", ")));
        }
        src.push_str(&conc.join(", "));
        let parsed = parse_tgd(&schema, &src).unwrap();
        let rendered = format!("{}", parsed.display(&schema));
        let reparsed = parse_tgd(&schema, &rendered).unwrap();
        prop_assert_eq!(parsed, reparsed);
    }
}

/// The semi-naive engine's `StepRecord` log stays within the Lemma 1 step
/// bound of a verified `pde plan` certificate: delta-driven trigger
/// discovery changes *when* triggers are found, never how many steps the
/// chase applies.
#[test]
fn seminaive_step_log_respects_verified_certificate_bound() {
    let setting = PdeSetting::parse(
        "source E/2; target H/2; target K/2;",
        "E(x, y) -> exists z . H(x, z), H(z, y)",
        "",
        "H(x, y) -> K(x, y)",
    )
    .unwrap();
    let input = parse_instance(setting.schema(), "E(a, b). E(b, c). E(c, a).").unwrap();
    let cert = pde_analysis::plan_setting(&setting, input.active_domain().len());
    pde_analysis::verify_certificate(&setting, &cert).expect("certificate verifies");
    let deps: Vec<Dependency> = setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect();
    let res = pde_chase::chase_seminaive_with(
        input,
        &deps,
        pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
        ChaseLimits::from_bound(pde_constraints::ChaseBound {
            step_bound: cert.chase.step_bound,
            fact_bound: cert.chase.fact_bound,
            value_bound: cert.chase.value_bound,
        }),
    );
    assert!(res.is_success(), "chase completes within certified budgets");
    assert_eq!(res.log.len(), res.steps, "one record per applied step");
    assert!(
        res.log.len() <= cert.chase.step_bound,
        "log length {} exceeds certified Lemma 1 bound {}",
        res.log.len(),
        cert.chase.step_bound
    );
    assert!(res.instance.fact_count() <= cert.chase.fact_bound);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn optimized_plan_never_certifies_worse_bounds(seed in 0u64..512, n_t in 0u32..3) {
        // Bound dominance: rewriting only deletes dependencies, so the
        // planner's Lemma 1 bounds on the optimized setting must dominate
        // (be no larger than) the original's, weak acyclicity must be
        // preserved, and the predicted complexity class must never move
        // toward intractability.
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let params = RandomSettingParams::default();
        let setting = match random_weakly_acyclic_setting(&params, n_t, seed) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let input = random_instance(&setting, 4, 0, 3, seed ^ 0x5eed);
        let opt = pde_analysis::optimize_setting(&setting, &input);
        prop_assert!(
            pde_analysis::verify_rewrite(&setting, &input, &opt.certificate).is_ok(),
            "the rewrite certificate must re-verify against its own inputs"
        );
        let adom = input.active_domain().len();
        let orig = pde_analysis::plan_setting(&setting, adom);
        let better = pde_analysis::plan_setting(&opt.optimized, adom);
        prop_assert!(pde_analysis::verify_certificate(&opt.optimized, &better).is_ok());
        if orig.chase.weakly_acyclic {
            prop_assert!(better.chase.weakly_acyclic, "deletion preserves weak acyclicity");
            prop_assert!(better.chase.step_bound <= orig.chase.step_bound);
            prop_assert!(better.chase.fact_bound <= orig.chase.fact_bound);
            prop_assert!(better.chase.value_bound <= orig.chase.value_bound);
        }
        prop_assert!(
            complexity_cost(better.sol_complexity) <= complexity_cost(orig.sol_complexity),
            "SOL(P) moved from {:?} to {:?}", orig.sol_complexity, better.sol_complexity
        );
        prop_assert!(
            complexity_cost(better.certain_complexity)
                <= complexity_cost(orig.certain_complexity),
            "certain answers moved from {:?} to {:?}",
            orig.certain_complexity, better.certain_complexity
        );
    }

    #[test]
    fn optimizer_preserves_data_exchange_answers_on_both_engines(
        seed in 0u64..256, n_t in 0u32..3
    ) {
        // Differential, data-exchange route (Σts = ∅): solving the
        // optimized setting under its stratified schedule gives the same
        // yes/no answer as solving the original unscheduled — on both
        // chase engines (the naive engine deliberately ignores schedules).
        use peer_data_exchange::core::data_exchange::solve_data_exchange_governed_scheduled;
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let params = RandomSettingParams {
            n_ts: 0,
            ..RandomSettingParams::default()
        };
        let setting = match random_weakly_acyclic_setting(&params, n_t, seed) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let input = random_instance(&setting, 4, 0, 3, seed ^ 0x09f7);
        let opt = pde_analysis::optimize_setting(&setting, &input);
        prop_assert!(pde_analysis::verify_rewrite(&setting, &input, &opt.certificate).is_ok());
        let schedule = pde_analysis::forward_schedule(&opt.optimized);
        let gov = Governor::unlimited();
        let mut answers = Vec::new();
        for engine in [pde_chase::ChaseEngine::Naive, pde_chase::ChaseEngine::Seminaive] {
            let base = solve_data_exchange_governed_scheduled(
                &setting, &input, ChaseLimits::default(), engine, &gov, None,
            )
            .unwrap();
            let rewritten = solve_data_exchange_governed_scheduled(
                &opt.optimized, &input, ChaseLimits::default(), engine, &gov, Some(&schedule),
            )
            .unwrap();
            answers.push(base.exists);
            answers.push(rewritten.exists);
        }
        prop_assert!(
            answers.windows(2).all(|w| w[0] == w[1]),
            "optimized/original × naive/semi-naive disagree: {answers:?}"
        );
    }

    #[test]
    fn optimizer_preserves_assignment_and_certain_answers(seed in 0u64..256) {
        // Differential, peer route (Σts ≠ ∅, Σt = ∅): the complete
        // assignment search returns the same yes/no answer on the
        // optimized setting, on both chase engines; certain answers over a
        // target relation are identical as sets.
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let params = RandomSettingParams::default();
        let setting = match random_weakly_acyclic_setting(&params, 0, seed) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let input = random_instance(&setting, 4, 0, 3, seed ^ 0xd1ce);
        let opt = pde_analysis::optimize_setting(&setting, &input);
        prop_assert!(pde_analysis::verify_rewrite(&setting, &input, &opt.certificate).is_ok());
        let gov = Governor::unlimited();
        for engine in [pde_chase::ChaseEngine::Naive, pde_chase::ChaseEngine::Seminaive] {
            let base = assignment::solve_governed(&setting, &input, engine, &gov).unwrap();
            let rewritten =
                assignment::solve_governed(&opt.optimized, &input, engine, &gov).unwrap();
            prop_assert_eq!(
                base.exists, rewritten.exists,
                "assignment search disagrees on {:?}", engine
            );
        }
        // Certain answers over the first target relation.
        let schema = setting.schema();
        let rel = schema.rels_of(pde_relational::Peer::Target).next().unwrap();
        let vars: Vec<String> = (0..schema.arity(rel)).map(|i| format!("x{i}")).collect();
        let q_src = format!("q({}) :- {}({})", vars.join(", "), schema.name(rel), vars.join(", "));
        let q: UnionQuery = parse_query(schema, &q_src).unwrap().into();
        let base = certain_answers(&setting, &input, &q, GenericLimits::default()).unwrap();
        let rewritten =
            certain_answers(&opt.optimized, &input, &q, GenericLimits::default()).unwrap();
        prop_assert_eq!(base.solution_exists, rewritten.solution_exists);
        prop_assert_eq!(base.answers, rewritten.answers);
    }

    #[test]
    fn scheduled_chase_agrees_with_unscheduled(seed in 0u64..512, n_t in 0u32..3) {
        // The stratified semi-naive chase must be indistinguishable from
        // the unscheduled one: same outcome kind, and on success
        // hom-equivalent results satisfying the chased dependencies.
        use peer_data_exchange::workloads::random::{
            random_instance, random_weakly_acyclic_setting, RandomSettingParams,
        };
        let params = RandomSettingParams::default();
        let setting = match random_weakly_acyclic_setting(&params, n_t, seed) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        let input = random_instance(&setting, 4, 0, 3, seed ^ 0x57a7);
        let deps = pde_analysis::forward_dependencies(&setting);
        let schedule = pde_analysis::forward_schedule(&setting);
        prop_assert!(schedule.is_partition_of(deps.len()));
        let gov = Governor::unlimited();
        let run = |sched: Option<&pde_chase::DepSchedule>| {
            pde_chase::chase_governed_scheduled(
                input.clone(),
                &deps,
                pde_chase::WitnessMode::FreshNulls(&pde_relational::NullGen::new()),
                ChaseLimits::default(),
                pde_chase::ChaseEngine::Seminaive,
                &gov,
                sched,
            )
        };
        let flat = run(None);
        let strat = run(Some(&schedule));
        prop_assert_eq!(flat.is_success(), strat.is_success());
        prop_assert_eq!(flat.is_failure(), strat.is_failure());
        if flat.is_success() {
            prop_assert!(pde_chase::satisfies_all(&flat.instance, &deps));
            prop_assert!(pde_chase::satisfies_all(&strat.instance, &deps));
            prop_assert!(
                pde_relational::instance_hom_exists(&flat.instance, &strat.instance),
                "unscheduled result maps into the stratified result"
            );
            prop_assert!(
                pde_relational::instance_hom_exists(&strat.instance, &flat.instance),
                "stratified result maps into the unscheduled result"
            );
        }
    }
}
