//! Cross-solver agreement: every pair of applicable solvers must return
//! the same existence verdict, and every returned witness must verify.
//!
//! This is the strongest correctness net in the suite: the tractable
//! algorithm (Fig. 3), the assignment search, and the generic
//! witness-chase search are three very different implementations of the
//! same semantics.

use peer_data_exchange::core::{
    assignment, data_exchange, generic, solution::is_solution, tractable, GenericLimits, PdeSetting,
};
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::{graphs::Graph, lav, paper};

/// All ground instances over `E/2` with vertices from `vals`, up to
/// `max_edges` edges, enumerated deterministically.
fn edge_instances(setting: &PdeSetting, vals: &[&str], max_edges: usize) -> Vec<Instance> {
    let mut pairs = Vec::new();
    for a in vals {
        for b in vals {
            pairs.push(format!("E({a}, {b})."));
        }
    }
    let mut out = Vec::new();
    // All subsets of the pair universe with ≤ max_edges members.
    for mask in 0u32..(1 << pairs.len()) {
        if mask.count_ones() as usize > max_edges {
            continue;
        }
        let mut src = String::new();
        for (i, p) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                src.push_str(p);
            }
        }
        out.push(parse_instance(setting.schema(), &src).unwrap());
    }
    out
}

#[test]
fn tractable_vs_assignment_vs_generic_on_example1() {
    let p = paper::example1_setting();
    let lim = GenericLimits::default();
    for input in edge_instances(&p, &["a", "b"], 4) {
        let fast = tractable::exists_solution(&p, &input).unwrap().exists;
        let assigned = assignment::solve(&p, &input).unwrap();
        let searched = generic::solve(&p, &input, lim).unwrap();
        assert_eq!(fast, assigned.exists, "{input:?}");
        assert_eq!(Some(fast), searched.decided(), "{input:?}");
        if let Some(w) = assigned.witness {
            assert!(is_solution(&p, &input, &w), "{input:?}");
        }
        if let Some(w) = searched.witness() {
            assert!(is_solution(&p, &input, w), "{input:?}");
        }
    }
}

#[test]
fn tractable_vs_assignment_on_exact_views() {
    let p = paper::exact_view_setting();
    for input in edge_instances(&p, &["a", "b"], 4) {
        let fast = tractable::exists_solution(&p, &input).unwrap().exists;
        let slow = assignment::solve(&p, &input).unwrap().exists;
        assert_eq!(fast, slow, "{input:?}");
    }
}

#[test]
fn tractable_vs_assignment_on_marked_example() {
    let p = paper::marked_example_setting();
    // All instances over S/2 with values {a, b}.
    let vals = ["a", "b"];
    let mut pairs = Vec::new();
    for a in &vals {
        for b in &vals {
            pairs.push(format!("S({a}, {b})."));
        }
    }
    for mask in 0u32..(1 << pairs.len()) {
        let mut src = String::new();
        for (i, p2) in pairs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                src.push_str(p2);
            }
        }
        let input = parse_instance(p.schema(), &src).unwrap();
        let fast = tractable::exists_solution(&p, &input).unwrap().exists;
        let slow = assignment::solve(&p, &input).unwrap().exists;
        assert_eq!(fast, slow, "{src}");
    }
}

#[test]
fn assignment_vs_generic_on_clique_setting() {
    // The clique setting has Σt = ∅, so both complete solvers apply.
    let p = peer_data_exchange::workloads::clique::clique_setting();
    let lim = GenericLimits::default();
    for (g, k) in [
        (Graph::complete(3), 3u32),
        (Graph::path(3), 3),
        (Graph::cycle(4), 2),
    ] {
        let input = peer_data_exchange::workloads::clique::clique_instance(&p, &g, k);
        let a = assignment::solve(&p, &input).unwrap().exists;
        let b = generic::solve(&p, &input, lim).unwrap().decided();
        assert_eq!(Some(a), b, "k={k}");
    }
}

#[test]
fn data_exchange_vs_generic_on_sigma_ts_empty() {
    let p = PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, y) -> exists z . H(x, z)",
        "",
        "H(x, y), H(x, z) -> y = z",
    )
    .unwrap();
    let lim = GenericLimits::default();
    for src in [
        "E(a, b).",
        "E(a, b). E(a, c).",
        "E(a, b). H(a, q). H(a, r).",
        "E(a, b). H(a, q).",
        "",
    ] {
        let input = parse_instance(p.schema(), src).unwrap();
        let de = data_exchange::solve_data_exchange(&p, &input)
            .unwrap()
            .exists;
        let gen = generic::solve(&p, &input, lim).unwrap().decided();
        assert_eq!(Some(de), gen, "{src}");
    }
}

#[test]
fn lav_workload_solver_triangle() {
    let p = lav::lav_setting();
    let lim = GenericLimits::default();
    for input in [
        lav::lav_solvable_instance(&p, 1, 3),
        lav::lav_unsolvable_instance(&p, 2, 2),
        lav::lav_graph_instance(&p, &Graph::cycle(3), true),
        lav::lav_graph_instance(&p, &Graph::cycle(3), false),
    ] {
        let fast = tractable::exists_solution(&p, &input).unwrap().exists;
        let assigned = assignment::solve(&p, &input).unwrap().exists;
        let searched = generic::solve(&p, &input, lim).unwrap().decided();
        assert_eq!(fast, assigned);
        assert_eq!(Some(fast), searched);
    }
}

#[test]
fn witnesses_always_verify() {
    // Any witness returned by any solver must pass the Def. 2 checks.
    let settings = [
        paper::example1_setting(),
        paper::exact_view_setting(),
        paper::marked_example_setting(),
    ];
    for p in &settings {
        let rel = p.schema().rel_ids().next().unwrap();
        let relname = p.schema().name(rel).as_str();
        for src in [
            format!("{relname}(a, a)."),
            format!("{relname}(a, b). {relname}(b, a)."),
            format!("{relname}(a, b). {relname}(b, c)."),
        ] {
            let input = parse_instance(p.schema(), &src).unwrap();
            let r = decide(p, &input).unwrap();
            if let Some(w) = r.witness {
                assert!(is_solution(p, &input, &w), "{src}");
            }
        }
    }
}
