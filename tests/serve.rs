//! Integration tests for `pde serve`, driving the real binary over pipes:
//! durable acknowledgments survive `kill -9`, a corrupted journal tail
//! degrades to a rewind warning instead of a crash, and a request that is
//! rejected in-band keeps the loop alive.

use std::io::{BufRead, BufReader, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdout, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pde")
}

const BUNDLE: &str = "
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%instance
E(a, a).
";

struct Serve {
    child: Child,
    out: BufReader<ChildStdout>,
}

impl Serve {
    fn start(bundle: &std::path::Path, store: &std::path::Path) -> Serve {
        let mut child = Command::new(bin())
            .args(["serve", bundle.to_str().unwrap(), store.to_str().unwrap()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("serve starts");
        let out = BufReader::new(child.stdout.take().expect("stdout piped"));
        Serve { child, out }
    }

    /// Read one JSONL response line.
    fn read_line(&mut self) -> String {
        let mut line = String::new();
        self.out.read_line(&mut line).expect("serve responds");
        assert!(!line.is_empty(), "serve closed its stdout unexpectedly");
        line
    }

    /// Send one request line and read its response.
    fn request(&mut self, req: &str) -> String {
        let stdin = self.child.stdin.as_mut().expect("stdin piped");
        writeln!(stdin, "{req}").expect("request written");
        stdin.flush().expect("request flushed");
        self.read_line()
    }

    fn kill9(mut self) {
        self.child.kill().expect("kill -9 delivered");
        let _ = self.child.wait();
    }

    fn shutdown(mut self) {
        let _ = self.request("{\"op\":\"shutdown\"}");
        let status = self.child.wait().expect("serve exits");
        assert!(status.success(), "clean shutdown exits 0");
    }
}

fn fixture(tag: &str) -> (PathBuf, PathBuf) {
    let dir = std::env::temp_dir().join(format!("pde-serve-tests-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let bundle = dir.join("setting.pde");
    std::fs::write(&bundle, BUNDLE).unwrap();
    (bundle, dir.join("store"))
}

#[test]
fn acknowledged_inserts_survive_kill_minus_nine() {
    let (bundle, store) = fixture("kill9");

    let mut serve = Serve::start(&bundle, &store);
    let hello = serve.read_line();
    assert!(hello.contains("\"kind\":\"pde-serve-hello\""), "{hello}");
    assert!(hello.contains("\"seeded\":1"), "{hello}");
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"yes\""));
    // Commit-before-acknowledge: once this response is on the pipe, the
    // facts are durable no matter how the process dies.
    let ack = serve.request("{\"op\":\"insert\",\"facts\":\"E(a, b). E(b, c).\"}");
    assert!(
        ack.contains("\"ok\":true") && ack.contains("\"inserted\":2"),
        "{ack}"
    );
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"no\""));
    serve.kill9();

    // Restart on the same store: recovery replays the journal — same
    // epoch, same facts, same answer as before the crash.
    let mut serve = Serve::start(&bundle, &store);
    let hello = serve.read_line();
    assert!(
        hello.contains("\"seeded\":0"),
        "restart must not re-seed: {hello}"
    );
    assert!(hello.contains("\"facts\":3"), "{hello}");
    assert!(hello.contains("\"epoch\":2"), "{hello}");
    assert!(hello.contains("\"rewound\":false"), "{hello}");
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"no\""));
    // And the store still accepts new work after recovery.
    assert!(serve
        .request("{\"op\":\"retract\",\"facts\":\"E(a, b).\"}")
        .contains("\"retracted\":1"));
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"yes\""));
    serve.shutdown();
}

#[test]
fn a_corrupt_journal_tail_degrades_to_a_rewind() {
    let (bundle, store) = fixture("corrupt");

    let mut serve = Serve::start(&bundle, &store);
    let _ = serve.read_line();
    assert!(serve
        .request("{\"op\":\"insert\",\"facts\":\"E(a, b). E(b, c).\"}")
        .contains("\"ok\":true"));
    serve.shutdown();

    // Flip a bit inside the last journal frame: the damaged commit is
    // rolled back, everything before it survives, and serve comes up
    // answering from the last good epoch instead of dying.
    let journal = store.join("base.pdej");
    let mut bytes = std::fs::read(&journal).unwrap();
    let last = bytes.len() - 5;
    bytes[last] ^= 0x20;
    std::fs::write(&journal, &bytes).unwrap();

    let mut serve = Serve::start(&bundle, &store);
    let hello = serve.read_line();
    assert!(hello.contains("\"rewound\":true"), "{hello}");
    assert!(hello.contains("\"epoch\":1"), "{hello}");
    assert!(hello.contains("\"facts\":1"), "{hello}");
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"yes\""));
    serve.shutdown();
}

#[test]
fn bad_requests_are_answered_in_band_and_do_not_kill_the_loop() {
    let (bundle, store) = fixture("badreq");

    let mut serve = Serve::start(&bundle, &store);
    let _ = serve.read_line();
    let err = serve.request("{\"op\":\"frobnicate\"}");
    assert!(err.contains("\"ok\":false"), "{err}");
    let err = serve.request("this is not json");
    assert!(err.contains("\"ok\":false"), "{err}");
    let err = serve.request("{\"op\":\"retract\",\"facts\":\"E(a, ?0).\"}");
    assert!(err.contains("\"ok\":false"), "{err}");
    // The loop is still alive and correct after all three.
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"yes\""));
    serve.shutdown();
}

#[test]
fn snapshot_truncates_the_journal_and_recovery_uses_it() {
    let (bundle, store) = fixture("snapshot");

    let mut serve = Serve::start(&bundle, &store);
    let _ = serve.read_line();
    assert!(serve
        .request("{\"op\":\"insert\",\"facts\":\"E(b, b).\"}")
        .contains("\"ok\":true"));
    let snap = serve.request("{\"op\":\"snapshot\"}");
    assert!(
        snap.contains("\"ok\":true") && snap.contains("\"journal_bytes\":8"),
        "{snap}"
    );
    serve.kill9();

    let mut serve = Serve::start(&bundle, &store);
    let hello = serve.read_line();
    assert!(hello.contains("\"frames_replayed\":0"), "{hello}");
    assert!(hello.contains("\"snapshot_epoch\":2"), "{hello}");
    assert!(hello.contains("\"facts\":2"), "{hello}");
    assert!(serve
        .request("{\"op\":\"solve\"}")
        .contains("\"result\":\"yes\""));
    serve.shutdown();
}
