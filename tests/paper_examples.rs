//! End-to-end integration tests for every claim the paper demonstrates by
//! example: Example 1, the certain-answer illustration, the Theorem 3
//! reduction, the §4 boundary settings, the §2 multi-PDE and PDMS
//! correspondences, and the §3 contrast with plain data exchange.

use peer_data_exchange::core::{
    assignment, certain_answers, data_exchange, generic, multi::MultiPdeSetting,
    multi::PeerConstraints, pdms::Pdms, solution::is_solution, tractable, GenericLimits,
    PdeSetting, SolverKind,
};
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::{boundary, clique, graphs, paper, threecol};
use std::sync::Arc;

#[test]
fn example1_full_story() {
    let p = paper::example1_setting();
    let [no, unique, two] = paper::example1_instances(&p);

    // "If I = {E(a,b), E(b,c)} and J = ∅, then no solution exists."
    let r = decide(&p, &no).unwrap();
    assert_eq!(r.kind, SolverKind::Tractable);
    assert_eq!(r.exists, Some(false));

    // "If I = {E(a,a)}, then J' = {H(a,a)} is the only solution."
    let r = decide(&p, &unique).unwrap();
    assert_eq!(r.exists, Some(true));
    let w = r.witness.unwrap();
    let h = p.schema().rel_id("H").unwrap();
    assert_eq!(w.relation(h).len(), 1);

    // "Both {H(a,c)} and {H(a,b), H(b,c), H(a,c)} are solutions."
    let s1 = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c). H(a, c).").unwrap();
    let s2 = parse_instance(
        p.schema(),
        "E(a, b). E(b, c). E(a, c). H(a, b). H(b, c). H(a, c).",
    )
    .unwrap();
    assert!(is_solution(&p, &two, &s1));
    assert!(is_solution(&p, &two, &s2));
    assert_eq!(decide(&p, &two).unwrap().exists, Some(true));
}

#[test]
fn paper_certain_answer_illustration() {
    // certain(q, ({E(a,a)}, ∅)) = true and
    // certain(q, ({E(a,b),E(b,c),E(a,c)}, ∅)) = false
    // for q = ∃x∃y∃z (H(x,y) ∧ H(y,z)).
    let p = paper::example1_setting();
    let q: UnionQuery = parse_query(p.schema(), "H(x, y), H(y, z)").unwrap().into();
    let loopy = parse_instance(p.schema(), "E(a, a).").unwrap();
    let tri = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
    assert!(certain_answers(&p, &loopy, &q, GenericLimits::default())
        .unwrap()
        .certain_bool());
    assert!(!certain_answers(&p, &tri, &q, GenericLimits::default())
        .unwrap()
        .certain_bool());
}

#[test]
fn theorem3_reduction_sweep() {
    // CLIQUE ⟺ SOL over a sweep of graphs, cross-validated against the
    // direct clique search.
    let p = clique::clique_setting();
    for seed in 0..4u64 {
        for (n, prob, k) in [(5u32, 0.4, 3u32), (6, 0.3, 3), (6, 0.5, 4)] {
            let g = graphs::Graph::gnp(n, prob, seed);
            let input = clique::clique_instance(&p, &g, k);
            let out = assignment::solve(&p, &input).unwrap();
            assert_eq!(
                out.exists,
                graphs::has_k_clique(&g, k),
                "seed={seed} n={n} p={prob} k={k}"
            );
            if let Some(w) = out.witness {
                assert!(is_solution(&p, &input, &w));
            }
        }
    }
}

#[test]
fn data_exchange_contrast() {
    // §3: with Σts = ∅ and Σt = ∅, solutions ALWAYS exist — the
    // existence problem is trivial for data exchange, never for PDE.
    let de = PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, z), E(z, y) -> H(x, y)",
        "",
        "",
    )
    .unwrap();
    let pde = paper::example1_setting();
    for src in ["E(a, b). E(b, c).", "E(a, a).", "E(a, b)."] {
        let input_de = parse_instance(de.schema(), src).unwrap();
        assert!(
            data_exchange::solve_data_exchange(&de, &input_de)
                .unwrap()
                .exists
        );
    }
    // The same Σst with a Σts makes existence fail on the 2-path input.
    let input = parse_instance(pde.schema(), "E(a, b). E(b, c).").unwrap();
    assert_eq!(decide(&pde, &input).unwrap().exists, Some(false));
}

#[test]
fn boundary_settings_encode_clique() {
    let lim = GenericLimits::default();
    let graphs_k: Vec<(graphs::Graph, u32)> = vec![
        (graphs::Graph::complete(3), 3),
        (graphs::Graph::path(3), 3),
        (graphs::Graph::cycle(4), 2),
    ];
    let egd = boundary::egd_boundary_setting();
    let ftgd = boundary::full_tgd_boundary_setting();
    for (g, k) in &graphs_k {
        let expect = graphs::has_k_clique(g, *k);
        let i1 = boundary::egd_boundary_instance(&egd, g, *k);
        assert_eq!(
            generic::solve(&egd, &i1, lim).unwrap().decided(),
            Some(expect)
        );
        let i2 = boundary::full_tgd_boundary_instance(&ftgd, g, *k);
        assert_eq!(
            generic::solve(&ftgd, &i2, lim).unwrap().decided(),
            Some(expect)
        );
    }
}

#[test]
fn disjunctive_boundary_encodes_three_colorability() {
    let p = threecol::threecol_problem();
    for g in [
        graphs::Graph::cycle(5),
        graphs::Graph::complete(4),
        graphs::Graph::complete_bipartite(3, 2),
        graphs::Graph::gnp(7, 0.4, 13),
    ] {
        let input = threecol::threecol_instance(&p, &g);
        let out = assignment::solve_disjunctive(&p, &input).unwrap();
        assert_eq!(out.exists, graphs::is_three_colorable(&g));
    }
}

#[test]
fn multi_pde_union_equivalence() {
    // §2: a multi-PDE setting and its union have the same solutions.
    let schema = Arc::new(parse_schema("source A/1; source B/1; target T/1;").unwrap());
    let mk = |st: &str, ts: &str, name: &str| PeerConstraints {
        name: name.into(),
        sigma_st: parse_tgds(&schema, st).unwrap(),
        sigma_ts: parse_tgds(&schema, ts).unwrap(),
        sigma_t: vec![],
    };
    let m = MultiPdeSetting::new(
        schema.clone(),
        vec![
            mk("A(x) -> T(x)", "", "pa"),
            mk("B(x) -> T(x)", "T(x) -> B(x)", "pb"),
        ],
    )
    .unwrap();
    let u = m.to_single();
    let input = parse_instance(&schema, "A(a). B(a). B(b).").unwrap();
    // Enumerate all candidate targets over {a, b, c}.
    for mask in 0u8..8 {
        let mut src = String::from("A(a). B(a). B(b). ");
        for (i, v) in ["a", "b", "c"].iter().enumerate() {
            if mask & (1 << i) != 0 {
                src.push_str(&format!("T({v}). "));
            }
        }
        let cand = parse_instance(&schema, &src).unwrap();
        assert_eq!(
            m.check_multi_solution(&input, &cand).is_ok(),
            is_solution(&u, &input, &cand),
            "mask {mask}"
        );
    }
}

#[test]
fn pdms_embedding_correspondence() {
    // §2: K solves (I, J) in P iff K is a consistent data instance of
    // N(P) over locals (I, J) — exhaustively over a small universe.
    let p = paper::example1_setting();
    let n = Pdms::embed(&p);
    let input = parse_instance(p.schema(), "E(a, b). E(b, b).").unwrap();
    let universe = ["H(a, b).", "H(b, b).", "H(a, a)."];
    for mask in 0u8..8 {
        let mut src = String::from("E(a, b). E(b, b). ");
        for (i, f) in universe.iter().enumerate() {
            if mask & (1 << i) != 0 {
                src.push_str(f);
            }
        }
        let cand = parse_instance(p.schema(), &src).unwrap();
        assert_eq!(
            is_solution(&p, &input, &cand),
            n.is_consistent(&input, &cand),
            "mask {mask}"
        );
    }
}

#[test]
fn marked_example_behaves_as_described() {
    // §4's illustration: the marked position forces the chase null of T's
    // second column to be matched against S's second column in I.
    let p = paper::marked_example_setting();
    // S(a,b): T(a,y) must map y to a value v with some S(w,v) ∈ I → v=b.
    let yes = parse_instance(p.schema(), "S(a, b).").unwrap();
    let out = tractable::exists_solution(&p, &yes).unwrap();
    assert!(out.exists);
    assert!(is_solution(&p, &yes, &out.witness.unwrap()));
    // Empty I: trivially solvable with empty target.
    let empty = parse_instance(p.schema(), "").unwrap();
    assert!(tractable::exists_solution(&p, &empty).unwrap().exists);
}

#[test]
fn exact_views_glav_encoding() {
    // §2: Σst φ→∃ψ plus Σts ψ→φ expresses GLAV with exact views.
    let p = paper::exact_view_setting();
    assert!(p.classification().tractable());
    let closed = parse_instance(p.schema(), "E(a, a).").unwrap();
    let r = decide(&p, &closed).unwrap();
    assert_eq!(r.exists, Some(true));
    // The witness's H is exactly the 2-path view of E.
    let w = r.witness.unwrap();
    let h = p.schema().rel_id("H").unwrap();
    assert!(w
        .relation(h)
        .contains(&pde_relational::Tuple::consts(["a", "a"])));
}

#[test]
fn facade_matches_direct_solver_calls() {
    let p = paper::example1_setting();
    let [no, unique, _] = paper::example1_instances(&p);
    for input in [no, unique] {
        let facade = decide(&p, &input).unwrap().exists;
        let direct = tractable::exists_solution(&p, &input).unwrap().exists;
        assert_eq!(facade, Some(direct));
    }
}
