//! Golden tests for the chase-termination hierarchy certificates:
//!
//! * each shipped non-weakly-acyclic fixture produces an exact, stable
//!   termination section (golden JSON) naming the weakest certifying
//!   criterion, which round-trips through `from_json` and independently
//!   re-verifies;
//! * `examples/divergent.pde` is rejected by every criterion and its
//!   all-fail trail is byte-stable too;
//! * tampering any witness field — criterion, trail verdicts, bounds,
//!   variable order, chase log counts — is caught by `verify_termination`,
//!   not trusted from the certificate.

use pde_analysis::{analyze_termination, verify_termination, TerminationCertificate};
use peer_data_exchange::core::Bundle;

fn bundle(name: &str) -> Bundle {
    let path = format!("{}/examples/{name}.pde", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap();
    Bundle::parse(&src).unwrap()
}

fn termination_of(b: &Bundle) -> TerminationCertificate {
    analyze_termination(&b.setting, b.input.active_domain().len())
}

#[test]
fn spiral_produces_the_golden_joint_acyclicity_certificate() {
    let b = bundle("spiral");
    let tc = termination_of(&b);
    let golden = concat!(
        "{\"v\":1,\"adom_size\":2,\"criterion\":\"joint-acyclicity\",",
        "\"trail\":[",
        "{\"criterion\":\"weak-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"joint-acyclicity\",\"holds\":true}",
        "],",
        "\"value_bound\":18,\"fact_bound\":1620,\"step_bound\":1638,",
        "\"witness\":{\"kind\":\"variable-order\",\"max_depth\":0,",
        "\"order\":[{\"tgd\":2,\"var\":\"z\"}]}}"
    );
    assert_eq!(tc.to_json(), golden);
    verify_termination(&b.setting, &tc).unwrap();
    let parsed = TerminationCertificate::from_json(&tc.to_json()).unwrap();
    assert_eq!(parsed, tc);
    verify_termination(&b.setting, &parsed).unwrap();
}

#[test]
fn critical_only_produces_the_golden_critical_instance_certificate() {
    let b = bundle("critical_only");
    let tc = termination_of(&b);
    let golden = concat!(
        "{\"v\":1,\"adom_size\":1,\"criterion\":\"critical-instance\",",
        "\"trail\":[",
        "{\"criterion\":\"weak-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"joint-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"super-weak-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"critical-instance\",\"holds\":true}",
        "],",
        "\"value_bound\":10,\"fact_bound\":5,\"step_bound\":15,",
        "\"witness\":{\"kind\":\"critical-chase\",\"steps\":6,\"facts\":5,",
        "\"max_fact_width\":2,\"limit\":256}}"
    );
    assert_eq!(tc.to_json(), golden);
    verify_termination(&b.setting, &tc).unwrap();
    let parsed = TerminationCertificate::from_json(&tc.to_json()).unwrap();
    assert_eq!(parsed, tc);
    verify_termination(&b.setting, &parsed).unwrap();
}

#[test]
fn divergent_fails_every_criterion_with_a_stable_trail() {
    let b = bundle("divergent");
    let tc = termination_of(&b);
    let golden = concat!(
        "{\"v\":1,\"adom_size\":4,\"criterion\":null,",
        "\"trail\":[",
        "{\"criterion\":\"weak-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"joint-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"super-weak-acyclicity\",\"holds\":false},",
        "{\"criterion\":\"critical-instance\",\"holds\":false}",
        "],",
        "\"value_bound\":0,\"fact_bound\":0,\"step_bound\":0,",
        "\"witness\":{\"kind\":\"none\"}}"
    );
    assert_eq!(tc.to_json(), golden);
    assert!(!tc.certified());
    // The all-fail verdict must re-verify too: an uncertified section is a
    // faithful record, not an error.
    verify_termination(&b.setting, &tc).unwrap();
    let parsed = TerminationCertificate::from_json(&tc.to_json()).unwrap();
    assert_eq!(parsed, tc);
}

#[test]
fn verify_termination_rejects_tampered_spiral_certificates() {
    let b = bundle("spiral");
    let json = termination_of(&b).to_json();
    // Each tampering flips one recorded field of the certificate; every
    // one must be caught by independent replay.
    let tamperings = [
        // Claim a stronger criterion than the hierarchy derives.
        (
            "\"criterion\":\"joint-acyclicity\"",
            "\"criterion\":\"weak-acyclicity\"",
        ),
        // Flip a trail verdict.
        (
            "{\"criterion\":\"weak-acyclicity\",\"holds\":false}",
            "{\"criterion\":\"weak-acyclicity\",\"holds\":true}",
        ),
        // Shrink the derived bounds.
        ("\"value_bound\":18", "\"value_bound\":17"),
        ("\"fact_bound\":1620", "\"fact_bound\":1619"),
        ("\"step_bound\":1638", "\"step_bound\":1637"),
        // Point the variable-order witness at the wrong tgd.
        ("{\"tgd\":2,\"var\":\"z\"}", "{\"tgd\":1,\"var\":\"z\"}"),
        // Claim a deeper order than the dependency graph supports.
        ("\"max_depth\":0", "\"max_depth\":3"),
        // Claim the analysis saw a different active domain.
        ("\"adom_size\":2", "\"adom_size\":3"),
    ];
    for (from, to) in tamperings {
        let bad = json.replacen(from, to, 1);
        assert_ne!(bad, json, "tampering '{from}' must apply");
        let parsed = TerminationCertificate::from_json(&bad).unwrap();
        assert!(
            verify_termination(&b.setting, &parsed).is_err(),
            "tampering '{from}' -> '{to}' must be rejected"
        );
    }
}

#[test]
fn verify_termination_rejects_tampered_critical_chase_witnesses() {
    let b = bundle("critical_only");
    let json = termination_of(&b).to_json();
    let tamperings = [
        // Claim the saturated chase was shorter or smaller than replayed.
        ("\"steps\":6", "\"steps\":5"),
        ("\"facts\":5", "\"facts\":4"),
        ("\"max_fact_width\":2", "\"max_fact_width\":1"),
        // Claim a different step-limit regime.
        ("\"limit\":256", "\"limit\":128"),
        // Claim an earlier criterion certified instead.
        (
            "{\"criterion\":\"super-weak-acyclicity\",\"holds\":false}",
            "{\"criterion\":\"super-weak-acyclicity\",\"holds\":true}",
        ),
        // Inflate the bound the governor would trust.
        ("\"fact_bound\":5", "\"fact_bound\":6"),
    ];
    for (from, to) in tamperings {
        let bad = json.replacen(from, to, 1);
        assert_ne!(bad, json, "tampering '{from}' must apply");
        let parsed = TerminationCertificate::from_json(&bad).unwrap();
        assert!(
            verify_termination(&b.setting, &parsed).is_err(),
            "tampering '{from}' -> '{to}' must be rejected"
        );
    }
}

#[test]
fn certificates_do_not_verify_across_settings() {
    // A spiral certificate claims joint acyclicity; replaying it against
    // the divergent setting must fail at the first trail entry it gets
    // wrong, never silently transfer.
    let spiral = bundle("spiral");
    let divergent = bundle("divergent");
    let tc = termination_of(&spiral);
    assert!(verify_termination(&divergent.setting, &tc).is_err());
}
