//! Crash-recovery property matrix for the durable instance store
//! (`pde-store`).
//!
//! The invariant under test: **a crash at any journal byte boundary never
//! yields a wrong answer after recovery — only a rewind to a committed
//! prefix epoch.** We script a history of commits whose solve answer
//! flips between epochs (so a wrong rewind would be observable), then
//!
//! * truncate the journal at *every* byte offset,
//! * flip a bit at *every* byte offset, and
//! * repeat the truncation matrix with a mid-history snapshot in place,
//!
//! asserting after each recovery that the instance equals the committed
//! prefix exactly and that `decide` on the recovered base matches a fresh
//! re-chase of that prefix.

use peer_data_exchange::prelude::*;
use peer_data_exchange::relational::Tuple;
use peer_data_exchange::store::{InstanceStore, Op, JOURNAL_FILE, SNAPSHOT_FILE};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "pde-store-recovery-{}-{tag}-{n}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Example 1 of the paper: composition must land back in the source.
fn setting() -> PdeSetting {
    PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, z), E(z, y) -> H(x, y)",
        "H(x, y) -> E(x, y)",
        "",
    )
    .unwrap()
}

fn fact(rel: &str, a: &str, b: &str) -> Op {
    Op::insert(rel, vec![Value::constant(a), Value::constant(b)])
}

fn gone(rel: &str, a: &str, b: &str) -> Op {
    Op::retract(rel, vec![Value::constant(a), Value::constant(b)])
}

/// The scripted history, one op batch per epoch. The solve answer
/// alternates yes/no/yes/no across the four epochs, so recovering to the
/// wrong prefix flips the answer and fails the parity check.
fn history() -> Vec<Vec<Op>> {
    vec![
        // epoch 1: {E(a,a)} — yes.
        vec![fact("E", "a", "a")],
        // epoch 2: +E(a,b), E(b,c) — H(a,c) needs E(a,c): no.
        vec![fact("E", "a", "b"), fact("E", "b", "c")],
        // epoch 3: -E(a,b) — only H(a,a) remains required: yes.
        vec![gone("E", "a", "b")],
        // epoch 4: +E(c,d) — H(b,d) needs E(b,d): no.
        vec![fact("E", "c", "d")],
    ]
}

/// Replay `history()[..epochs]` directly onto an in-memory instance: the
/// oracle state a correct recovery must reproduce.
fn prefix_instance(setting: &PdeSetting, epochs: usize) -> Instance {
    let schema = setting.schema();
    let mut instance = Instance::new(schema.clone());
    for batch in history().iter().take(epochs) {
        for op in batch {
            match op {
                Op::Insert { rel, values } => {
                    let id = schema.rel_id(*rel).unwrap();
                    instance.insert(id, Tuple::new(values.clone()));
                }
                Op::Retract { rel, values } => {
                    let id = schema.rel_id(*rel).unwrap();
                    instance.remove(id, &Tuple::new(values.clone()));
                }
                Op::Merge { .. } => unreachable!("history has no merges"),
            }
        }
    }
    instance
}

fn same_instance(a: &Instance, b: &Instance) -> bool {
    a.fact_count() == b.fact_count() && a.contained_in(b) && b.contained_in(a)
}

/// Fresh-re-chase solve answer for an instance.
fn answer(setting: &PdeSetting, instance: &Instance) -> bool {
    decide(setting, instance)
        .unwrap()
        .exists
        .expect("tractable setting decides")
}

/// Commit the whole history into a fresh store directory, recording the
/// journal length after each commit (the frame boundaries). Returns
/// `(dir, boundaries)` where `boundaries[k]` is the journal byte length
/// once epoch `k+1` is durable; `boundaries` starts at the 8-byte header.
fn committed_store(
    setting: &PdeSetting,
    tag: &str,
    checkpoint_after: Option<usize>,
) -> (PathBuf, Vec<u64>) {
    let dir = temp_dir(tag);
    let (mut store, _, report) = InstanceStore::open(&dir, setting.schema().clone()).unwrap();
    assert_eq!(report.recovered_epoch, 0);
    let mut boundaries = vec![store.journal_bytes()];
    for (i, batch) in history().iter().enumerate() {
        store.commit((i + 1) as u64, batch).unwrap();
        boundaries.push(store.journal_bytes());
        if checkpoint_after == Some(i + 1) {
            let snap = prefix_instance(setting, i + 1);
            store.checkpoint(&snap).unwrap();
            boundaries = vec![store.journal_bytes()];
        }
    }
    (dir, boundaries)
}

/// Open a damaged copy of a store: same snapshot (if any), journal bytes
/// replaced by `journal`.
fn recover(
    setting: &PdeSetting,
    src: &std::path::Path,
    tag: &str,
    journal: &[u8],
) -> (Instance, peer_data_exchange::store::RecoveryReport) {
    let dir = temp_dir(tag);
    if src.join(SNAPSHOT_FILE).exists() {
        std::fs::copy(src.join(SNAPSHOT_FILE), dir.join(SNAPSHOT_FILE)).unwrap();
    }
    std::fs::write(dir.join(JOURNAL_FILE), journal).unwrap();
    let (_store, instance, report) = InstanceStore::open(&dir, setting.schema().clone()).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (instance, report)
}

/// Core parity assertion: a recovered state must *be* some committed
/// prefix — same facts, same solve answer as a fresh re-chase of it.
fn assert_committed_prefix(
    setting: &PdeSetting,
    instance: &Instance,
    recovered_epoch: u64,
    floor: u64,
    context: &str,
) {
    assert!(
        (floor..=history().len() as u64).contains(&recovered_epoch),
        "{context}: recovered epoch {recovered_epoch} out of range"
    );
    let oracle = prefix_instance(setting, usize::try_from(recovered_epoch).unwrap());
    assert!(
        same_instance(instance, &oracle),
        "{context}: recovered state is not the epoch-{recovered_epoch} prefix"
    );
    assert_eq!(
        answer(setting, instance),
        answer(setting, &oracle),
        "{context}: solve answer diverges from a fresh re-chase"
    );
}

#[test]
fn truncating_the_journal_at_every_byte_recovers_a_committed_prefix() {
    let setting = setting();
    let (dir, boundaries) = committed_store(&setting, "trunc", None);
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(*boundaries.last().unwrap(), journal.len() as u64);

    // Expected answers per prefix epoch: the alternation the history was
    // scripted for. Guards against the oracle itself degenerating.
    let answers: Vec<bool> = (0..=4)
        .map(|k| answer(&setting, &prefix_instance(&setting, k)))
        .collect();
    assert_eq!(answers, vec![true, true, false, true, false]);

    for cut in 0..=journal.len() {
        let (instance, report) = recover(&setting, &dir, "trunc-cut", &journal[..cut]);
        // A cut exactly on a frame boundary recovers everything before it;
        // anywhere else, the partial frame is torn and dropped.
        let expect = boundaries
            .iter()
            .filter(|&&b| b <= cut as u64)
            .count()
            .saturating_sub(1) as u64;
        assert_eq!(
            report.recovered_epoch, expect,
            "cut {cut}: wrong recovery epoch"
        );
        assert_committed_prefix(
            &setting,
            &instance,
            report.recovered_epoch,
            0,
            &format!("cut {cut}"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipping_any_journal_bit_rewinds_to_the_frames_before_it() {
    let setting = setting();
    let (dir, boundaries) = committed_store(&setting, "flip", None);
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();

    for offset in 0..journal.len() {
        let mut damaged = journal.clone();
        damaged[offset] ^= 0x10;
        let (instance, report) = recover(&setting, &dir, "flip-at", &damaged);
        if (offset as u64) < boundaries[0] {
            // Header damage discards the whole journal.
            assert_eq!(report.recovered_epoch, 0, "offset {offset}");
            assert_eq!(report.corrupt_frames, 1, "offset {offset}");
        } else {
            // Exactly the frames wholly before the damaged one survive: a
            // single bit flip can never pass the frame checksum.
            let expect = boundaries
                .iter()
                .filter(|&&b| b <= offset as u64)
                .count()
                .saturating_sub(1) as u64;
            assert_eq!(
                report.recovered_epoch, expect,
                "offset {offset}: wrong recovery epoch"
            );
            assert!(report.rewound(), "offset {offset}: damage went unnoticed");
        }
        assert_committed_prefix(
            &setting,
            &instance,
            report.recovered_epoch,
            0,
            &format!("offset {offset}"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn truncation_under_a_snapshot_never_rewinds_below_the_checkpoint() {
    let setting = setting();
    // Checkpoint after epoch 2: epochs 1–2 live in the snapshot, 3–4 in
    // the journal tail.
    let (dir, boundaries) = committed_store(&setting, "snap", Some(2));
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();
    assert_eq!(boundaries.len(), 3, "two post-checkpoint frames expected");

    for cut in 0..=journal.len() {
        let (instance, report) = recover(&setting, &dir, "snap-cut", &journal[..cut]);
        assert_eq!(report.snapshot_epoch, 2, "cut {cut}");
        let tail = boundaries
            .iter()
            .filter(|&&b| b <= cut as u64)
            .count()
            .saturating_sub(1) as u64;
        // Even a fully destroyed journal (cut inside the header) floors
        // at the snapshot epoch — the checkpoint is durable on its own.
        assert_eq!(report.recovered_epoch, 2 + tail, "cut {cut}");
        assert_committed_prefix(
            &setting,
            &instance,
            report.recovered_epoch,
            2,
            &format!("cut {cut}"),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_recovered_store_reopens_clean() {
    let setting = setting();
    let (dir, _) = committed_store(&setting, "reopen", None);
    let journal = std::fs::read(dir.join(JOURNAL_FILE)).unwrap();

    // Damage the tail, recover in place (not via the throwaway copy), and
    // make sure the truncation was written back: the *second* open sees a
    // clean journal and the same epoch.
    let cut = journal.len() - 3;
    std::fs::write(dir.join(JOURNAL_FILE), &journal[..cut]).unwrap();
    let (store, first, report) = InstanceStore::open(&dir, setting.schema().clone()).unwrap();
    assert!(report.rewound());
    let epoch = report.recovered_epoch;
    drop(store);

    let (_store, second, clean) = InstanceStore::open(&dir, setting.schema().clone()).unwrap();
    assert!(!clean.rewound(), "first recovery left damage behind");
    assert_eq!(clean.recovered_epoch, epoch);
    assert!(same_instance(&first, &second));
    let _ = std::fs::remove_dir_all(&dir);
}
