//! Golden certificates for the paper workloads.
//!
//! Each test pins the *static* verdicts — regime, complexity class for
//! `SOL(P)` and certain answers, and the routed solver — that `pde plan`
//! derives for a fixture the paper discusses, and checks that the
//! independent verifier accepts the planner's certificate. A change in
//! any verdict is a semantic change to the analyzer and must be made
//! deliberately, golden file and all.
//!
//! The file also hosts the depgraph regression test (ranks and weak
//! acyclicity must come from the same traversal and agree) because the
//! constraints crate cannot depend on the workloads crate.

use pde_analysis::{plan_setting, verify_certificate, Certificate, ComplexityClass, Regime};
use pde_constraints::DependencyGraph;
use pde_core::{PdeSetting, SolverKind};
use pde_workloads::{boundary, clique, full, lav, paper};

/// Plan at a fixed small active-domain size, verify, and return the
/// certificate. Every golden certificate must pass the independent
/// checker — a planner/checker disagreement is a bug in one of them.
fn planned(setting: &PdeSetting) -> Certificate {
    let cert = plan_setting(setting, 4);
    verify_certificate(setting, &cert).expect("planner output passes the independent checker");
    cert
}

#[track_caller]
fn expect(
    setting: &PdeSetting,
    regime: Regime,
    sol: ComplexityClass,
    certain: ComplexityClass,
    solver: SolverKind,
) -> Certificate {
    let cert = planned(setting);
    assert_eq!(cert.regime, regime, "regime");
    assert_eq!(cert.sol_complexity, sol, "SOL(P) class");
    assert_eq!(cert.certain_complexity, certain, "certain-answers class");
    assert_eq!(cert.recommended_solver, solver, "routed solver");
    cert
}

#[test]
fn example1_is_tractable() {
    let cert = expect(
        &paper::example1_setting(),
        Regime::Tractable,
        ComplexityClass::PTime,
        ComplexityClass::InConp,
        SolverKind::Tractable,
    );
    // Σst is full, so nothing is marked and membership is vacuous.
    assert!(cert.tract.marked_positions.is_empty());
    assert!(cert.tract.in_ctract && cert.tract.counterexample.is_none());
    assert_eq!(cert.chase.max_rank, 0, "no special edges at all");
}

#[test]
fn marked_example_is_tractable_with_marks() {
    let cert = expect(
        &paper::marked_example_setting(),
        Regime::Tractable,
        ComplexityClass::PTime,
        ComplexityClass::InConp,
        SolverKind::Tractable,
    );
    // Σst: S(x1,x2) → ∃y T(x1,y) marks exactly the second position of T.
    let marked: Vec<String> = cert
        .tract
        .marked_positions
        .iter()
        .map(|p| format!("{}.{}", p.rel, p.attr))
        .collect();
    assert_eq!(marked, ["T.1"]);
    assert!(cert.tract.condition1, "no marked variable repeats");
    assert!(cert.tract.condition2_1, "Σts is single-literal");
}

#[test]
fn exact_view_is_tractable() {
    expect(
        &paper::exact_view_setting(),
        Regime::Tractable,
        ComplexityClass::PTime,
        ComplexityClass::InConp,
        SolverKind::Tractable,
    );
}

#[test]
fn clique_reduction_is_outside_ctract() {
    let cert = expect(
        &clique::clique_setting(),
        Regime::OutsideCtract,
        ComplexityClass::NpComplete,
        ComplexityClass::ConpComplete,
        SolverKind::AssignmentSearch,
    );
    // Theorem 3's hardness gadget: the S-consistency tgds pair two marked
    // positions of P in their conclusion without a shared premise atom.
    let cex = cert.tract.counterexample.expect("a named counterexample");
    assert_eq!(cex.kind, "bad-marked-pair");
    assert!(!cert.tract.condition2_1 && !cert.tract.condition2_2);
}

#[test]
fn lav_and_full_workloads_are_tractable() {
    // Corollary 2 (LAV Σts) and Corollary 1 (full Σst) respectively.
    let c = expect(
        &lav::lav_setting(),
        Regime::Tractable,
        ComplexityClass::PTime,
        ComplexityClass::InConp,
        SolverKind::Tractable,
    );
    assert!(c.tract.ts_all_lav);
    let c = expect(
        &full::full_setting(),
        Regime::Tractable,
        ComplexityClass::PTime,
        ComplexityClass::InConp,
        SolverKind::Tractable,
    );
    assert!(c.tract.st_all_full);
}

#[test]
fn boundary_settings_cross_into_hardness() {
    // §4: the moment Σt is non-empty, even egds or full tgds alone make
    // SOL(P) NP-complete although Σst/Σts still satisfy the conditions.
    expect(
        &boundary::egd_boundary_setting(),
        Regime::EgdBoundary,
        ComplexityClass::NpComplete,
        ComplexityClass::ConpComplete,
        SolverKind::GenericSearch,
    );
    expect(
        &boundary::full_tgd_boundary_setting(),
        Regime::FullTgdBoundary,
        ComplexityClass::NpComplete,
        ComplexityClass::ConpComplete,
        SolverKind::GenericSearch,
    );
}

#[test]
fn threecol_plain_fragment_is_data_exchange() {
    // The §4 3-COL reduction needs a *disjunctive* Σts, which is outside
    // the planner's input language (`DisjunctiveProblem`, not
    // `PdeSetting`). Its plain fragment — same schema and Σst, no Σts —
    // is classical data exchange and poly-time; the golden point is that
    // disjunction alone carries the hardness.
    let plain = PdeSetting::parse(
        "source E/2; source R/1; source B/1; source G/1; target E2/2; target C/2;",
        "E(x, y) -> exists u . C(x, u); E(x, y) -> E2(x, y)",
        "",
        "",
    )
    .expect("plain fragment is well-formed");
    expect(
        &plain,
        Regime::DataExchange,
        ComplexityClass::PTime,
        ComplexityClass::PTime,
        SolverKind::DataExchange,
    );
}

#[test]
fn non_terminating_setting_gets_a_cycle_witness() {
    let setting = PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, y) -> H(x, y)",
        "",
        "H(x, y) -> exists z . H(y, z)",
    )
    .expect("well-formed");
    let cert = planned(&setting);
    assert_eq!(cert.regime, Regime::NonTerminating);
    assert_eq!(cert.sol_complexity, ComplexityClass::NoBound);
    assert_eq!(cert.recommended_solver, SolverKind::GenericSearch);
    assert!(!cert.chase.weakly_acyclic);
    assert!(cert.chase.special_cycle.iter().any(|e| e.special));
}

/// Regression test for the depgraph refactor: `ranks()` and
/// `is_weakly_acyclic()` are now answered by one traversal and must agree
/// on every workload setting (and the planner's verdict must match both).
#[test]
fn ranks_agree_with_weak_acyclicity_on_all_workloads() {
    let settings = [
        paper::example1_setting(),
        paper::marked_example_setting(),
        paper::exact_view_setting(),
        clique::clique_setting(),
        clique::clique_setting_paper_literal(),
        lav::lav_setting(),
        full::full_setting(),
        boundary::egd_boundary_setting(),
        boundary::full_tgd_boundary_setting(),
    ];
    for setting in &settings {
        let forward: Vec<_> = setting
            .sigma_st()
            .iter()
            .cloned()
            .chain(setting.target_tgds().cloned())
            .collect();
        let g = DependencyGraph::new(setting.schema(), &forward);
        assert_eq!(g.ranks().is_some(), g.is_weakly_acyclic());
        assert_eq!(
            plan_setting(setting, 2).chase.weakly_acyclic,
            g.is_weakly_acyclic()
        );
    }
}
