//! `pde serve` — a long-lived JSONL request loop over a durable store.
//!
//! The server owns a [`pde_store::InstanceStore`] directory and answers
//! one JSON request per stdin line with one JSON response per stdout
//! line (see `docs/SERVE.md` for the wire schema). Durability and
//! degradation guarantees:
//!
//! * Every `insert`/`retract` is committed to the store's journal before
//!   the response is written — a `kill -9` after a response never loses
//!   the mutation, and a crash *during* one rewinds to the previous epoch
//!   on restart, never to a wrong state.
//! * Startup recovery replays the journal onto the last snapshot and
//!   truncates any torn or corrupt tail; the hello line reports the
//!   recovered epoch and what was dropped.
//! * `solve` on tractable settings reuses a shared Σst-chased instance,
//!   re-chased incrementally off epoch deltas after each insert
//!   ([`pde_chase::chase_incremental_governed`]) instead of from scratch;
//!   retracts invalidate the cache (an incremental window is only sound
//!   on top of a fixpoint) and the next solve re-chases fully.
//! * Every request runs under its own [`Governor`] deadline/budget and
//!   inside [`pde_runtime::isolate`]: a panicking request is answered
//!   `undecided` without killing the loop, and the chased cache is moved
//!   out during maintenance so a contained panic can never leave a
//!   half-chased instance behind.
//!
//! Telemetry (`docs/OBSERVABILITY.md` has the schemas):
//!
//! * Every request gets a monotone id, threaded through its spans, its
//!   response, and its access-log record.
//! * `--access-log <path>` appends one versioned JSONL record per request
//!   (id, kind, result, exit-equivalent status, durations, governor
//!   outcome, epoch, bytes); `--trace-sample N` additionally captures the
//!   full span stream of every Nth request into the same file.
//! * Request latencies feed power-of-two histograms (`serve.request_ns`,
//!   per-kind variants, `chase.round_ns`) surfaced by `--stats` responses
//!   and the `stats` request.
//! * A bounded [`FlightRecorder`] ring holds the most recent request
//!   records and span tails; it is dumped to the store directory on panic
//!   isolation, governor stop, corrupt-journal recovery, and shutdown, so
//!   every degraded outcome leaves a postmortem artifact.

use pde_analysis::plan_setting;
use pde_chase::{
    chase_governed_with, chase_incremental_governed, null_gen_for, ChaseLimits, ChaseOutcome,
    WitnessMode,
};
use pde_constraints::Dependency;
use pde_core::{
    certain_answers, exists_solution_from_chased, Bundle, GenericLimits, PdeSetting, TractableError,
};
use pde_relational::{parse_instance, parse_query, Instance, Schema, UnionQuery, Value};
use pde_runtime::{isolate, Governor, GovernorConfig};
use pde_store::{InstanceStore, Op, RecoveryReport};
use pde_trace::{json_escape, CollectingSink, FanoutSink, FlightRecorder, MetricsRegistry, Sink};
use std::io::{BufRead, BufWriter, Write};
use std::ops::ControlFlow;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Request records the session flight recorder retains.
const FLIGHT_REQUESTS: usize = 64;
/// Span records the session flight recorder retains.
const FLIGHT_SPANS: usize = 256;
/// Cap on spans captured for one sampled request (`--trace-sample`).
const SAMPLE_SPAN_CAP: usize = 4096;

/// Configuration of one serve session (from the CLI flags).
pub struct ServeOptions {
    /// Directory of the durable store (created if missing).
    pub store_dir: String,
    /// Per-request wall-clock budget (`--timeout`).
    pub timeout: Option<Duration>,
    /// Per-request instance byte budget (`--memory-limit`).
    pub memory_limit: Option<usize>,
    /// Attach a `metrics` object to every response (`--stats`).
    pub stats: bool,
    /// Append one JSONL access record per request (`--access-log`).
    pub access_log: Option<String>,
    /// Capture the full span stream of every Nth request into the access
    /// log (`--trace-sample`); 0 disables sampling.
    pub trace_sample: u64,
}

/// What a request asked for, after JSON decoding.
#[derive(Debug, PartialEq)]
struct Request {
    op: String,
    /// `insert`/`retract`: instance text over the bundle's schema.
    facts: Option<String>,
    /// `certain`: a target UCQ in the query syntax.
    query: Option<String>,
    /// Fault injection (tests only): panic inside trigger application at
    /// this chase step. Rejected unless compiled with `fault-injection`.
    inject_panic_at: Option<u64>,
}

/// The Σst-chase fixpoint of the base, tagged with the base epoch it
/// covers. `covered < base.current_epoch()` means inserts arrived since;
/// the next solve extends it incrementally from that watermark.
struct Chased {
    instance: Instance,
    covered: u64,
}

/// Serve counters, exported as `serve.*` next to the store's `store.*`.
#[derive(Default)]
struct ServeCounters {
    requests: u64,
    errors: u64,
    panics_isolated: u64,
    incremental_rechases: u64,
    full_rechases: u64,
}

struct ServeState {
    setting: PdeSetting,
    st_deps: Vec<Dependency>,
    /// Is the tractable fast path (cached-chase solve) applicable to this
    /// setting? Decided once: the setting never changes mid-session.
    fast_path: bool,
    store: InstanceStore,
    base: Instance,
    chased: Option<Chased>,
    counters: ServeCounters,
    /// Session-persistent latency histograms (`serve.request_ns` and
    /// per-kind variants, `chase.round_ns`), merged into every `metrics`
    /// response next to the store's own counters.
    metrics: MetricsRegistry,
    /// What startup recovery found, kept for the `stats` request.
    recovery: RecoveryReport,
    started: Instant,
    /// Ring of recent request records + span tails, dumped on degraded
    /// outcomes.
    flight: Arc<FlightRecorder>,
    /// Flight dumps written so far this session.
    flight_dumps: u64,
}

/// Per-request telemetry accumulated while handling, for the access log,
/// the response status, and the flight recorder.
struct ReqMeta {
    /// Wire-level result: `yes`/`no`/`undecided` for solves, `ok` for
    /// mutations and admin ops (`error` is derived from the body).
    result: &'static str,
    /// Governor outcome: `none`, a stop reason, or `panic: <message>`.
    governor: String,
    /// Time spent bringing the chased cache up to date, in nanoseconds.
    chase_ns: u64,
    /// Time spent solving/answering beyond the chase, in nanoseconds.
    solve_ns: u64,
    /// When set, the request degraded in a way that warrants a flight
    /// dump, tagged with the dump's reason.
    flight: Option<&'static str>,
}

impl ReqMeta {
    fn new() -> ReqMeta {
        ReqMeta {
            result: "ok",
            governor: "none".to_owned(),
            chase_ns: 0,
            solve_ns: 0,
            flight: None,
        }
    }
}

/// Restores the process-wide trace sink the session found at startup.
struct SinkGuard {
    prev: Option<Arc<dyn Sink>>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        match self.prev.take() {
            Some(p) => pde_trace::set_sink(p),
            None => pde_trace::clear_sink(),
        }
    }
}

/// Three-valued solve answer on the wire.
enum Answer {
    Yes,
    No,
    Undecided(String),
}

/// Run the serve loop: recover the store, emit the hello line, then answer
/// one request per input line until EOF or a `shutdown` request. Returns
/// an error only for startup failures (bad store, bad bundle) and broken
/// output — per-request failures are answered in-band and never end the
/// loop.
pub fn serve(
    bundle: &Bundle,
    options: &ServeOptions,
    input: impl BufRead,
    mut output: impl Write,
) -> Result<(), String> {
    let schema: Arc<Schema> = bundle.setting.schema().clone();
    let (mut store, mut base, report) = InstanceStore::open(&options.store_dir, schema.clone())
        .map_err(|e| format!("{}: {e}", options.store_dir))?;
    if report.rewound() {
        eprintln!(
            "warning: journal damaged ({} torn, {} corrupt frame(s)); rewound to epoch {} \
             (dropped {} byte(s))",
            report.torn_frames,
            report.corrupt_frames,
            report.recovered_epoch,
            report.truncated_bytes
        );
    }
    // A fresh store is seeded from the bundle's %instance section; a
    // recovered one is authoritative and the section is ignored.
    let mut seeded = 0usize;
    if store.epoch() == 0 && base.fact_count() == 0 && bundle.input.fact_count() > 0 {
        let epoch = base.bump_epoch();
        let ops = ops_of(&bundle.input);
        let _ = bundle.input.for_each_fact(|rel, ids| {
            base.insert_ids(rel, ids);
            ControlFlow::Continue(())
        });
        seeded = ops.len();
        store
            .commit(epoch, &ops)
            .map_err(|e| format!("seeding store from bundle: {e}"))?;
    } else if bundle.input.fact_count() > 0 {
        eprintln!(
            "note: store already holds epoch {}; the bundle's %instance section is ignored",
            store.epoch()
        );
    }

    let class = bundle.setting.classification();
    let fast_path = bundle.setting.has_no_target_constraints() && class.ctract.in_ctract();
    let mut state = ServeState {
        setting: bundle.setting.clone(),
        st_deps: bundle
            .setting
            .sigma_st()
            .iter()
            .cloned()
            .map(Dependency::Tgd)
            .collect(),
        fast_path,
        store,
        base,
        chased: None,
        counters: ServeCounters::default(),
        metrics: MetricsRegistry::new(),
        recovery: report,
        started: Instant::now(),
        flight: Arc::new(FlightRecorder::with_capacity(FLIGHT_REQUESTS, FLIGHT_SPANS)),
        flight_dumps: 0,
    };

    // Compose the session flight recorder with whatever sink is already
    // observing (an operator's --trace stream, a profile run); the guard
    // restores the prior sink when the session ends.
    let prev_sink = pde_trace::current_sink();
    let session_sink: Arc<dyn Sink> = {
        let mut sinks: Vec<Arc<dyn Sink>> = Vec::new();
        if let Some(p) = prev_sink.clone() {
            sinks.push(p);
        }
        sinks.push(state.flight.clone());
        Arc::new(FanoutSink::new(sinks))
    };
    pde_trace::set_sink(session_sink.clone());
    let _sink_guard = SinkGuard { prev: prev_sink };

    let mut access: Option<BufWriter<std::fs::File>> = match &options.access_log {
        Some(path) => {
            let file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("access log {path}: {e}"))?;
            Some(BufWriter::new(file))
        }
        None => None,
    };

    // A rewind is a degraded outcome even before the first request: leave
    // the postmortem artifact immediately (the rings are empty; the header
    // alone records what recovery found).
    if state.recovery.rewound() {
        dump_flight(&mut state, &options.store_dir, "recovery-rewind", 0);
    }

    writeln!(output, "{}", hello_line(&state, seeded)).map_err(|e| out_err(&e))?;
    output.flush().map_err(|e| out_err(&e))?;

    let mut next_id: u64 = 0;
    for line in input.lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        next_id += 1;
        let id = next_id;
        let start = Instant::now();
        let sampled = options.trace_sample > 0 && id.is_multiple_of(options.trace_sample);
        let collector = sampled.then(|| Arc::new(CollectingSink::bounded(SAMPLE_SPAN_CAP)));
        if let Some(c) = &collector {
            pde_trace::set_sink(Arc::new(FanoutSink::new(vec![
                session_sink.clone(),
                c.clone() as Arc<dyn Sink>,
            ])));
        }
        let parsed = parse_request(&line);
        let kind = kind_of(&parsed);
        let mut meta = ReqMeta::new();
        let (body, done) = {
            let _span = pde_trace::span("serve.request")
                .field("id", id)
                .field("op", kind);
            match &parsed {
                Ok(req) => handle(&mut state, options, req, &mut meta),
                Err(e) => (Err(format!("bad request: {e}")), false),
            }
        };
        if collector.is_some() {
            pde_trace::set_sink(session_sink.clone());
        }
        // Count and observe *before* composing the response, so a
        // response's own metrics include the request it answers: histogram
        // counts always equal the request counters they ride next to.
        let total_ns = ns_since(start);
        state.counters.requests += 1;
        if body.is_err() {
            state.counters.errors += 1;
        }
        state.metrics.observe("serve.request_ns", total_ns);
        state
            .metrics
            .observe(&format!("serve.request_ns.{kind}"), total_ns);
        let status = match &body {
            Err(_) => 2,
            Ok(_) => match meta.result {
                "no" => 1,
                "undecided" => 3,
                _ => 0,
            },
        };
        let response = match &body {
            Ok(fields) => {
                let mut l = format!(
                    "{{\"ok\":true,\"id\":{id},{fields},\"epoch\":{}",
                    state.base.current_epoch()
                );
                push_metrics(&state, options, kind, &mut l);
                l.push('}');
                l
            }
            Err(e) => format!(
                "{{\"ok\":false,\"id\":{id},\"error\":{},\"epoch\":{}}}",
                json_escape(e),
                state.base.current_epoch()
            ),
        };
        let record = access_record(
            id,
            kind,
            &meta,
            body.is_ok(),
            status,
            total_ns,
            line.len(),
            response.len(),
            state.base.current_epoch(),
        );
        state.flight.note_line(&record);
        if let Some(w) = access.as_mut() {
            let io = writeln!(w, "{record}").and_then(|()| {
                if let Some(c) = &collector {
                    for span in c.take() {
                        writeln!(
                            w,
                            "{{\"kind\":\"pde-span-sample\",\"id\":{id},{}",
                            &span.to_json()[1..]
                        )?;
                    }
                }
                w.flush()
            });
            if let Err(e) = io {
                eprintln!("warning: access log write failed: {e}");
            }
        }
        if let Some(reason) = meta.flight {
            dump_flight(&mut state, &options.store_dir, reason, id);
        }
        writeln!(output, "{response}").map_err(|e| out_err(&e))?;
        output.flush().map_err(|e| out_err(&e))?;
        if done {
            break;
        }
    }
    // Shutdown (request or EOF) always leaves the final flight state
    // behind, making "what was the session doing?" answerable post hoc.
    dump_flight(&mut state, &options.store_dir, "shutdown", next_id);
    Ok(())
}

/// Nanoseconds elapsed since `t`, saturating.
fn ns_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// The request kind access records and per-kind histograms are keyed by:
/// a known op maps to itself, everything else (parse failures, unknown
/// ops) to `invalid`, keeping the key space bounded under hostile input.
fn kind_of(parsed: &Result<Request, String>) -> &'static str {
    match parsed {
        Ok(req) => match req.op.as_str() {
            "solve" => "solve",
            "certain" => "certain",
            "insert" => "insert",
            "retract" => "retract",
            "snapshot" => "snapshot",
            "stats" => "stats",
            "shutdown" => "shutdown",
            _ => "invalid",
        },
        Err(_) => "invalid",
    }
}

/// One versioned access-log record (also what the flight recorder's
/// request ring holds).
#[allow(clippy::too_many_arguments)]
fn access_record(
    id: u64,
    kind: &str,
    meta: &ReqMeta,
    ok: bool,
    status: u32,
    total_ns: u64,
    bytes_in: usize,
    bytes_out: usize,
    epoch: u64,
) -> String {
    let result = if ok { meta.result } else { "error" };
    format!(
        concat!(
            "{{\"v\":1,\"kind\":\"pde-access\",\"id\":{},\"op\":{},\"result\":{},",
            "\"status\":{},\"total_ns\":{},\"chase_ns\":{},\"solve_ns\":{},",
            "\"governor\":{},\"epoch\":{},\"bytes_in\":{},\"bytes_out\":{}}}"
        ),
        id,
        json_escape(kind),
        json_escape(result),
        status,
        total_ns,
        meta.chase_ns,
        meta.solve_ns,
        json_escape(&meta.governor),
        epoch,
        bytes_in,
        bytes_out,
    )
}

/// The next free index for a `flight-NNN-<reason>.jsonl` dump in `dir`:
/// one past the highest existing index, so dumps from restarted sessions
/// never clobber earlier evidence.
fn next_flight_index(dir: &str) -> u64 {
    let mut next = 0u64;
    if let Ok(entries) = std::fs::read_dir(dir) {
        for entry in entries.flatten() {
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(rest) = name.strip_prefix("flight-") {
                if let Some(num) = rest.split('-').next() {
                    if let Ok(n) = num.parse::<u64>() {
                        next = next.max(n + 1);
                    }
                }
            }
        }
    }
    next
}

/// Dump the flight recorder to the store directory. Best-effort: a failed
/// dump warns on stderr and never takes the loop down.
fn dump_flight(state: &mut ServeState, dir: &str, reason: &str, at_request: u64) {
    let header = format!(
        concat!(
            "{{\"v\":1,\"kind\":\"pde-flight\",\"reason\":{},\"at_request\":{},",
            "\"uptime_ns\":{},\"epoch\":{},\"requests\":{},\"spans\":{},\"evicted_spans\":{}}}"
        ),
        json_escape(reason),
        at_request,
        ns_since(state.started),
        state.store.epoch(),
        state.flight.request_count(),
        state.flight.span_count(),
        state.flight.evicted_spans(),
    );
    let path = Path::new(dir).join(format!(
        "flight-{:03}-{reason}.jsonl",
        next_flight_index(dir)
    ));
    match std::fs::write(&path, state.flight.dump(&header)) {
        Ok(()) => state.flight_dumps += 1,
        Err(e) => eprintln!("warning: flight dump {} failed: {e}", path.display()),
    }
}

fn out_err(e: &std::io::Error) -> String {
    format!("stdout: {e}")
}

/// The startup hello: what recovery found, in one machine-readable line.
fn hello_line(state: &ServeState, seeded: usize) -> String {
    format!(
        concat!(
            "{{\"ok\":true,\"kind\":\"pde-serve-hello\",\"v\":1,\"epoch\":{},",
            "\"snapshot_epoch\":{},\"frames_replayed\":{},\"truncated_frames\":{},",
            "\"rewound\":{},\"seeded\":{},\"facts\":{},\"fast_path\":{}}}"
        ),
        state.store.epoch(),
        state.recovery.snapshot_epoch,
        state.recovery.frames_replayed,
        state.recovery.truncated_frames(),
        state.recovery.rewound(),
        seeded,
        state.base.fact_count(),
        state.fast_path,
    )
}

/// Decode one request line: a flat JSON object with string fields plus
/// the optional numeric fault point.
fn parse_request(line: &str) -> Result<Request, String> {
    let fields = parse_flat_object(line)?;
    let mut req = Request {
        op: String::new(),
        facts: None,
        query: None,
        inject_panic_at: None,
    };
    for (key, value) in fields {
        match (key.as_str(), value) {
            ("op", JsonVal::Str(s)) => req.op = s,
            ("facts", JsonVal::Str(s)) => req.facts = Some(s),
            ("query", JsonVal::Str(s)) => req.query = Some(s),
            ("inject_panic_at", JsonVal::Num(n)) => req.inject_panic_at = Some(n),
            (k, v) => return Err(format!("unexpected field '{k}' = {v:?}")),
        }
    }
    if req.op.is_empty() {
        return Err("missing 'op' field".into());
    }
    Ok(req)
}

/// A flat JSON scalar (all the request schema needs).
#[derive(Debug)]
enum JsonVal {
    Str(String),
    Num(u64),
}

/// Parse `{"key": "value", "n": 3, ...}` — one non-nested object of
/// string/unsigned-integer fields. Hand-rolled like every other
/// (de)serializer in the workspace; the response side is plain
/// `format!` + [`json_escape`].
fn parse_flat_object(src: &str) -> Result<Vec<(String, JsonVal)>, String> {
    let b = src.as_bytes();
    let mut at = 0usize;
    let mut fields = Vec::new();
    skip_ws(b, &mut at);
    expect(b, &mut at, b'{')?;
    skip_ws(b, &mut at);
    if b.get(at) == Some(&b'}') {
        at += 1;
    } else {
        loop {
            skip_ws(b, &mut at);
            let key = parse_string(b, &mut at)?;
            skip_ws(b, &mut at);
            expect(b, &mut at, b':')?;
            skip_ws(b, &mut at);
            let value = match b.get(at) {
                Some(b'"') => JsonVal::Str(parse_string(b, &mut at)?),
                Some(c) if c.is_ascii_digit() => {
                    let start = at;
                    while b.get(at).is_some_and(u8::is_ascii_digit) {
                        at += 1;
                    }
                    let n = src[start..at]
                        .parse()
                        .map_err(|_| format!("bad number at byte {start}"))?;
                    JsonVal::Num(n)
                }
                _ => return Err(format!("expected a string or number at byte {at}")),
            };
            fields.push((key, value));
            skip_ws(b, &mut at);
            match b.get(at) {
                Some(b',') => at += 1,
                Some(b'}') => {
                    at += 1;
                    break;
                }
                _ => return Err(format!("expected ',' or '}}' at byte {at}")),
            }
        }
    }
    skip_ws(b, &mut at);
    if at != b.len() {
        return Err(format!("trailing content at byte {at}"));
    }
    Ok(fields)
}

fn skip_ws(b: &[u8], at: &mut usize) {
    while b.get(*at).is_some_and(u8::is_ascii_whitespace) {
        *at += 1;
    }
}

fn expect(b: &[u8], at: &mut usize, c: u8) -> Result<(), String> {
    if b.get(*at) == Some(&c) {
        *at += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {at}", c as char))
    }
}

/// A JSON string literal with the standard escapes.
fn parse_string(b: &[u8], at: &mut usize) -> Result<String, String> {
    expect(b, at, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*at) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *at += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *at += 1;
                let esc = b.get(*at).ok_or("unterminated escape")?;
                *at += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'u' => {
                        let hex = b
                            .get(*at..*at + 4)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape digits")?;
                        *at += 4;
                        out.push(char::from_u32(code).ok_or("\\u escape is not a scalar value")?);
                    }
                    other => return Err(format!("unknown escape '\\{}'", *other as char)),
                }
            }
            Some(_) => {
                // Advance one UTF-8 scalar (input is a &str, so this is
                // always a char boundary walk).
                let rest = std::str::from_utf8(&b[*at..]).map_err(|_| "invalid UTF-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *at += c.len_utf8();
            }
        }
    }
}

/// The governor for one request: CLI budgets, plus the request's fault
/// point when compiled for fault injection.
// The Err branch only exists without `fault-injection` (the wrap looks
// unnecessary to clippy when the feature is on).
#[allow(clippy::unnecessary_wraps)]
fn request_governor(options: &ServeOptions, req: &Request) -> Result<Governor, String> {
    let config = GovernorConfig {
        deadline: options.timeout,
        memory_budget_bytes: options.memory_limit,
        ..GovernorConfig::default()
    };
    match req.inject_panic_at {
        None => Ok(Governor::new(config)),
        #[cfg(feature = "fault-injection")]
        Some(step) => Ok(Governor::with_faults(
            config,
            pde_runtime::FaultPlan {
                panic_in_trigger_at_step: Some(usize::try_from(step).unwrap_or(usize::MAX)),
                ..pde_runtime::FaultPlan::default()
            },
        )),
        #[cfg(not(feature = "fault-injection"))]
        Some(_) => Err("inject_panic_at requires the fault-injection build".into()),
    }
}

/// Dispatch one decoded request. Returns the response body fields (or the
/// in-band error message) and whether the loop should end (`shutdown`).
fn handle(
    state: &mut ServeState,
    options: &ServeOptions,
    req: &Request,
    meta: &mut ReqMeta,
) -> (Result<String, String>, bool) {
    let governor = match request_governor(options, req) {
        Ok(g) => g,
        Err(e) => return (Err(e), false),
    };
    let body = match req.op.as_str() {
        "solve" => handle_solve(state, &governor, meta),
        "certain" => handle_certain(state, req, meta),
        "insert" => handle_mutate(state, req, true),
        "retract" => handle_mutate(state, req, false),
        "snapshot" => handle_snapshot(state),
        "stats" => Ok(handle_stats(state)),
        "shutdown" => Ok(r#""op":"shutdown""#.to_owned()),
        other => Err(format!("unknown op '{other}'")),
    };
    (body, req.op == "shutdown")
}

/// Attach the `metrics` member: always for the `stats` request, and for
/// every response under `--stats`.
fn push_metrics(state: &ServeState, options: &ServeOptions, kind: &str, line: &mut String) {
    if !options.stats && kind != "stats" {
        return;
    }
    let mut reg = MetricsRegistry::new();
    state.store.export_metrics(&mut reg);
    reg.add("serve.requests", state.counters.requests);
    reg.add("serve.errors", state.counters.errors);
    reg.add("serve.panics_isolated", state.counters.panics_isolated);
    reg.add(
        "serve.incremental_rechases",
        state.counters.incremental_rechases,
    );
    reg.add("serve.full_rechases", state.counters.full_rechases);
    reg.add("serve.flight_dumps", state.flight_dumps);
    reg.merge_from(&state.metrics);
    line.push_str(",\"metrics\":");
    line.push_str(&reg.to_json());
}

/// `stats`: session telemetry — uptime, the durable epoch, what recovery
/// found at startup, flight dumps written. The `metrics` member (with the
/// latency histograms) is attached unconditionally for this op.
fn handle_stats(state: &ServeState) -> String {
    format!(
        concat!(
            "\"op\":\"stats\",\"uptime_ns\":{},\"durable_epoch\":{},",
            "\"snapshot_epoch\":{},\"frames_replayed\":{},\"truncated_frames\":{},",
            "\"rewound\":{},\"flight_dumps\":{}"
        ),
        ns_since(state.started),
        state.store.epoch(),
        state.recovery.snapshot_epoch,
        state.recovery.frames_replayed,
        state.recovery.truncated_frames(),
        state.recovery.rewound(),
        state.flight_dumps,
    )
}

/// `solve`: the tractable fast path answers from the shared chased state
/// (maintained incrementally); everything else routes through the full
/// planned solver. Either way the work is isolated — a panic is an
/// `undecided` answer, not a dead loop.
fn handle_solve(
    state: &mut ServeState,
    governor: &Governor,
    meta: &mut ReqMeta,
) -> Result<String, String> {
    let answer = if state.fast_path && state.base.is_ground() {
        let chase_start = Instant::now();
        let refreshed = refresh_chased(state, governor);
        meta.chase_ns = ns_since(chase_start);
        match refreshed {
            RefreshOutcome::Ready => {
                let solve_start = Instant::now();
                let chased = state.chased.as_ref().expect("refresh left the cache ready");
                let solved = exists_solution_from_chased(
                    &state.setting,
                    &state.base,
                    &chased.instance,
                    pde_chase::default_chase_engine(),
                    governor,
                );
                meta.solve_ns = ns_since(solve_start);
                match solved {
                    Ok(out) => {
                        if out.exists {
                            Answer::Yes
                        } else {
                            Answer::No
                        }
                    }
                    Err(TractableError::Stopped(reason)) => Answer::Undecided(reason.to_string()),
                    Err(e) => return Err(e.to_string()),
                }
            }
            RefreshOutcome::Stopped(reason) => Answer::Undecided(reason),
            RefreshOutcome::Panicked(message) => {
                state.counters.panics_isolated += 1;
                meta.governor = format!("panic: {message}");
                meta.flight = Some("panic-isolated");
                Answer::Undecided(format!("request panicked (isolated): {message}"))
            }
        }
    } else {
        let solve_start = Instant::now();
        let answer = solve_full(state, governor)?;
        meta.solve_ns = ns_since(solve_start);
        answer
    };
    let (result, reason) = match answer {
        Answer::Yes => ("yes", None),
        Answer::No => ("no", None),
        Answer::Undecided(reason) => ("undecided", Some(reason)),
    };
    meta.result = result;
    if let Some(reason) = &reason {
        // A panic already claimed the dump reason; everything else
        // undecided is the governor (or a budget) refusing to spend more.
        if meta.flight.is_none() {
            meta.flight = Some("governor-stop");
        }
        if meta.governor == "none" {
            meta.governor.clone_from(reason);
        }
    }
    let mut out = format!("\"op\":\"solve\",\"result\":\"{result}\"");
    if let Some(reason) = reason {
        out.push_str(&format!(",\"reason\":{}", json_escape(&reason)));
    }
    Ok(out)
}

/// The general-purpose route: plan the setting afresh (static analysis,
/// cheap next to the solve) and run the governed solver, which carries
/// its own isolation and naive-engine retry ladder.
fn solve_full(state: &mut ServeState, governor: &Governor) -> Result<Answer, String> {
    let cert = plan_setting(&state.setting, state.base.active_domain().len());
    let plan = cert.to_solve_plan();
    let report = pde_core::decide_governed(&state.setting, &state.base, &plan, governor)
        .map_err(|e| e.to_string())?;
    if let Some(cs) = &report.chase_stats {
        state
            .metrics
            .merge_histogram("chase.round_ns", &cs.round_ns);
    }
    Ok(match report.exists {
        Some(true) => Answer::Yes,
        Some(false) => Answer::No,
        None => Answer::Undecided(
            report
                .undecided
                .map_or_else(|| "search budget exhausted".to_owned(), |r| r.to_string()),
        ),
    })
}

/// Outcome of bringing the chased cache up to the base's epoch.
enum RefreshOutcome {
    /// `state.chased` is the Σst fixpoint of the current base.
    Ready,
    /// The governor stopped the chase; the cache is dropped.
    Stopped(String),
    /// The chase panicked and was isolated; the cache is dropped.
    Panicked(String),
}

/// Ensure `state.chased` covers the current base epoch: extend an existing
/// fixpoint incrementally off the epoch delta, or full-chase from scratch
/// when there is nothing to extend (startup, post-retract, post-failure).
///
/// The cache is *moved out* before any chase runs, so a contained panic
/// drops the possibly half-mutated instance instead of caching it.
fn refresh_chased(state: &mut ServeState, governor: &Governor) -> RefreshOutcome {
    let covered = state.base.current_epoch();
    let limits = ChaseLimits::default();
    let run = match state.chased.take() {
        Some(c) if c.covered == covered => {
            state.chased = Some(c);
            return RefreshOutcome::Ready;
        }
        Some(mut c) => {
            // Incremental: splice the base rows inserted after the covered
            // epoch into the fixpoint at a fresh watermark, then chase
            // only off that delta.
            state.counters.incremental_rechases += 1;
            let schema = state.base.schema().clone();
            let from = c.covered;
            let watermark = c.instance.bump_epoch();
            for rel in schema.rel_ids() {
                let _ = state.base.relation(rel).for_each_row_in_window(
                    from + 1,
                    u64::MAX,
                    &mut |_, ids| {
                        c.instance.insert_ids(rel, ids);
                        ControlFlow::Continue(())
                    },
                );
            }
            let deps = &state.st_deps;
            isolate(move || {
                let gen = null_gen_for(&c.instance);
                chase_incremental_governed(
                    c.instance,
                    deps,
                    WitnessMode::FreshNulls(&gen),
                    limits,
                    governor,
                    None,
                    watermark,
                )
            })
        }
        None => {
            state.counters.full_rechases += 1;
            let input = state.base.clone();
            let deps = &state.st_deps;
            isolate(move || {
                let gen = null_gen_for(&input);
                chase_governed_with(
                    input,
                    deps,
                    WitnessMode::FreshNulls(&gen),
                    limits,
                    pde_chase::ChaseEngine::Seminaive,
                    governor,
                )
            })
        }
    };
    match run {
        Ok(res) => {
            state
                .metrics
                .merge_histogram("chase.round_ns", &res.stats.round_ns);
            if res.is_success() {
                state.chased = Some(Chased {
                    instance: res.instance,
                    covered,
                });
                RefreshOutcome::Ready
            } else {
                RefreshOutcome::Stopped(match res.outcome {
                    ChaseOutcome::Stopped { reason } => reason.to_string(),
                    other => format!("chase did not reach a fixpoint: {other:?}"),
                })
            }
        }
        Err(e) => RefreshOutcome::Panicked(e.to_string()),
    }
}

/// `insert` / `retract`: parse the facts, apply them to the base, and
/// commit the batch durably *before* answering. A retract invalidates the
/// chased cache (see module docs); an insert leaves it for the next solve
/// to extend incrementally.
fn handle_mutate(state: &mut ServeState, req: &Request, insert: bool) -> Result<String, String> {
    let text = req
        .facts
        .as_deref()
        .ok_or("missing 'facts' field (instance text over the bundle's schema)")?;
    let schema = state.base.schema().clone();
    let parsed = parse_instance(&schema, text).map_err(|e| format!("facts: {e}"))?;
    if !insert && !parsed.is_ground() {
        return Err("retract facts must be ground (nulls do not name stored rows)".into());
    }
    let ops = if insert {
        ops_of(&parsed)
    } else {
        ops_of(&parsed)
            .into_iter()
            .map(|op| match op {
                Op::Insert { rel, values } => Op::Retract { rel, values },
                other => other,
            })
            .collect()
    };
    if ops.is_empty() {
        return Err("no facts in request".into());
    }
    let epoch = state.base.bump_epoch();
    let mut changed = 0usize;
    let _ = parsed.for_each_fact(|rel, ids| {
        if insert {
            if state.base.insert_ids(rel, ids) {
                changed += 1;
            }
        } else {
            let values: Vec<Value> = ids.iter().map(|id| id.value()).collect();
            if state.base.remove(rel, &pde_relational::Tuple::new(values)) {
                changed += 1;
            }
        }
        ControlFlow::Continue(())
    });
    if !insert {
        // An incremental window is only sound on top of a fixpoint of a
        // *grown* instance; retraction rewinds it, so the next solve
        // re-chases fully.
        state.chased = None;
    }
    // Durability before acknowledgment: if this commit fails the base has
    // already mutated in memory, but the response says so and the store
    // still recovers to its last good epoch.
    state
        .store
        .commit(epoch, &ops)
        .map_err(|e| format!("commit failed (state not durable): {e}"))?;
    let verb = if insert { "insert" } else { "retract" };
    let key = if insert { "inserted" } else { "retracted" };
    Ok(format!("\"op\":\"{verb}\",\"{key}\":{changed}"))
}

/// `certain`: certain answers of a target UCQ over the current base.
fn handle_certain(
    state: &mut ServeState,
    req: &Request,
    meta: &mut ReqMeta,
) -> Result<String, String> {
    let qsrc = req
        .query
        .as_deref()
        .ok_or("missing 'query' field (a target UCQ)")?;
    let q: UnionQuery = parse_query(state.setting.schema(), qsrc)
        .map_err(|e| format!("query: {e}"))?
        .into();
    let solve_start = Instant::now();
    let setting = &state.setting;
    let base = &state.base;
    let run = isolate(|| certain_answers(setting, base, &q, GenericLimits::default()));
    meta.solve_ns = ns_since(solve_start);
    let out = run
        .map_err(|e| {
            state.counters.panics_isolated += 1;
            meta.governor = format!("panic: {e}");
            meta.flight = Some("panic-isolated");
            format!("request panicked (isolated): {e}")
        })?
        .map_err(|e| e.to_string())?;
    let mut body = format!(
        "\"op\":\"certain\",\"solution_exists\":{},\"solutions_examined\":{}",
        out.solution_exists, out.solutions_examined
    );
    if q.is_boolean() {
        meta.result = if out.certain_bool() { "yes" } else { "no" };
        body.push_str(&format!(",\"certain\":{}", out.certain_bool()));
    } else {
        let rows: Vec<String> = out
            .answers
            .iter()
            .map(|t| {
                let vals: Vec<String> = t.iter().map(|v| json_escape(&v.to_string())).collect();
                format!("[{}]", vals.join(","))
            })
            .collect();
        body.push_str(&format!(",\"answers\":[{}]", rows.join(",")));
    }
    Ok(body)
}

/// `snapshot`: checkpoint the base into an atomic snapshot and reset the
/// journal.
fn handle_snapshot(state: &mut ServeState) -> Result<String, String> {
    state
        .store
        .checkpoint(&state.base)
        .map_err(|e| e.to_string())?;
    Ok(format!(
        "\"op\":\"snapshot\",\"journal_bytes\":{}",
        state.store.journal_bytes()
    ))
}

/// The journal ops equivalent to an instance's facts (all inserts).
fn ops_of(instance: &Instance) -> Vec<Op> {
    let schema = instance.schema();
    let mut ops = Vec::new();
    let _ = instance.for_each_fact(|rel, ids| {
        ops.push(Op::Insert {
            rel: schema.name(rel),
            values: ids.iter().map(|id| id.value()).collect(),
        });
        ControlFlow::Continue(())
    });
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bundle() -> Bundle {
        Bundle::parse(
            "%schema\nsource E/2; target H/2;\n%st\nE(x, z), E(z, y) -> H(x, y)\n%ts\nH(x, y) -> E(x, y)\n%t\n%instance\nE(a, a).\n",
        )
        .unwrap()
    }

    fn temp_store(tag: &str) -> String {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pde-serve-test-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir.to_string_lossy().into_owned()
    }

    fn run(bundle: &Bundle, dir: &str, script: &str) -> Vec<String> {
        run_with(bundle, dir, script, |_| {})
    }

    fn run_with(
        bundle: &Bundle,
        dir: &str,
        script: &str,
        configure: impl FnOnce(&mut ServeOptions),
    ) -> Vec<String> {
        let mut options = ServeOptions {
            store_dir: dir.to_owned(),
            timeout: None,
            memory_limit: None,
            stats: false,
            access_log: None,
            trace_sample: 0,
        };
        configure(&mut options);
        let mut out: Vec<u8> = Vec::new();
        serve(bundle, &options, script.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(str::to_owned)
            .collect()
    }

    fn flight_dumps(dir: &str) -> Vec<String> {
        let mut names: Vec<String> = std::fs::read_dir(dir)
            .unwrap()
            .flatten()
            .map(|e| e.file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("flight-"))
            .collect();
        names.sort();
        names
    }

    #[test]
    fn requests_parse_and_reject_precisely() {
        let req = parse_request(r#"{"op":"insert","facts":"E(a, b)."}"#).unwrap();
        assert_eq!(req.op, "insert");
        assert_eq!(req.facts.as_deref(), Some("E(a, b)."));
        let req = parse_request(r#"{"op":"solve","inject_panic_at":3}"#).unwrap();
        assert_eq!(req.inject_panic_at, Some(3));
        assert!(parse_request(r#"{"facts":"E(a, b)."}"#).is_err(), "no op");
        assert!(parse_request(r#"{"op":"solve"} trailing"#).is_err());
        assert!(parse_request(r#"{"op":{"nested":1}}"#).is_err());
        let req = parse_request(r#"{"op":"certain","query":"q() :- H(\"x\", y)"}"#).unwrap();
        assert_eq!(req.query.as_deref(), Some("q() :- H(\"x\", y)"));
    }

    #[test]
    fn serve_answers_solve_and_certain_over_the_seeded_bundle() {
        let b = bundle();
        let dir = temp_store("solve");
        let lines = run(
            &b,
            &dir,
            "{\"op\":\"solve\"}\n{\"op\":\"certain\",\"query\":\"q() :- H(x, y)\"}\n",
        );
        assert!(lines[0].contains("pde-serve-hello"), "{}", lines[0]);
        assert!(lines[0].contains("\"seeded\":1"), "{}", lines[0]);
        // E(a,a) has the solution {H(a,a)}.
        assert!(lines[1].contains("\"result\":\"yes\""), "{}", lines[1]);
        assert!(lines[2].contains("\"certain\":true"), "{}", lines[2]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn inserts_survive_a_restart_and_flip_the_answer() {
        let b = bundle();
        let dir = temp_store("restart");
        // E(a,a) solves; adding E(a,b), E(b,c) demands E(a,c): no solution.
        let lines = run(
            &b,
            &dir,
            "{\"op\":\"insert\",\"facts\":\"E(a, b). E(b, c).\"}\n{\"op\":\"solve\"}\n",
        );
        assert!(lines[1].contains("\"inserted\":2"), "{}", lines[1]);
        assert!(lines[2].contains("\"result\":\"no\""), "{}", lines[2]);
        // Restart: recovery replays the journal; same answer, no re-seed.
        let lines = run(&b, &dir, "{\"op\":\"solve\"}\n");
        assert!(lines[0].contains("\"seeded\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"facts\":3"), "{}", lines[0]);
        assert!(lines[1].contains("\"result\":\"no\""), "{}", lines[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retract_restores_the_solution_and_survives_snapshot() {
        let b = bundle();
        let dir = temp_store("retract");
        let lines = run(
            &b,
            &dir,
            concat!(
                "{\"op\":\"insert\",\"facts\":\"E(a, b). E(b, c).\"}\n",
                "{\"op\":\"retract\",\"facts\":\"E(a, b).\"}\n",
                "{\"op\":\"snapshot\"}\n",
                "{\"op\":\"solve\"}\n",
            ),
        );
        assert!(lines[2].contains("\"retracted\":1"), "{}", lines[2]);
        assert!(lines[4].contains("\"result\":\"yes\""), "{}", lines[4]);
        // The snapshot folded everything: restart sees it without replay.
        let lines = run(&b, &dir, "{\"op\":\"solve\"}\n");
        assert!(lines[0].contains("\"frames_replayed\":0"), "{}", lines[0]);
        assert!(lines[1].contains("\"result\":\"yes\""), "{}", lines[1]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_requests_answer_in_band_and_keep_serving() {
        let b = bundle();
        let dir = temp_store("bad");
        let lines = run(
            &b,
            &dir,
            concat!(
                "not json\n",
                "{\"op\":\"frobnicate\"}\n",
                "{\"op\":\"insert\"}\n",
                "{\"op\":\"insert\",\"facts\":\"Nope(a).\"}\n",
                "{\"op\":\"solve\"}\n",
            ),
        );
        for bad in &lines[1..5] {
            assert!(bad.contains("\"ok\":false"), "{bad}");
        }
        assert!(lines[5].contains("\"result\":\"yes\""), "{}", lines[5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shutdown_ends_the_loop_early() {
        let b = bundle();
        let dir = temp_store("shutdown");
        let lines = run(&b, &dir, "{\"op\":\"shutdown\"}\n{\"op\":\"solve\"}\n");
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(lines[1].contains("\"op\":\"shutdown\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn responses_carry_monotone_request_ids() {
        let b = bundle();
        let dir = temp_store("ids");
        let lines = run(
            &b,
            &dir,
            "{\"op\":\"solve\"}\nnot json\n{\"op\":\"solve\"}\n",
        );
        assert!(lines[1].contains("\"id\":1"), "{}", lines[1]);
        assert!(lines[2].contains("\"id\":2"), "{}", lines[2]);
        assert!(lines[3].contains("\"id\":3"), "{}", lines[3]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_request_reports_uptime_and_latency_histograms() {
        let b = bundle();
        let dir = temp_store("statsop");
        let lines = run(
            &b,
            &dir,
            "{\"op\":\"solve\"}\n{\"op\":\"insert\",\"facts\":\"E(b, b).\"}\n{\"op\":\"stats\"}\n",
        );
        let stats = &lines[3];
        assert!(stats.contains("\"op\":\"stats\""), "{stats}");
        assert!(stats.contains("\"uptime_ns\":"), "{stats}");
        assert!(stats.contains("\"durable_epoch\":"), "{stats}");
        assert!(stats.contains("\"rewound\":false"), "{stats}");
        // The metrics member is attached without --stats, and the latency
        // histograms are non-empty: three requests total, each kind seen.
        assert!(stats.contains("\"serve.requests\":3"), "{stats}");
        assert!(
            stats.contains("\"serve.request_ns\":{\"count\":3"),
            "{stats}"
        );
        assert!(
            stats.contains("\"serve.request_ns.solve\":{\"count\":1"),
            "{stats}"
        );
        assert!(
            stats.contains("\"serve.request_ns.stats\":{\"count\":1"),
            "{stats}"
        );
        assert!(stats.contains("\"chase.round_ns\":{\"count\":"), "{stats}");
        assert!(stats.contains("\"store.commit_ns\":{\"count\":"), "{stats}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_session_leaves_a_shutdown_flight_dump() {
        let b = bundle();
        let dir = temp_store("flight");
        let _ = run(&b, &dir, "{\"op\":\"solve\"}\n");
        let dumps = flight_dumps(&dir);
        assert_eq!(dumps, vec!["flight-000-shutdown.jsonl".to_owned()]);
        let text = std::fs::read_to_string(Path::new(&dir).join(&dumps[0])).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert!(
            lines[0].starts_with("{\"v\":1,\"kind\":\"pde-flight\",\"reason\":\"shutdown\""),
            "{}",
            lines[0]
        );
        // The request ring holds the solve's access record.
        assert!(
            lines.iter().any(|l| l.contains("\"kind\":\"pde-access\"")
                && l.contains("\"op\":\"solve\"")
                && l.contains("\"result\":\"yes\"")),
            "{text}"
        );
        assert!(lines.iter().all(|l| l.starts_with('{') && l.ends_with('}')));
        // A second session appends a new dump instead of clobbering.
        let _ = run(&b, &dir, "{\"op\":\"solve\"}\n");
        assert_eq!(flight_dumps(&dir).len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn access_log_records_every_request_keyed_by_id() {
        let b = bundle();
        let dir = temp_store("access");
        let log = format!("{dir}-access.jsonl");
        let _ = std::fs::remove_file(&log);
        let lines = run_with(
            &b,
            &dir,
            "{\"op\":\"solve\"}\nnot json\n{\"op\":\"stats\"}\n",
            |o| {
                o.access_log = Some(log.clone());
                o.trace_sample = 2;
            },
        );
        assert_eq!(lines.len(), 4, "{lines:?}");
        let text = std::fs::read_to_string(&log).unwrap();
        let records: Vec<&str> = text.lines().collect();
        let access: Vec<&&str> = records
            .iter()
            .filter(|l| l.contains("\"kind\":\"pde-access\""))
            .collect();
        assert_eq!(access.len(), 3, "{text}");
        assert!(access[0].contains("\"id\":1") && access[0].contains("\"op\":\"solve\""));
        assert!(
            access[1].contains("\"id\":2")
                && access[1].contains("\"op\":\"invalid\"")
                && access[1].contains("\"status\":2"),
            "{}",
            access[1]
        );
        assert!(access[2].contains("\"id\":3") && access[2].contains("\"op\":\"stats\""));
        // Request 2 was sampled (every 2nd): its span capture follows.
        assert!(
            records
                .iter()
                .any(|l| l.contains("\"kind\":\"pde-span-sample\"") && l.contains("\"id\":2")),
            "{text}"
        );
        assert!(records
            .iter()
            .all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&log);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn governor_stop_answers_undecided_and_dumps_flight() {
        let b = bundle();
        let dir = temp_store("govstop");
        let lines = run_with(&b, &dir, "{\"op\":\"solve\"}\n", |o| {
            o.timeout = Some(Duration::from_nanos(1));
        });
        assert!(
            lines[1].contains("\"result\":\"undecided\""),
            "{}",
            lines[1]
        );
        let dumps = flight_dumps(&dir);
        assert!(
            dumps.iter().any(|d| d.contains("governor-stop")),
            "{dumps:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn a_panicking_request_dumps_flight_with_its_access_record() {
        let b = bundle();
        let dir = temp_store("panicdump");
        let lines = run(
            &b,
            &dir,
            concat!(
                "{\"op\":\"insert\",\"facts\":\"E(c, c).\"}\n",
                "{\"op\":\"solve\",\"inject_panic_at\":0}\n",
            ),
        );
        assert!(lines[2].contains("isolated"), "{}", lines[2]);
        let dumps = flight_dumps(&dir);
        let panic_dump = dumps
            .iter()
            .find(|d| d.contains("panic-isolated"))
            .unwrap_or_else(|| panic!("no panic dump in {dumps:?}"));
        let text = std::fs::read_to_string(Path::new(&dir).join(panic_dump)).unwrap();
        assert!(
            text.lines()
                .next()
                .unwrap()
                .contains("\"reason\":\"panic-isolated\""),
            "{text}"
        );
        // The ring held both the insert that led up to the panic and the
        // panicking request's own record when the dump was written.
        assert!(text.contains("\"op\":\"insert\""), "{text}");
        assert!(text.contains("\"governor\":\"panic: "), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn a_panicking_request_is_isolated_and_answered_undecided() {
        let b = bundle();
        let dir = temp_store("panic");
        let lines = run(
            &b,
            &dir,
            concat!(
                "{\"op\":\"insert\",\"facts\":\"E(c, c).\"}\n",
                "{\"op\":\"solve\",\"inject_panic_at\":0}\n",
                "{\"op\":\"solve\"}\n",
            ),
        );
        assert!(
            lines[2].contains("\"result\":\"undecided\"") && lines[2].contains("isolated"),
            "{}",
            lines[2]
        );
        // The loop survived and the next (clean) solve still answers.
        assert!(lines[3].contains("\"result\":\"yes\""), "{}", lines[3]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
