//! # Peer Data Exchange
//!
//! A faithful, executable reproduction of *"Peer Data Exchange"* (Fuxman,
//! Kolaitis, Miller, Tan — PODS 2005).
//!
//! Peer data exchange (PDE) sits between classical data exchange and full
//! peer data management: an authoritative **source** peer ships data to a
//! **target** peer under source-to-target tgds (Σst), while the target
//! restricts what it accepts with target-to-source tgds (Σts) and its own
//! target constraints (Σt). The two algorithmic problems are the existence
//! of a solution (`SOL(P)`, NP-complete in general) and the certain
//! answers of target queries (coNP-complete), with a large tractable class
//! `C_tract` solved in polynomial time by the chase-and-homomorphism
//! algorithm `ExistsSolution`.
//!
//! ## Quickstart
//!
//! ```
//! use peer_data_exchange::prelude::*;
//!
//! // Example 1 of the paper.
//! let setting = PdeSetting::parse(
//!     "source E/2; target H/2;",
//!     "E(x, z), E(z, y) -> H(x, y)",   // Σst
//!     "H(x, y) -> E(x, y)",            // Σts
//!     "",                              // Σt
//! ).unwrap();
//!
//! // I = {E(a,b), E(b,c)}, J = ∅: no solution (H(a,c) needs E(a,c)).
//! let input = parse_instance(setting.schema(), "E(a, b). E(b, c).").unwrap();
//! let report = decide(&setting, &input).unwrap();
//! assert_eq!(report.exists, Some(false));
//!
//! // I = {E(a,a)}: the unique solution {H(a,a)} is materialized.
//! let input = parse_instance(setting.schema(), "E(a, a).").unwrap();
//! let report = decide(&setting, &input).unwrap();
//! assert_eq!(report.exists, Some(true));
//! assert!(is_solution(&setting, &input, &report.witness.unwrap()));
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`relational`] | values (constants / labeled nulls), schemas, indexed instances, homomorphism search, conjunctive queries, parsers |
//! | [`constraints`] | tgds/egds, disjunctive tgds, weak acyclicity, marked positions, the `C_tract` classifier |
//! | [`chase`] | the standard chase and the paper's solution-aware chase |
//! | [`core`] | PDE settings, solution checking, blocks, the four solvers, certain answers, multi-PDE, the PDMS embedding |
//! | [`analysis`] | `pde lint` diagnostics, `pde plan` complexity certificates, and the `pde optimize` rewriter (certified dependency pruning + static interference/stratification analysis) — each with an independent checker |
//! | [`runtime`] | resilient execution: the [`Governor`](runtime::Governor) (deadlines, memory budgets, cancellation), panic isolation, deterministic fault injection — see `docs/ROBUSTNESS.md` |
//! | [`store`] | crash-safe durable instance store: atomic columnar snapshots + a checksummed epoch journal, truncate-at-first-bad-frame recovery — see `docs/SERVE.md` |
//! | [`serve`] | the `pde serve` JSONL request loop over a durable store, with incremental re-chase and per-request isolation |
//! | [`workloads`] | graph generators, the CLIQUE / 3-COL reductions, scalable tractable workloads, paper fixtures |
//! | [`trace`] | zero-dependency span tracing, metrics registry, and the versioned run-report format — see `docs/OBSERVABILITY.md` |
//!
//! Benchmarks reproducing the paper's complexity landscape live in the
//! `pde-bench` crate (one Criterion target per experiment in
//! `EXPERIMENTS.md`).

pub use pde_analysis as analysis;
pub use pde_chase as chase;
pub use pde_constraints as constraints;
pub use pde_core as core;
pub use pde_relational as relational;
pub use pde_runtime as runtime;
pub use pde_store as store;
pub use pde_trace as trace;
pub use pde_workloads as workloads;

pub mod serve;

/// The most commonly used items, for glob import.
pub mod prelude {
    pub use pde_analysis::{plan_setting, verify_certificate, Certificate, Regime};
    pub use pde_chase::{chase, chase_tgds, solution_aware_chase, ChaseLimits, ChaseOutcome};
    pub use pde_constraints::{
        classify, parse_dependencies, parse_dependency, parse_egd, parse_tgd, parse_tgds,
        Dependency, Egd, Marking, Orientation, Tgd,
    };
    pub use pde_core::{
        assignment_solve, certain_answers, check_solution, decide, decide_governed,
        decide_with_limits, decide_with_plan, exists_solution, is_solution, solve_data_exchange,
        GenericLimits, MultiPdeSetting, PdeSetting, Pdms, SolvePlan, SolveReport, SolverKind,
    };
    pub use pde_relational::{
        parse_instance, parse_query, parse_schema, ConjunctiveQuery, Instance, Peer, Schema,
        UnionQuery, Value,
    };
    pub use pde_runtime::{CancelToken, Governor, GovernorConfig, GovernorReport, StopReason};
    pub use pde_workloads::{has_k_clique, is_three_colorable, Graph};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_covers_the_happy_path() {
        let setting = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap();
        let input = parse_instance(setting.schema(), "E(a, b).").unwrap();
        let report = decide(&setting, &input).unwrap();
        assert_eq!(report.exists, Some(true));
    }
}
