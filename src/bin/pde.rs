//! `pde` — command-line front end for the peer data exchange library.
//!
//! ```text
//! pde classify <bundle.pde>             static analysis of the setting
//! pde lint     <bundle.pde>             diagnostics with stable PDE0xx codes
//! pde plan     <bundle.pde>             static complexity certificate
//! pde terminate <bundle.pde>            chase-termination hierarchy analysis
//! pde optimize <bundle.pde>             semantics-preserving dependency rewriting
//! pde solve    <bundle.pde>             decide SOL(P), print a witness
//! pde certain  <bundle.pde> <query>     certain answers of a target UCQ
//! pde chase    <bundle.pde>             show the canonical chase artifacts
//! pde check    <bundle.pde> <candidate> verify a candidate solution file
//! pde enumerate <bundle.pde> [limit]    list distinct minimal-family solutions
//! pde shrink   <bundle.pde> <candidate> Lemma 2: extract a small sub-solution
//! pde format   <bundle.pde>             parse and re-render the bundle
//! pde serve    <bundle.pde> <store-dir> durable JSONL request loop (docs/SERVE.md)
//! ```
//!
//! Bundles are the `.pde` text format of `pde_core::bundle`; `<candidate>`
//! is a plain instance file over the bundle's schema. Exit code 0 on
//! "yes"/success outcomes, 1 on "no" outcomes (for `lint`: denied
//! diagnostics present; for `plan --check`: certificate rejected), 2 on
//! usage or input errors, 3 when `solve` could not decide within its
//! budgets (search caps, `--timeout`, `--memory-limit`, cancellation).
//!
//! `solve`, `certain`, and `enumerate` run the linter first and print any
//! warnings to stderr (never changing the exit code); `--no-lint` skips
//! that. `lint` and `plan` accept `--format text|json`; `lint` also takes
//! `--deny warnings`.
//!
//! `plan` emits a versioned JSON certificate (ranks, chase bounds,
//! `C_tract` witnesses, solver routing, budgets); `plan --check <cert>`
//! re-verifies a saved certificate against the bundle with the
//! independent checker. `solve` routes through the certificate-derived
//! plan (`decide_with_plan`); pass `--plan <cert.json>` to reuse a saved
//! certificate instead of planning afresh. `solve`, `certain`, and
//! `enumerate` take `--max-steps <n>` (search node / chase step cap) and
//! `--max-branches <n>` (active-domain values tried per existential);
//! exceeding a cap reports "undecided", never a wrong answer.
//!
//! `--chase naive|seminaive` (any command) selects the chase engine for
//! the whole run — semi-naive delta-driven by default, `naive` as the
//! escape hatch (see `docs/CHASE.md`). `solve --stats` prints the chase
//! engine counters: rounds, triggers fired vs skipped-by-delta, egd
//! merges — and, for the complete searches, the branch/candidate/prune
//! counters — plus the resource-governor counters and whether the run
//! fell back to the naive oracle engine.
//!
//! Observability (`docs/OBSERVABILITY.md`): `--trace <file.jsonl>` (any
//! command) streams every phase span — chase rounds, trigger discovery,
//! egd merging, block decomposition, per-block homomorphism search,
//! search branches, governor checks — as one JSON object per line;
//! `--profile` aggregates the same spans in-process and prints a
//! per-phase total/self-time table to stderr. `solve --format json`
//! replaces the human-readable output with a single versioned JSON run
//! report: outcome, certificate routing identifiers, and every chase /
//! search / governor counter.
//!
//! `terminate` (docs/TERMINATION.md) runs the chase-termination hierarchy
//! — weak acyclicity, joint acyclicity, super-weak acyclicity, then the
//! critical-instance check — cheapest-first and prints the certifying
//! criterion, its criterion trail, witness, and derived bounds. Exit 0
//! when some criterion certifies termination, 1 when every criterion
//! fails. `--emit <cert.json>` saves the standalone termination
//! certificate; `--check [cert.json]` re-verifies a saved certificate (or
//! self-checks a fresh derivation) with the independent
//! `verify_termination` checker, exiting 2 on any stale or tampered
//! witness and 0 otherwise.
//!
//! `optimize` (docs/OPTIMIZER.md) runs the semantics-preserving rewrite
//! passes — trivial-egd removal, duplicate elimination up to renaming,
//! subsumption, input-aware dead-dependency elimination — prints the
//! actions and the stratified chase schedule, and carries a
//! machine-checkable rewrite certificate: `--emit <cert.json>` saves it,
//! `--check [cert.json]` re-verifies a saved certificate (or, with no
//! path, self-checks a fresh derivation) with the independent
//! `verify_rewrite` checker, exiting 2 on any mismatch. `solve`,
//! `certain`, and `enumerate` optimize automatically (like auto-lint);
//! `--no-optimize` opts out, and `--plan` disables optimization because a
//! saved plan certificate describes the original setting. The optimized
//! solve threads the stratified schedule into the semi-naive chase and
//! reports it under `--stats` and in the JSON run report's `optimize`
//! section.
//!
//! `solve` and `serve` accept the resource-governance flags of
//! `docs/ROBUSTNESS.md`: `--timeout <dur>` (e.g. `500ms`, `2s`; bare
//! numbers are milliseconds) sets a wall-clock deadline, `--memory-limit
//! <size>` (e.g. `64m`, `2g`; bare numbers are bytes) a byte budget on
//! the estimated instance footprint, and `--governed` (solve only) seeds
//! the memory budget from the plan certificate's chase bound. Exhausting
//! any budget prints `undecided (<reason>)` and exits 3 — never a wrong
//! answer; under `serve` the budgets apply per request.
//!
//! `serve` (docs/SERVE.md) runs a long-lived JSONL request loop
//! (solve/certain/insert/retract/snapshot/shutdown) over a crash-safe
//! durable store directory: every mutation is journaled with checksummed
//! frames before it is acknowledged, startup recovery replays the journal
//! onto the last atomic snapshot and truncates any torn or corrupt tail,
//! and each request runs isolated under its own governor — a panicking
//! or over-budget request answers `undecided` without killing the loop.
//! `serve --stats` attaches the `store.*`/`serve.*` metrics to every
//! response.

use pde_analysis::{
    analyze_setting, analyze_termination, any_denied, forward_schedule, optimize_setting,
    plan_setting, render_certificate_text, render_json, render_termination_text, render_text,
    verify_certificate, verify_rewrite, verify_termination, AnalysisInput, Certificate,
    LintSection, OptimizeResult, RenderContext, RewriteAction, RewriteCertificate, Severity,
    SourceParseError, TerminationCertificate,
};
use pde_chase::{chase_tgds, DepSchedule};
use pde_core::bundle::{split_sections, Bundle, BundleSources};
use pde_core::{
    certain_answers, check_solution, decide_governed_scheduled, GenericLimits, PdeSetting,
    SolvePlan,
};
use pde_relational::{parse_instance, parse_query, Instance, Peer, UnionQuery};
use pde_runtime::{Governor, GovernorConfig};
use peer_data_exchange::serve::{serve, ServeOptions};
use std::process::ExitCode;
use std::time::Duration;

/// Write a line to stdout, mapping an I/O failure (e.g. a pipe closed by
/// a downstream `head`) to a structured usage-level error instead of the
/// panic `println!` would raise. Expands with a `?`, so it only composes
/// inside functions returning `Result<_, String>`.
macro_rules! outln {
    ($($t:tt)*) => {{
        use std::io::Write as _;
        writeln!(std::io::stdout(), $($t)*).map_err(|e| format!("stdout: {e}"))?
    }};
}

/// [`outln!`] without the trailing newline.
macro_rules! outp {
    ($($t:tt)*) => {{
        use std::io::Write as _;
        write!(std::io::stdout(), $($t)*).map_err(|e| format!("stdout: {e}"))?
    }};
}

/// Three-valued command outcome: `Yes`/`No` answer the decision problem,
/// `Undecided` means a budget ran out first. Mapped to exit codes 0/1/3.
enum Verdict {
    /// Affirmative outcome (solution exists, check passed, lint clean).
    Yes,
    /// Negative outcome (no solution, check failed, denied diagnostics).
    No,
    /// The solver stopped on a resource budget before deciding.
    Undecided,
}

/// `Yes`/`No` from a boolean outcome.
fn verdict(yes: bool) -> Verdict {
    if yes {
        Verdict::Yes
    } else {
        Verdict::No
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(Verdict::Yes) => ExitCode::SUCCESS,
        Ok(Verdict::No) => ExitCode::from(1),
        Ok(Verdict::Undecided) => ExitCode::from(3),
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  pde classify  <bundle.pde>
  pde lint      <bundle.pde> [--format text|json] [--deny warnings]
  pde plan      <bundle.pde> [--format text|json] [--check <cert.json>]
  pde terminate <bundle.pde> [--format text|json] [--emit <cert.json>] [--check [cert.json]]
  pde optimize  <bundle.pde> [--format text|json] [--emit <cert.json>] [--check [cert.json]]
  pde solve     <bundle.pde> [--no-lint] [--no-optimize] [--plan <cert.json>] [--max-steps n]
                [--max-branches n] [--timeout dur] [--memory-limit size] [--governed] [--stats]
                [--format text|json]
  pde certain   <bundle.pde> <query> [--no-lint] [--no-optimize] [--plan <cert.json>]
                [--max-steps n] [--max-branches n]
  pde chase     <bundle.pde>
  pde check     <bundle.pde> <candidate-instance>
  pde enumerate <bundle.pde> [limit] [--no-lint] [--no-optimize] [--max-steps n] [--max-branches n]
  pde shrink    <bundle.pde> <candidate-instance>
  pde format    <bundle.pde>
  pde serve     <bundle.pde> <store-dir> [--timeout dur] [--memory-limit size] [--stats]
                [--access-log <file.jsonl>] [--trace-sample n]
global flags:
  --chase naive|seminaive   chase engine (default: seminaive)
  --optimize/--no-optimize  rewrite the setting before solving (default: on;
                            --plan disables; solve/certain/enumerate only)
  --trace <file.jsonl>      stream structured spans as JSON lines (docs/OBSERVABILITY.md)
  --profile                 print a per-phase wall-clock/self-time table to stderr
solve-only flags:
  --timeout <dur>           wall-clock budget (ns/us/ms/s suffix; bare = ms)
  --memory-limit <size>     instance byte budget (k/m/g suffix; bare = bytes)
  --governed                derive the memory budget from the plan certificate
serve-only flags:
  --access-log <file>       append one JSONL access record per request (docs/OBSERVABILITY.md)
  --trace-sample <n>        capture the span stream of every nth request into the access log
exit codes: 0 yes, 1 no, 2 usage/input error, 3 undecided (budget exhausted)";

fn load_bundle(path: &str) -> Result<Bundle, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let (bundle, warnings) =
        Bundle::parse_with_warnings(&src).map_err(|e| format!("{path}: {e}"))?;
    for w in &warnings {
        eprintln!("{path}: warning: {w}");
    }
    Ok(bundle)
}

/// Command-line switches (accepted after the positional arguments).
#[derive(Default)]
struct Flags {
    no_lint: bool,
    deny_warnings: bool,
    json: bool,
    max_steps: Option<usize>,
    max_branches: Option<usize>,
    plan_path: Option<String>,
    /// `--check` was given; the inner option is the certificate path
    /// (`plan` requires one, `optimize` self-checks without one).
    check_path: Option<Option<String>>,
    /// `--optimize` (`Some(true)`) / `--no-optimize` (`Some(false)`);
    /// `None` means the per-command default (on for solve-style commands).
    optimize: Option<bool>,
    emit_path: Option<String>,
    stats: bool,
    chase_engine: Option<pde_chase::ChaseEngine>,
    timeout: Option<Duration>,
    memory_limit: Option<usize>,
    governed: bool,
    trace_path: Option<String>,
    profile: bool,
    access_log: Option<String>,
    trace_sample: Option<u64>,
}

impl Flags {
    /// Does any resource-governance flag ask for a governed run?
    fn wants_governance(&self) -> bool {
        self.timeout.is_some() || self.memory_limit.is_some() || self.governed
    }
}

/// Split `args` into positional arguments and recognized flags.
fn split_flags(args: &[String]) -> Result<(Vec<String>, Flags), String> {
    let mut pos = Vec::new();
    let mut flags = Flags::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-lint" => flags.no_lint = true,
            "--deny" => match it.next().map(String::as_str) {
                Some("warnings") => flags.deny_warnings = true,
                other => {
                    return Err(format!(
                        "--deny expects 'warnings', got {}",
                        other.map_or("nothing".into(), |o| format!("'{o}'"))
                    ))
                }
            },
            "--format" => match it.next().map(String::as_str) {
                Some("text") => flags.json = false,
                Some("json") => flags.json = true,
                other => {
                    return Err(format!(
                        "--format expects 'text' or 'json', got {}",
                        other.map_or("nothing".into(), |o| format!("'{o}'"))
                    ))
                }
            },
            "--max-steps" => flags.max_steps = Some(flag_number(&mut it, "--max-steps")?),
            "--max-branches" => flags.max_branches = Some(flag_number(&mut it, "--max-branches")?),
            "--timeout" => {
                flags.timeout = Some(parse_duration(&flag_value(&mut it, "--timeout")?)?);
            }
            "--memory-limit" => {
                flags.memory_limit = Some(parse_bytes(&flag_value(&mut it, "--memory-limit")?)?);
            }
            "--governed" => flags.governed = true,
            "--trace" => flags.trace_path = Some(flag_value(&mut it, "--trace")?),
            "--profile" => flags.profile = true,
            "--access-log" => flags.access_log = Some(flag_value(&mut it, "--access-log")?),
            "--trace-sample" => {
                let n = flag_number(&mut it, "--trace-sample")?;
                flags.trace_sample = Some(u64::try_from(n).unwrap_or(u64::MAX));
            }
            "--plan" => flags.plan_path = Some(flag_value(&mut it, "--plan")?),
            "--check" => {
                // The certificate path is optional: `optimize --check`
                // with no path self-checks a fresh derivation.
                flags.check_path = Some(match it.clone().next() {
                    Some(v) if !v.starts_with("--") => it.next().cloned(),
                    _ => None,
                });
            }
            "--optimize" => flags.optimize = Some(true),
            "--no-optimize" => flags.optimize = Some(false),
            "--emit" => flags.emit_path = Some(flag_value(&mut it, "--emit")?),
            "--stats" => flags.stats = true,
            "--chase" => match it.next().map(String::as_str) {
                Some("naive") => flags.chase_engine = Some(pde_chase::ChaseEngine::Naive),
                Some("seminaive") => flags.chase_engine = Some(pde_chase::ChaseEngine::Seminaive),
                other => {
                    return Err(format!(
                        "--chase expects 'naive' or 'seminaive', got {}",
                        other.map_or("nothing".into(), |o| format!("'{o}'"))
                    ))
                }
            },
            f if f.starts_with("--") => return Err(format!("unknown flag '{f}'")),
            _ => pos.push(a.clone()),
        }
    }
    Ok((pos, flags))
}

/// The mandatory value of a two-token flag.
fn flag_value<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<String, String> {
    it.next()
        .cloned()
        .ok_or_else(|| format!("{flag} expects a value"))
}

/// The mandatory numeric value of a two-token flag.
fn flag_number<'a>(it: &mut impl Iterator<Item = &'a String>, flag: &str) -> Result<usize, String> {
    let v = flag_value(it, flag)?;
    v.parse()
        .map_err(|_| format!("{flag} expects a number, got '{v}'"))
}

/// Split `"120ms"` into `(120, "ms")`; the suffix may be empty.
fn split_unit(v: &str) -> Option<(u64, &str)> {
    let digits = v.len() - v.trim_start_matches(|c: char| c.is_ascii_digit()).len();
    if digits == 0 {
        return None;
    }
    let n: u64 = v[..digits].parse().ok()?;
    Some((n, &v[digits..]))
}

/// `--timeout` value: a number with an optional `ns`/`us`/`ms`/`s`
/// suffix. Bare numbers are milliseconds.
fn parse_duration(v: &str) -> Result<Duration, String> {
    let bad = || format!("--timeout expects e.g. '500ms' or '2s', got '{v}'");
    let (n, unit) = split_unit(v).ok_or_else(bad)?;
    match unit {
        "ns" => Ok(Duration::from_nanos(n)),
        "us" => Ok(Duration::from_micros(n)),
        "" | "ms" => Ok(Duration::from_millis(n)),
        "s" => Ok(Duration::from_secs(n)),
        _ => Err(bad()),
    }
}

/// `--memory-limit` value: a number with an optional `k`/`m`/`g` (or
/// `kb`/`mb`/`gb`) binary-multiple suffix. Bare numbers are bytes.
fn parse_bytes(v: &str) -> Result<usize, String> {
    let lower = v.to_ascii_lowercase();
    let bad = || format!("--memory-limit expects e.g. '64m' or '1000000', got '{v}'");
    let (n, unit) = split_unit(&lower).ok_or_else(bad)?;
    let shift = match unit {
        "" => 0u32,
        "k" | "kb" => 10,
        "m" | "mb" => 20,
        "g" | "gb" => 30,
        _ => return Err(bad()),
    };
    usize::try_from(n)
        .ok()
        .and_then(|n| n.checked_mul(1usize << shift))
        .ok_or_else(|| format!("--memory-limit '{v}' overflows"))
}

/// Format a section-level parse error with its file position.
fn render_source_error(path: &str, sources: &BundleSources, e: &SourceParseError) -> String {
    let section = match e.section {
        LintSection::Schema => &sources.schema,
        LintSection::St => &sources.st,
        LintSection::Ts => &sources.ts,
        LintSection::T => &sources.t,
    };
    let (line, col) = section.file_line_col(e.error.offset());
    format!("{path}:{line}:{col}: {e}")
}

/// The solve plan for a setting (the *effective* one — optimized when
/// optimization ran): a verified saved certificate when `--plan` was
/// given, otherwise a fresh planner run; `--max-steps` and
/// `--max-branches` override the plan's budgets last. The certificate
/// rides along so `--governed` can derive a memory budget from it.
fn resolve_plan(
    setting: &PdeSetting,
    input: &Instance,
    flags: &Flags,
) -> Result<(SolvePlan, Certificate), String> {
    let cert = match &flags.plan_path {
        Some(path) => {
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let cert = Certificate::from_json(&src).map_err(|e| format!("{path}: {e}"))?;
            verify_certificate(setting, &cert).map_err(|e| format!("{path}: {e}"))?;
            cert
        }
        None => plan_setting(setting, input.active_domain().len()),
    };
    let mut plan = cert.to_solve_plan();
    if let Some(n) = flags.max_steps {
        plan.limits.max_nodes = n;
        plan.chase_limits.max_steps = n;
    }
    if let Some(n) = flags.max_branches {
        plan.limits.max_branches = n;
    }
    Ok((plan, cert))
}

/// Run the optimizer ahead of a solve-style command when asked (or by
/// default, like auto-lint). A saved `--plan` certificate disables it —
/// the certificate describes the original, unoptimized setting — and
/// `--no-optimize` opts out. When the default (not the explicit
/// `--optimize`) removed anything, a one-line note goes to stderr.
fn resolve_optimize(bundle: &Bundle, flags: &Flags) -> Result<Option<OptimizeResult>, String> {
    if flags.plan_path.is_some() {
        if flags.optimize == Some(true) {
            return Err(
                "--optimize cannot be combined with --plan: a saved plan certificate \
                 describes the original, unoptimized setting"
                    .into(),
            );
        }
        return Ok(None);
    }
    if flags.optimize == Some(false) {
        return Ok(None);
    }
    let out = optimize_setting(&bundle.setting, &bundle.input);
    let removed = out.certificate.actions.len();
    if flags.optimize.is_none() && removed > 0 {
        eprintln!(
            "optimizer: removed {removed} of {} dependencies (pass --no-optimize to disable)",
            out.certificate.before.total()
        );
    }
    Ok(Some(out))
}

/// One human-readable line per rewrite action.
fn describe_action(a: &RewriteAction) -> String {
    match a {
        RewriteAction::RemoveTrivialEgd { group, index } => {
            format!("remove {group} #{index}: trivial egd")
        }
        RewriteAction::RemoveDuplicate { group, index, kept } => {
            format!("remove {group} #{index}: duplicate of #{kept} up to renaming")
        }
        RewriteAction::RemoveSubsumed { group, index, by } => {
            format!("remove {group} #{index}: subsumed by #{by}")
        }
        RewriteAction::RemoveDead {
            group,
            index,
            relation,
        } => format!("remove {group} #{index}: reads unpopulatable relation {relation}"),
    }
}

/// The stratified schedule as JSON: `{"strata":[[0,1],[2]]}`.
fn schedule_json(s: &DepSchedule) -> String {
    let strata: Vec<String> = s
        .strata
        .iter()
        .map(|st| {
            let xs: Vec<String> = st.iter().map(ToString::to_string).collect();
            format!("[{}]", xs.join(","))
        })
        .collect();
    format!("{{\"strata\":[{}]}}", strata.join(","))
}

/// The governor for a `solve` run: `--governed` seeds the memory budget
/// from the certificate's chase bound, then the explicit `--timeout` and
/// `--memory-limit` flags override. With no governance flags this is the
/// unlimited governor (no checks beyond counter bumps).
fn resolve_governor(cert: &Certificate, flags: &Flags) -> Governor {
    let mut config = if flags.governed {
        cert.derived_governor_config()
    } else {
        GovernorConfig::default()
    };
    if let Some(d) = flags.timeout {
        config.deadline = Some(d);
    }
    if let Some(b) = flags.memory_limit {
        config.memory_budget_bytes = Some(b);
    }
    Governor::new(config)
}

/// Render the machine-readable run report for `solve --format json`: one
/// JSON object per run carrying the report schema version, the routing
/// identifiers of the plan certificate, the outcome, and every counter the
/// solve accumulated (chase, search, governor) via the metrics registry.
/// The schema is documented in `docs/OBSERVABILITY.md`. When the
/// optimizer ran, `optimize` carries its rewrite counts and the stratified
/// schedule; otherwise it is `null`. The certificate object's
/// `termination` member summarizes the chase-termination section: whether
/// some criterion certifies termination and which one.
fn render_solve_json(
    report: &pde_core::SolveReport,
    cert: &Certificate,
    optimize: Option<(&RewriteCertificate, &DepSchedule)>,
    hist: Option<&pde_trace::HistogramSink>,
) -> String {
    use pde_trace::json_escape;
    let mut reg = pde_trace::MetricsRegistry::new();
    report.export_metrics(&mut reg);
    // Fold in the span-derived per-phase self-time distributions (the
    // sink only holds histograms, so no counter double-counting).
    if let Some(h) = hist {
        reg.merge_from(&h.snapshot());
    }
    let result = match report.exists {
        Some(true) => "\"yes\"".to_owned(),
        Some(false) => "\"no\"".to_owned(),
        None => "\"undecided\"".to_owned(),
    };
    let undecided = match &report.undecided {
        Some(reason) => json_escape(&reason.to_string()),
        None => "null".to_owned(),
    };
    let engine = match pde_chase::default_chase_engine() {
        pde_chase::ChaseEngine::Naive => "naive",
        pde_chase::ChaseEngine::Seminaive => "seminaive",
    };
    let optimize = match optimize {
        Some((c, s)) => format!(
            "{{\"before\":{},\"after\":{},\"actions\":{},\"schedule\":{}}}",
            c.before.total(),
            c.after.total(),
            c.actions.len(),
            schedule_json(s),
        ),
        None => "null".to_owned(),
    };
    let term = &cert.chase.termination;
    let termination = format!(
        "{{\"certified\":{},\"criterion\":{}}}",
        term.certified(),
        term.criterion
            .map_or("null".to_owned(), |c| format!("\"{c}\"")),
    );
    format!(
        concat!(
            "{{\"v\":{},\"solver\":{},\"engine\":{},\"result\":{},",
            "\"undecided_reason\":{},\"engine_fallback\":{},",
            "\"optimize\":{},",
            "\"certificate\":{{\"version\":{},\"regime\":{},\"solver\":{},",
            "\"termination\":{}}},",
            "\"metrics\":{}}}"
        ),
        pde_trace::REPORT_VERSION,
        json_escape(pde_analysis::certificate::solver_kind_str(report.kind)),
        json_escape(engine),
        result,
        undecided,
        report.engine_fallback,
        optimize,
        cert.version,
        json_escape(cert.regime.as_str()),
        json_escape(pde_analysis::certificate::solver_kind_str(
            cert.recommended_solver
        )),
        termination,
        reg.to_json(),
    )
}

/// Lint the setting before a solve-style command, printing any warning or
/// error diagnostics to stderr. Never alters the command's outcome.
fn auto_lint(bundle: &Bundle, flags: &Flags) {
    if flags.no_lint {
        return;
    }
    let diags: Vec<_> = analyze_setting(&bundle.setting)
        .into_iter()
        .filter(|d| d.severity >= Severity::Warning)
        .collect();
    if !diags.is_empty() {
        eprint!("{}", render_text(&diags, None));
        eprintln!("(lint findings do not affect this command; pass --no-lint to silence)");
    }
}

fn run(args: &[String]) -> Result<Verdict, String> {
    let (args, flags) = split_flags(args)?;
    if let Some(engine) = flags.chase_engine {
        pde_chase::set_default_chase_engine(engine);
    }
    // Tracing sinks are process-global: install before dispatch, tear down
    // after so the stream is flushed (and the profile table printed) even
    // when a command returns early.
    if flags.profile && flags.trace_path.is_some() {
        return Err("--trace and --profile are mutually exclusive (one sink per run)".into());
    }
    let jsonl = match &flags.trace_path {
        Some(path) => {
            let sink = std::sync::Arc::new(
                pde_trace::JsonlSink::create(path).map_err(|e| format!("--trace {path}: {e}"))?,
            );
            pde_trace::set_sink(sink.clone());
            Some(sink)
        }
        None => None,
    };
    let profile = if flags.profile {
        let sink = std::sync::Arc::new(pde_trace::ProfileSink::new());
        pde_trace::set_sink(sink.clone());
        Some(sink)
    } else {
        None
    };
    // Under --stats (batch commands only — serve keeps its own session
    // registry) a histogram sink buckets per-phase self-times so the JSON
    // run report's `histograms` member carries real distributions. It
    // composes with --trace/--profile through a fan-out.
    let hist = if flags.stats && args.first().map(String::as_str) != Some("serve") {
        let sink = std::sync::Arc::new(pde_trace::HistogramSink::new());
        let mut sinks: Vec<std::sync::Arc<dyn pde_trace::Sink>> = Vec::new();
        if let Some(prev) = pde_trace::current_sink() {
            sinks.push(prev);
        }
        sinks.push(sink.clone());
        pde_trace::set_sink(std::sync::Arc::new(pde_trace::FanoutSink::new(sinks)));
        Some(sink)
    } else {
        None
    };
    let out = dispatch(&args, &flags, hist.as_deref());
    if let Some(sink) = jsonl {
        sink.flush();
    }
    if let Some(sink) = profile {
        // Stderr so `--profile` composes with machine-readable stdout.
        eprint!("{}", sink.render_table());
    }
    out
}

fn dispatch(
    args: &[String],
    flags: &Flags,
    hist: Option<&pde_trace::HistogramSink>,
) -> Result<Verdict, String> {
    let cmd = args.first().ok_or("missing command")?;
    if flags.wants_governance() && !matches!(cmd.as_str(), "solve" | "serve") {
        return Err(format!(
            "--timeout/--memory-limit/--governed only apply to 'solve' and 'serve', not '{cmd}'"
        ));
    }
    if flags.governed && cmd == "serve" {
        return Err("--governed only applies to 'solve' (serve has no plan certificate)".into());
    }
    if (flags.access_log.is_some() || flags.trace_sample.is_some()) && cmd != "serve" {
        return Err(format!(
            "--access-log/--trace-sample only apply to 'serve', not '{cmd}'"
        ));
    }
    if flags.optimize.is_some() && !matches!(cmd.as_str(), "solve" | "certain" | "enumerate") {
        return Err(format!(
            "--optimize/--no-optimize only apply to 'solve', 'certain', and 'enumerate', not '{cmd}'"
        ));
    }
    if flags.emit_path.is_some() && !matches!(cmd.as_str(), "optimize" | "terminate") {
        return Err(format!(
            "--emit only applies to 'optimize' and 'terminate', not '{cmd}'"
        ));
    }
    match cmd.as_str() {
        "lint" => {
            let path = args.get(1).ok_or("missing bundle path")?;
            let src = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let sources = split_sections(&src).map_err(|e| format!("{path}: {e}"))?;
            let input = AnalysisInput::from_sources(&sources)
                .map_err(|e| render_source_error(path, &sources, &e))?;
            parse_instance(input.schema(), &sources.instance.text)
                .map_err(|e| format!("{path}: %instance section: {e}"))?;
            let diags = input.analyze();
            let ctx = RenderContext {
                path,
                sources: &sources,
            };
            if flags.json {
                outln!("{}", render_json(&diags, Some(&ctx)));
            } else {
                outp!("{}", render_text(&diags, Some(&ctx)));
            }
            let deny = if flags.deny_warnings {
                Severity::Warning
            } else {
                Severity::Error
            };
            Ok(verdict(!any_denied(&diags, deny)))
        }
        "classify" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            let class = bundle.setting.classification();
            outln!("{}", bundle.summary());
            outln!("data exchange (Σts = ∅):        {}", class.is_data_exchange);
            outln!(
                "target constraints present:     {}",
                class.has_target_constraints
            );
            outln!(
                "target tgds weakly acyclic:     {}",
                class.target_tgds_weakly_acyclic
            );
            outln!("C_tract condition 1:            {}", class.ctract.holds1());
            outln!(
                "C_tract condition 2.1:          {}",
                class.ctract.holds2_1()
            );
            outln!(
                "C_tract condition 2.2:          {}",
                class.ctract.holds2_2()
            );
            outln!(
                "Σts all LAV (Cor. 2):           {}",
                class.ctract.ts_all_lav
            );
            outln!(
                "Σst all full (Cor. 1):          {}",
                class.ctract.st_all_full
            );
            outln!(
                "in C_tract:                     {}",
                class.ctract.in_ctract()
            );
            outln!("polynomial algorithm applies:   {}", class.tractable());
            for v in class.ctract.violations() {
                outln!("  violation: {v}");
            }
            Ok(Verdict::Yes)
        }
        "plan" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            if let Some(cert_path) = &flags.check_path {
                let cert_path = cert_path
                    .as_ref()
                    .ok_or("plan --check expects a certificate path")?;
                let src =
                    std::fs::read_to_string(cert_path).map_err(|e| format!("{cert_path}: {e}"))?;
                let cert = Certificate::from_json(&src).map_err(|e| format!("{cert_path}: {e}"))?;
                return match verify_certificate(&bundle.setting, &cert) {
                    Ok(()) => {
                        outln!(
                            "certificate OK: regime {}, solver {}",
                            cert.regime,
                            cert.recommended_solver
                        );
                        Ok(Verdict::Yes)
                    }
                    Err(e) => {
                        outln!("certificate REJECTED: {e}");
                        Ok(Verdict::No)
                    }
                };
            }
            let adom = bundle.input.active_domain().len();
            let cert = plan_setting(&bundle.setting, adom);
            if flags.json {
                outln!("{}", cert.to_json());
            } else {
                outln!("{}", bundle.summary());
                outp!("{}", render_certificate_text(&cert));
            }
            Ok(Verdict::Yes)
        }
        "terminate" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            if let Some(Some(cert_path)) = &flags.check_path {
                // Verify a *saved* termination certificate against this
                // bundle with the independent checker. Any mismatch is an
                // input error (exit 2): the certificate is stale or
                // tampered with.
                let src =
                    std::fs::read_to_string(cert_path).map_err(|e| format!("{cert_path}: {e}"))?;
                let cert = TerminationCertificate::from_json(&src)
                    .map_err(|e| format!("{cert_path}: {e}"))?;
                verify_termination(&bundle.setting, &cert)
                    .map_err(|e| format!("termination certificate REJECTED: {e}"))?;
                match cert.criterion {
                    Some(c) => outln!("termination certificate OK: certified by {c}"),
                    None => {
                        outln!("termination certificate OK: uncertified (every criterion fails)");
                    }
                }
                return Ok(Verdict::Yes);
            }
            let adom = bundle.input.active_domain().len();
            let tc = analyze_termination(&bundle.setting, adom);
            if flags.check_path.is_some() {
                // `--check` without a path: re-verify the fresh derivation
                // with the independent checker (the CI smoke path).
                verify_termination(&bundle.setting, &tc)
                    .map_err(|e| format!("termination self-check REJECTED: {e}"))?;
            }
            if let Some(emit_path) = &flags.emit_path {
                std::fs::write(emit_path, tc.to_json()).map_err(|e| format!("{emit_path}: {e}"))?;
            }
            if flags.json {
                outln!(
                    "{{\"v\":{},\"kind\":\"pde-terminate-report\",\"termination\":{}}}",
                    pde_analysis::TERMINATION_VERSION,
                    tc.to_json(),
                );
            } else {
                outln!("{}", bundle.summary());
                if flags.check_path.is_some() {
                    outln!("termination certificate OK (independently re-verified)");
                }
                outp!("{}", render_termination_text(&tc));
            }
            if flags.check_path.is_some() {
                // The check passed; certification status is informational.
                return Ok(Verdict::Yes);
            }
            Ok(verdict(tc.certified()))
        }
        "optimize" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            if let Some(Some(cert_path)) = &flags.check_path {
                // Verify a *saved* certificate against this bundle with the
                // independent checker. Any mismatch is an input error
                // (exit 2): the certificate is stale or tampered with.
                let src =
                    std::fs::read_to_string(cert_path).map_err(|e| format!("{cert_path}: {e}"))?;
                let cert =
                    RewriteCertificate::from_json(&src).map_err(|e| format!("{cert_path}: {e}"))?;
                verify_rewrite(&bundle.setting, &bundle.input, &cert)
                    .map_err(|e| format!("rewrite certificate REJECTED: {e}"))?;
                outln!(
                    "rewrite certificate OK: {} action(s), {} -> {} dependencies",
                    cert.actions.len(),
                    cert.before.total(),
                    cert.after.total()
                );
                return Ok(Verdict::Yes);
            }
            let out = optimize_setting(&bundle.setting, &bundle.input);
            if flags.check_path.is_some() {
                // `--check` without a path: re-verify the fresh derivation
                // with the independent checker (the CI smoke path).
                verify_rewrite(&bundle.setting, &bundle.input, &out.certificate)
                    .map_err(|e| format!("rewrite self-check REJECTED: {e}"))?;
            }
            if let Some(emit_path) = &flags.emit_path {
                std::fs::write(emit_path, out.certificate.to_json())
                    .map_err(|e| format!("{emit_path}: {e}"))?;
            }
            let schedule = forward_schedule(&out.optimized);
            if flags.json {
                outln!(
                    "{{\"v\":{},\"kind\":\"pde-optimize-report\",\"certificate\":{},\"schedule\":{}}}",
                    pde_analysis::REWRITE_VERSION,
                    out.certificate.to_json(),
                    schedule_json(&schedule),
                );
                return Ok(Verdict::Yes);
            }
            let c = &out.certificate;
            outln!("{}", bundle.summary());
            if flags.check_path.is_some() {
                outln!("rewrite certificate OK (independently re-verified)");
            }
            outln!(
                "dependencies: {} -> {} ({} removed)",
                c.before.total(),
                c.after.total(),
                c.actions.len()
            );
            for a in &c.actions {
                outln!("  {}", describe_action(a));
            }
            if !c.dead_relations.is_empty() {
                outln!("unpopulatable relations: {}", c.dead_relations.join(", "));
            }
            // Forward dependency indices: the optimized setting's Σst tgds
            // first, then its Σt dependencies (Σts does not chase).
            let nst = out.optimized.sigma_st().len();
            let label = |i: usize| {
                if i < nst {
                    format!("st#{i}")
                } else {
                    format!("t#{}", i - nst)
                }
            };
            outln!("chase strata: {}", schedule.strata.len());
            for (k, stratum) in schedule.strata.iter().enumerate() {
                let names: Vec<String> = stratum.iter().map(|&i| label(i)).collect();
                outln!("  stratum {k}: {}", names.join(" "));
            }
            Ok(Verdict::Yes)
        }
        "solve" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            auto_lint(&bundle, flags);
            let opt = resolve_optimize(&bundle, flags)?;
            let setting = opt.as_ref().map_or(&bundle.setting, |o| &o.optimized);
            let (plan, cert) = resolve_plan(setting, &bundle.input, flags)?;
            let governor = resolve_governor(&cert, flags);
            let schedule = opt.as_ref().map(|_| forward_schedule(setting));
            let report = decide_governed_scheduled(
                setting,
                &bundle.input,
                &plan,
                schedule.as_ref(),
                &governor,
            )
            .map_err(|e| e.to_string())?;
            if flags.json {
                let opt_info = match (&opt, &schedule) {
                    (Some(o), Some(s)) => Some((&o.certificate, s)),
                    _ => None,
                };
                outln!("{}", render_solve_json(&report, &cert, opt_info, hist));
                return Ok(match report.exists {
                    Some(true) => Verdict::Yes,
                    Some(false) => Verdict::No,
                    None => Verdict::Undecided,
                });
            }
            outln!("{}", bundle.summary());
            outln!("solver:   {}", report.kind);
            outln!("elapsed:  {:?}", report.elapsed);
            if flags.stats {
                outln!("engine:   {:?}", pde_chase::default_chase_engine());
                match &opt {
                    Some(o) => {
                        outln!(
                            "dependencies:            {} -> {} ({} removed)",
                            o.certificate.before.total(),
                            o.certificate.after.total(),
                            o.certificate.actions.len()
                        );
                    }
                    None => outln!("dependencies:            not optimized"),
                }
                if let Some(s) = &schedule {
                    outln!("chase strata:            {}", s.strata.len());
                }
                if let Some(s) = report.chase_stats {
                    outln!("chase rounds:            {}", s.rounds);
                    outln!("triggers fired:          {}", s.triggers_fired);
                    outln!("triggers satisfied:      {}", s.triggers_satisfied);
                    outln!("skipped by delta:        {}", s.skipped_by_delta);
                    outln!("egd merges:              {}", s.egd_merges);
                }
                if let Some(s) = report.search {
                    outln!("search branches:         {}", s.branches);
                    outln!("candidates checked:      {}", s.candidates_checked);
                    outln!("branches pruned:         {}", s.prunes);
                }
                let g = &report.governor;
                outln!("engine fallback:         {}", report.engine_fallback);
                outln!("governor checks:         {}", g.checks);
                outln!("governor stops:          {}", g.stops);
                outln!("peak instance bytes:     {}", g.peak_bytes);
                outln!("cancellations observed:  {}", g.cancellations_observed);
                match g.deadline_remaining {
                    Some(d) => outln!("deadline remaining:      {d:?}"),
                    None => outln!("deadline remaining:      n/a (no deadline)"),
                }
                if g.faults_fired > 0 {
                    outln!("injected faults fired:   {}", g.faults_fired);
                }
            }
            match report.exists {
                Some(true) => {
                    outln!("result:   solution exists");
                    if let Some(w) = report.witness {
                        outln!("witness target facts:");
                        for (rel, t) in w.facts_of(Peer::Target) {
                            outln!("  {}{}", bundle.setting.schema().name(rel), t);
                        }
                    }
                    Ok(Verdict::Yes)
                }
                Some(false) => {
                    outln!("result:   no solution");
                    // For the tractable path, explain the failure.
                    if report.kind == pde_core::SolverKind::Tractable {
                        if let Ok(out) = pde_core::exists_solution(&bundle.setting, &bundle.input) {
                            if let Some(demand) = out.unsatisfiable_demand {
                                outln!("unsatisfiable source demand:");
                                for (rel, t) in demand {
                                    outln!(
                                        "  {}{}  (nulls match any value)",
                                        bundle.setting.schema().name(rel),
                                        t
                                    );
                                }
                            }
                        }
                    }
                    Ok(Verdict::No)
                }
                None => {
                    match report.undecided {
                        Some(reason) => outln!("result:   undecided ({reason})"),
                        None => outln!("result:   undecided (search budget exhausted)"),
                    }
                    Ok(Verdict::Undecided)
                }
            }
        }
        "certain" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            auto_lint(&bundle, flags);
            let opt = resolve_optimize(&bundle, flags)?;
            let setting = opt.as_ref().map_or(&bundle.setting, |o| &o.optimized);
            let qsrc = args.get(2).ok_or("missing query")?;
            let q: UnionQuery = parse_query(bundle.setting.schema(), qsrc)
                .map_err(|e| e.to_string())?
                .into();
            let limits = resolve_plan(setting, &bundle.input, flags)?.0.limits;
            let out =
                certain_answers(setting, &bundle.input, &q, limits).map_err(|e| e.to_string())?;
            if !out.solution_exists {
                outln!("no solutions: every tuple is vacuously certain");
                return Ok(Verdict::Yes);
            }
            outln!(
                "solutions examined: {}; certain answers: {}",
                out.solutions_examined,
                out.answers.len()
            );
            if q.is_boolean() {
                outln!("certain = {}", out.certain_bool());
                return Ok(verdict(out.certain_bool()));
            }
            for t in &out.answers {
                let row: Vec<String> = t.iter().map(std::string::ToString::to_string).collect();
                outln!("  ({})", row.join(", "));
            }
            Ok(Verdict::Yes)
        }
        "chase" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            let schema = bundle.setting.schema();
            let gen = pde_chase::null_gen_for(&bundle.input);
            let st = chase_tgds(bundle.input.clone(), bundle.setting.sigma_st(), &gen);
            if !st.is_success() {
                return Err("Σst chase did not terminate".into());
            }
            outln!("J_can (after Σst chase, {} steps):", st.steps);
            for (rel, t) in st.instance.facts_of(Peer::Target) {
                outln!("  {}{}", schema.name(rel), t);
            }
            let jcan = st.instance.restrict(Peer::Target);
            let ts = chase_tgds(jcan, bundle.setting.sigma_ts(), &gen);
            if !ts.is_success() {
                return Err("Σts chase did not terminate".into());
            }
            outln!("I_can (after Σts chase, {} steps):", ts.steps);
            for (rel, t) in ts.instance.facts_of(Peer::Source) {
                outln!("  {}{}", schema.name(rel), t);
            }
            let ican = ts.instance.restrict(Peer::Source);
            let blocks = pde_core::blocks::blocks(&ican);
            outln!(
                "I_can blocks: {} (max nulls per block: {})",
                blocks.len(),
                blocks.iter().map(|b| b.nulls.len()).max().unwrap_or(0)
            );
            Ok(Verdict::Yes)
        }
        "check" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            let cand_path = args.get(2).ok_or("missing candidate path")?;
            let cand_src =
                std::fs::read_to_string(cand_path).map_err(|e| format!("{cand_path}: {e}"))?;
            let cand = parse_instance(bundle.setting.schema(), &cand_src)
                .map_err(|e| format!("{cand_path}: {e}"))?;
            // Candidates are target-only files; graft the source part on.
            let combined = bundle.input.restrict(Peer::Source).union(&cand);
            match check_solution(&bundle.setting, &bundle.input, &combined) {
                Ok(()) => {
                    outln!("candidate IS a solution");
                    Ok(Verdict::Yes)
                }
                Err(v) => {
                    outln!("candidate is NOT a solution: {v}");
                    Ok(Verdict::No)
                }
            }
        }
        "enumerate" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            auto_lint(&bundle, flags);
            let opt = resolve_optimize(&bundle, flags)?;
            let setting = opt.as_ref().map_or(&bundle.setting, |o| &o.optimized);
            let limit: usize = match args.get(2) {
                Some(s) => s.parse().map_err(|_| format!("bad limit '{s}'"))?,
                None => 20,
            };
            let mut limits = GenericLimits::default();
            if let Some(n) = flags.max_steps {
                limits.max_nodes = n;
            }
            if let Some(n) = flags.max_branches {
                limits.max_branches = n;
            }
            let fam = pde_core::enumerate_solutions(
                setting,
                &bundle.input,
                pde_core::EnumerateOptions {
                    max_solutions: limit,
                    core: true,
                    limits,
                },
            )
            .map_err(|e| e.to_string())?;
            outln!(
                "{} distinct solution(s){}:",
                fam.solutions.len(),
                if fam.exhaustive { "" } else { " (truncated)" }
            );
            for (i, sol) in fam.solutions.iter().enumerate() {
                outln!("--- solution {i} ---");
                for (rel, t) in sol.facts_of(Peer::Target) {
                    outln!("  {}{}", bundle.setting.schema().name(rel), t);
                }
            }
            Ok(verdict(!fam.solutions.is_empty()))
        }
        "shrink" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            let cand_path = args.get(2).ok_or("missing candidate path")?;
            let cand_src =
                std::fs::read_to_string(cand_path).map_err(|e| format!("{cand_path}: {e}"))?;
            let cand = parse_instance(bundle.setting.schema(), &cand_src)
                .map_err(|e| format!("{cand_path}: {e}"))?;
            let combined = bundle.input.restrict(Peer::Source).union(&cand);
            let small = pde_core::shrink_solution(&bundle.setting, &bundle.input, &combined)
                .map_err(|e| e.to_string())?;
            outln!(
                "shrunk {} target facts to {}:",
                combined.fact_count_of(Peer::Target),
                small.fact_count_of(Peer::Target)
            );
            for (rel, t) in small.facts_of(Peer::Target) {
                outln!("  {}{}", bundle.setting.schema().name(rel), t);
            }
            Ok(Verdict::Yes)
        }
        "format" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            outp!("{}", bundle.render());
            Ok(Verdict::Yes)
        }
        "serve" => {
            let bundle = load_bundle(args.get(1).ok_or("missing bundle path")?)?;
            let store_dir = args
                .get(2)
                .ok_or("missing store directory (pde serve <bundle.pde> <store-dir>)")?
                .clone();
            let options = ServeOptions {
                store_dir,
                timeout: flags.timeout,
                memory_limit: flags.memory_limit,
                stats: flags.stats,
                access_log: flags.access_log.clone(),
                trace_sample: flags.trace_sample.unwrap_or(0),
            };
            serve(
                &bundle,
                &options,
                std::io::stdin().lock(),
                std::io::stdout().lock(),
            )?;
            Ok(Verdict::Yes)
        }
        other => Err(format!("unknown command '{other}'")),
    }
}
