//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors a minimal, API-compatible subset of `rand` 0.8:
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges,
//! and [`Rng::gen_bool`], backed by the SplitMix64 generator. Workload
//! generators only need deterministic, well-mixed streams — not
//! cryptographic quality — and SplitMix64 passes BigCrush.
//!
//! Sequences differ from upstream `rand` (which uses ChaCha12 for
//! `StdRng`), so seeds produce different workloads than a crates.io build
//! would; every consumer in this workspace treats seeds as opaque, so only
//! determinism matters.

/// A low-level source of 64-bit random words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of seedable generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from uniformly.
pub trait SampleRange<T> {
    /// Draw one sample from `self` using `rng`.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 bits of mantissa gives a uniform float in [0, 1).
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// The standard deterministic generator (SplitMix64 in this stub).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl crate::SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> StdRng {
            StdRng { state }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Alias: the stub's `StdRng` is already small.
    pub type SmallRng = StdRng;
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(0..=4);
            assert!(y <= 4);
            let z: u16 = rng.gen_range(1..=1);
            assert_eq!(z, 1);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads = {heads}");
    }
}
