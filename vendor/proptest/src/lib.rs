//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of proptest 1.x: the
//! [`proptest!`] macro over named strategies, integer-range / tuple /
//! `prop::collection::vec` strategies, `prop_assert!` / `prop_assert_eq!`,
//! and [`config::ProptestConfig::with_cases`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (the hash of the test name), and failing cases are
//! reported but **not shrunk**. Sequences differ from upstream, so a seed
//! reproduces a case only under this stub.

pub mod config {
    //! Run configuration (`cases` only).

    /// How many random cases each property runs.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of cases to generate.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod test_runner {
    //! The per-test random number generator.

    use rand::{RngCore, SeedableRng, StdRng};

    /// Deterministic RNG seeded from the test's name.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seed from an arbitrary name (FNV-1a of the bytes).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;
        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }

    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
}

pub mod collection {
    //! Collection strategies (`vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Inclusive bounds on a generated collection's length.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> SizeRange {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of `element` values with length in `size`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A `Vec` strategy: each case draws a length from `size`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.

    pub use crate::config::ProptestConfig;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest};

    /// Module-style access (`prop::collection::vec`).
    pub mod prop {
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ config = $crate::config::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (config = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::config::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(msg) = outcome {
                    panic!("property {} failed at case {case}: {msg}", stringify!($name));
                }
            }
        }
    )*};
}

/// Like `assert!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Like `assert_eq!`, but fails only the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}
