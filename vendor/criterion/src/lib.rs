//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible subset of criterion 0.5: benchmark
//! groups, `bench_function` / `bench_with_input`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros. Timing is a plain
//! wall-clock median over `sample_size` samples — adequate for the relative
//! comparisons the `EXPERIMENTS.md` harness makes, with none of criterion's
//! statistics, plots, or outlier analysis.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Throughput annotation (recorded, echoed in the report line).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark id: function name plus a parameter rendering.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

/// The per-measurement timer handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    elapsed: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, recording one sample per call over `samples` calls.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warm-up call.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.elapsed.push(start.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.elapsed.is_empty() {
            println!("{label}: no samples");
            return;
        }
        self.elapsed.sort();
        let median = self.elapsed[self.elapsed.len() / 2];
        let best = self.elapsed[0];
        println!(
            "{label}: median {median:?} (best {best:?}, {} samples)",
            self.elapsed.len()
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Record a throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    fn run(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            samples: self.samples,
            elapsed: Vec::new(),
        };
        f(&mut b);
        let label = match self.throughput {
            Some(t) => format!("{}/{id} [{t:?}]", self.name),
            None => format!("{}/{id}", self.name),
        };
        b.report(&label);
    }

    /// Run one benchmark closure under `id`.
    pub fn bench_function(&mut self, id: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id, f);
        self
    }

    /// Run one benchmark closure with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = id.name.clone();
        self.run(&name, |b| f(b, input));
        self
    }

    /// Finish the group (no-op in the stub).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named benchmark group with default settings (10 samples).
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 10,
            throughput: None,
            _criterion: self,
        }
    }
}

/// Collect benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
