//! Theorem 3, live: deciding CLIQUE by deciding the existence of a
//! solution in a fixed peer data exchange setting.
//!
//! ```text
//! cargo run --release --example clique_reduction
//! ```
//!
//! Builds the (corrected) Theorem 3 setting, encodes graphs as source
//! instances, runs the complete solver, cross-checks against a direct
//! clique search, and shows the coNP-hard certain-answer variant with
//! `q = ∃x P(x,x,x,x)`.

use peer_data_exchange::core::assignment;
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::clique::{
    certain_query, clique_instance, clique_instance_elements_from_v, clique_setting,
};
use std::time::Instant;

fn main() {
    let setting = clique_setting();
    println!("Theorem 3 setting:\n{setting:?}");
    let class = setting.classification();
    println!(
        "C_tract: condition1 = {}, condition2.1 = {}, condition2.2 = {} ⇒ in C_tract = {}",
        class.ctract.holds1(),
        class.ctract.holds2_1(),
        class.ctract.holds2_2(),
        class.ctract.in_ctract()
    );
    for v in class.ctract.violations() {
        println!("  violation: {v}");
    }
    println!();

    let cases: Vec<(&str, Graph, u32)> = vec![
        ("K4, k=3", Graph::complete(4), 3),
        ("K4, k=4", Graph::complete(4), 4),
        ("C5, k=3", Graph::cycle(5), 3),
        ("K3,3, k=3", Graph::complete_bipartite(3, 3), 3),
        (
            "planted(8, 0.15, 4), k=4",
            Graph::planted_clique(8, 0.15, 4, 1),
            4,
        ),
        ("G(7, 0.3), k=3", Graph::gnp(7, 0.3, 3), 3),
    ];

    println!(
        "{:<28} {:>8} {:>8} {:>10} {:>12}",
        "graph", "direct", "PDE", "nodes", "time"
    );
    for (label, g, k) in cases {
        let direct = has_k_clique(&g, k);
        let input = clique_instance(&setting, &g, k);
        let t = Instant::now();
        let out = assignment::solve(&setting, &input).expect("solver runs");
        let elapsed = t.elapsed();
        assert_eq!(out.exists, direct, "reduction must agree with the baseline");
        println!(
            "{label:<28} {direct:>8} {:>8} {:>10} {:>12?}",
            out.exists, out.stats.nodes, elapsed
        );
    }

    // The coNP-hard certain-answer variant.
    println!("\ncertain(∃x P(x,x,x,x)) — false iff the graph has a k-clique:");
    for (label, g, k) in [
        ("K3, k=3", Graph::complete(3), 3u32),
        ("P3, k=3", Graph::path(3), 3),
    ] {
        let input = clique_instance_elements_from_v(&setting, &g, k);
        let q = certain_query(&setting);
        let out = certain_answers(&setting, &input, &q, GenericLimits::default())
            .expect("certain answers computable");
        println!(
            "  {label:<12} solutions exist: {:<5} certain(q) = {:<5} (clique: {})",
            out.solution_exists,
            out.certain_bool(),
            has_k_clique(&g, k)
        );
    }
}
