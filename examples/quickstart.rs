//! Quickstart: Example 1 of the paper, end to end.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Walks the three instances of Example 1 through the solver façade,
//! showing the no-solution, unique-solution, and multiple-solution cases,
//! and then asks a certain-answer question about each.

use peer_data_exchange::prelude::*;

fn main() {
    // Σst: 2-paths in E become H-edges. Σts: every H-edge must already be
    // an E-edge. No target constraints.
    let setting = PdeSetting::parse(
        "source E/2; target H/2;",
        "E(x, z), E(z, y) -> H(x, y)",
        "H(x, y) -> E(x, y)",
        "",
    )
    .expect("Example 1 parses");

    println!("Setting (Example 1 of the paper):\n{setting:?}\n");
    let class = setting.classification();
    println!(
        "classification: in C_tract = {} (Σts is LAV: {})\n",
        class.ctract.in_ctract(),
        class.ctract.ts_all_lav
    );

    let cases = [
        ("I = {E(a,b), E(b,c)}, J = ∅", "E(a, b). E(b, c)."),
        ("I = {E(a,a)}, J = ∅", "E(a, a)."),
        (
            "I = {E(a,b), E(b,c), E(a,c)}, J = ∅",
            "E(a, b). E(b, c). E(a, c).",
        ),
    ];

    for (label, src) in cases {
        let input = parse_instance(setting.schema(), src).expect("instance parses");
        let report = decide(&setting, &input).expect("solver runs");
        println!("{label}");
        println!("  solver: {}", report.kind);
        match report.exists {
            Some(true) => {
                let witness = report.witness.expect("witness accompanies yes");
                println!("  solution exists; materialized witness:");
                println!("    {witness:?}");
                assert!(is_solution(&setting, &input, &witness));
            }
            Some(false) => println!("  no solution exists"),
            None => println!("  undecided within limits"),
        }

        // Certain answers of q() :- H(x,y), H(y,z) — the paper's example
        // query.
        let q: UnionQuery = parse_query(setting.schema(), "H(x, y), H(y, z)")
            .expect("query parses")
            .into();
        let certain = certain_answers(&setting, &input, &q, GenericLimits::default())
            .expect("certain answers computable");
        println!(
            "  certain(∃x,y,z H(x,y) ∧ H(y,z)) = {}{}\n",
            certain.certain_bool(),
            if certain.solution_exists {
                ""
            } else {
                "  (vacuously: no solutions)"
            }
        );
    }
}
