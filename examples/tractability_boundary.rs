//! A tour of the §4 tractability frontier.
//!
//! ```text
//! cargo run --release --example tractability_boundary
//! ```
//!
//! Classifies a gallery of settings against `C_tract`, then demonstrates
//! each boundary crossing: the CLIQUE-hard setting (violates 2.1 and 2.2
//! minimally), the single-target-egd and single-full-target-tgd settings
//! (Σst/Σts tractable, Σt breaks it), and the disjunctive Σts setting
//! (3-COLORABILITY).

use peer_data_exchange::core::{assignment, generic};
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::boundary::{
    egd_boundary_instance, egd_boundary_setting, full_tgd_boundary_instance,
    full_tgd_boundary_setting,
};
use peer_data_exchange::workloads::clique::{clique_instance, clique_setting};
use peer_data_exchange::workloads::full::full_setting;
use peer_data_exchange::workloads::lav::lav_setting;
use peer_data_exchange::workloads::paper::marked_example_setting;
use peer_data_exchange::workloads::threecol::{threecol_instance, threecol_problem};

fn classify_row(name: &str, setting: &PdeSetting) {
    let c = setting.classification();
    println!(
        "{name:<26} cond1={:<5} cond2.1={:<5} cond2.2={:<5} Σt={:<5} ⇒ tractable={}",
        c.ctract.holds1(),
        c.ctract.holds2_1(),
        c.ctract.holds2_2(),
        c.has_target_constraints,
        c.tractable()
    );
}

fn main() {
    println!("== Classification gallery (Def. 9) ==");
    classify_row(
        "Example 1 (LAV Σts)",
        &peer_data_exchange::workloads::paper::example1_setting(),
    );
    classify_row("marked-variable example", &marked_example_setting());
    classify_row("LAV workload", &lav_setting());
    classify_row("full-Σst workload", &full_setting());
    classify_row("Theorem 3 (CLIQUE)", &clique_setting());
    classify_row("boundary: target egd", &egd_boundary_setting());
    classify_row("boundary: full target tgd", &full_tgd_boundary_setting());

    println!("\n== Crossing 1: the Theorem 3 setting is NP-hard ==");
    let p = clique_setting();
    for v in p.classification().ctract.violations() {
        println!("  {v}");
    }
    let tri = clique_instance(&p, &Graph::complete(3), 3);
    let path = clique_instance(&p, &Graph::path(3), 3);
    println!(
        "  K3/k=3 → {}   P3/k=3 → {}",
        assignment::solve(&p, &tri).unwrap().exists,
        assignment::solve(&p, &path).unwrap().exists
    );

    println!("\n== Crossing 2: one target egd is enough ==");
    let p = egd_boundary_setting();
    println!(
        "  Σst/Σts in C_tract: {} — but Σt has egds",
        p.classification().ctract.in_ctract()
    );
    let tri = egd_boundary_instance(&p, &Graph::complete(3), 3);
    let path = egd_boundary_instance(&p, &Graph::path(3), 3);
    let lim = GenericLimits::default();
    println!(
        "  K3/k=3 → {:?}   P3/k=3 → {:?}",
        generic::solve(&p, &tri, lim).unwrap().decided(),
        generic::solve(&p, &path, lim).unwrap().decided()
    );

    println!("\n== Crossing 3: one full target tgd is enough ==");
    let p = full_tgd_boundary_setting();
    let tri = full_tgd_boundary_instance(&p, &Graph::complete(3), 3);
    let path = full_tgd_boundary_instance(&p, &Graph::path(3), 3);
    println!(
        "  K3/k=3 → {:?}   P3/k=3 → {:?}",
        generic::solve(&p, &tri, lim).unwrap().decided(),
        generic::solve(&p, &path, lim).unwrap().decided()
    );

    println!("\n== Crossing 4: disjunction in Σts (3-COLORABILITY) ==");
    let p3 = threecol_problem();
    for (label, g) in [
        ("C5 (odd cycle)", Graph::cycle(5)),
        ("K4", Graph::complete(4)),
        ("Petersen-ish G(8,0.35)", Graph::gnp(8, 0.35, 4)),
    ] {
        let input = threecol_instance(&p3, &g);
        let out = assignment::solve_disjunctive(&p3, &input).unwrap();
        println!(
            "  {label:<24} 3-colorable: {:<5} PDE solution: {}",
            is_three_colorable(&g),
            out.exists
        );
        assert_eq!(out.exists, is_three_colorable(&g));
    }
}
