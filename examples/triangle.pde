# Example 1 of the paper on a triangle: the source offers 2-paths as
# H-edges, the target only accepts H-edges that are real E-edges.
# `pde solve` finds the solution {H(a, c)}; `pde lint` reports it clean.

%schema
source E/2; target H/2

%st
E(x, z), E(z, y) -> H(x, y)

%ts
H(x, y) -> E(x, y)

%instance
E(a, b). E(b, c). E(a, c).
