# Not weakly acyclic, but jointly acyclic: the C-generator's existential
# z spirals back into A via `C(_x, y) -> A(y)` — a special cycle through
# C.1 in the position graph — yet no tgd consumes a null at *every*
# premise position of a frontier variable, so the existential-variable
# dependency graph is acyclic and the chase terminates.
# `pde terminate` certifies joint-acyclicity; `pde lint` reports PDE050
# (a note); `pde solve --governed` gets finite derived budgets and exits 0.

%schema
source SA/1; source SB/1; target A/1; target B/1; target C/2

%st
SA(x) -> A(x)
SB(x) -> B(x)

%t
A(x), B(x) -> exists z . C(x, z)
C(_x, y) -> A(y)

%instance
SA(a). SB(a). SB(b).
