# Terminating, but certified only by the critical-instance check: the
# swap rule `R(x, y) -> R(y, x)` makes super-weak acyclicity's pooled
# emission over-approximation believe the diagonal `R(w, w)` can receive
# a tainted null, so weak, joint, and super-weak acyclicity all fail.
# The concrete chase of the all-`*` critical instance saturates — no null
# ever lands on the diagonal — so the MFA-style check certifies
# termination with a bound derived from the saturated chase log.
# `pde lint` reports PDE051 (a warning: the bound may be loose).

%schema
source S/1; target A/1; target R/2

%st
S(x) -> A(x)

%ts
A(x) -> S(x)

%t
A(x) -> exists y . R(x, y)
R(x, y) -> R(y, x)
R(w, w) -> A(w)

%instance
S(a).
