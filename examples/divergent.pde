%schema
source S/2; source C/2; target T/2; target D/2
%st
S(x, y) -> T(x, y)
C(x, y) -> D(x, y)
%t
T(x, y), T(y, z) -> T(x, z)
T(x, y), T(y, x) -> x = y
T(x, x), D(u, v) -> u = v
T(x, y) -> exists z . T(y, z)
%instance
S(a, b). C(p, q).
