//! Exploring the solution space: enumeration, cores, and certain answers
//! as the intersection over the minimal family.
//!
//! ```text
//! cargo run --example solution_space
//! ```
//!
//! Uses the paper's §4 marked-variable setting, whose chase nulls give the
//! input a genuinely branching solution space, then verifies by hand the
//! identity `certain(q) = ⋂ q(solution)` over the enumerated family.

use peer_data_exchange::core::enumerate::{enumerate_solutions, EnumerateOptions};
use peer_data_exchange::core::solution::core_solution;
use peer_data_exchange::prelude::*;
use std::collections::BTreeSet;

fn main() {
    // Σst: S(x1, x2) → ∃y T(x1, y); Σts: T(x1, x2) → ∃w S(w, x2).
    let setting = PdeSetting::parse(
        "source S/2; target T/2;",
        "S(x1, x2) -> exists y . T(x1, y)",
        "T(x1, x2) -> exists w . S(w, x2)",
        "",
    )
    .expect("setting parses");
    println!("Setting (the §4 marked-variable example):\n{setting:?}\n");

    // Two source rows with two distinct second-column values: each chase
    // null independently picks between them.
    let input = parse_instance(setting.schema(), "S(a, b). S(a, c). S(d, b).").unwrap();
    println!("Input: {input:?}\n");

    let family = enumerate_solutions(&setting, &input, EnumerateOptions::default())
        .expect("enumeration runs");
    println!(
        "minimal solution family: {} distinct solutions (exhaustive: {})",
        family.solutions.len(),
        family.exhaustive
    );
    for (i, s) in family.solutions.iter().enumerate() {
        assert!(is_solution(&setting, &input, s));
        println!("  #{i}: {s:?}");
    }

    // Cores: each family member shrinks to its minimal retract, which is
    // still a solution for Σt = ∅ settings.
    println!("\ncores of the family members:");
    for (i, s) in family.solutions.iter().enumerate() {
        let c = core_solution(&setting, &input, s).expect("no target tgds");
        println!(
            "  #{i}: {} facts → {} facts{}",
            s.fact_count(),
            c.fact_count(),
            if c.fact_count() < s.fact_count() {
                "  (shrank)"
            } else {
                ""
            }
        );
    }

    // Certain answers two ways: the library call, and the literal
    // intersection over the enumerated family.
    let q: UnionQuery = parse_query(setting.schema(), "q(x, y) :- T(x, y)")
        .unwrap()
        .into();
    let certain = certain_answers(&setting, &input, &q, GenericLimits::default())
        .expect("certain answers computable");
    let by_hand: BTreeSet<Vec<Value>> = family
        .solutions
        .iter()
        .map(|s| {
            q.eval(s)
                .into_iter()
                .filter(|t| t.iter().all(Value::is_const))
                .collect::<BTreeSet<_>>()
        })
        .reduce(|a, b| a.intersection(&b).cloned().collect())
        .unwrap_or_default();
    println!("\ncertain answers of q(x, y) :- T(x, y):");
    for t in &certain.answers {
        println!("  {t:?}");
    }
    assert_eq!(certain.answers, by_hand, "library == hand intersection");
    println!("matches the hand-computed intersection over the family ✓");
}
