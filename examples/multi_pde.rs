//! Multi-PDE: several authoritative sources feeding one target peer,
//! simulated by a single PDE setting (paper §2).
//!
//! ```text
//! cargo run --example multi_pde
//! ```
//!
//! Two source peers — a course catalog and an HR system — feed a
//! university directory. Each peer has its own Σst/Σts; the union
//! construction turns the family into one setting with the same solution
//! space, which the ordinary solvers then handle.

use peer_data_exchange::core::multi::{MultiPdeSetting, PeerConstraints};
use peer_data_exchange::core::tractable;
use peer_data_exchange::prelude::*;
use std::sync::Arc;

fn main() {
    let schema = Arc::new(
        parse_schema(
            "source course/2; source lecturer/2; \
             source employee/2; source dept/2; \
             target person/2; target teaches/2;",
        )
        .expect("schema parses"),
    );

    // Peer 1: the course catalog contributes teaching facts; it only
    // allows teaches-records it can back, and persons sourced from its
    // lecturer list.
    let catalog = PeerConstraints {
        name: "catalog".into(),
        sigma_st: parse_tgds(
            &schema,
            "lecturer(p, c) -> teaches(p, c); lecturer(p, c), course(c, d) -> person(p, d)",
        )
        .expect("catalog Σst parses"),
        sigma_ts: parse_tgds(&schema, "teaches(p, c) -> lecturer(p, c)")
            .expect("catalog Σts parses"),
        sigma_t: vec![],
    };

    // Peer 2: HR contributes people; every directory person must be an
    // employee of some department HR knows.
    let hr = PeerConstraints {
        name: "hr".into(),
        sigma_st: parse_tgds(&schema, "employee(p, d) -> person(p, d)").expect("hr Σst parses"),
        sigma_ts: parse_tgds(&schema, "person(p, d) -> exists q . dept(d, q)")
            .expect("hr Σts parses"),
        sigma_t: vec![],
    };

    let multi =
        MultiPdeSetting::new(schema.clone(), vec![catalog, hr]).expect("multi setting validates");
    let single = multi.to_single();
    println!("Union setting:\n{single:?}\n");
    println!(
        "union is tractable (LAV + existential-LAV Σts): {}\n",
        single.classification().tractable()
    );

    // A consistent input: lecturers are employees, departments exist.
    let input = parse_instance(
        &schema,
        "course(db101, cs). lecturer(ada, db101).
         employee(ada, cs). employee(bob, math).
         dept(cs, hq1). dept(math, hq2).",
    )
    .expect("instance parses");

    let out = tractable::exists_solution(&single, &input).expect("tractable path applies");
    println!("consistent input: solution exists = {}", out.exists);
    let witness = out.witness.expect("witness materialized");
    println!("  directory after exchange: {witness:?}");

    // The multi-PDE definition agrees: the witness is a solution for every
    // peer separately.
    multi
        .check_multi_solution(&input, &witness)
        .expect("solution for every peer");
    println!("  verified against each peer's constraints separately ✓");

    // Break peer hr's Σts: a person lands in a department HR has no record
    // of (catalog says ada teaches in 'physics', HR has no physics dept).
    let broken = parse_instance(
        &schema,
        "course(db101, physics). lecturer(ada, db101).
         dept(cs, hq1).",
    )
    .expect("instance parses");
    let out = tractable::exists_solution(&single, &broken).expect("tractable path applies");
    println!(
        "\nbroken input (unknown department): solution exists = {}",
        out.exists
    );
    assert!(!out.exists);
}
