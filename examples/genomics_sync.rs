//! The paper's §1 motivating scenario: syncing a university protein
//! database from an authoritative Swiss-Prot-style source.
//!
//! ```text
//! cargo run --example genomics_sync
//! ```
//!
//! The university (target) accepts new proteins and annotations from the
//! authority (source) but cannot write back; its target-to-source
//! constraints insist that everything it stores is traceable to the
//! source. All Σts constraints are LAV, so sync rounds run through the
//! polynomial `ExistsSolution` algorithm. A "rogue" local record —
//! something the authority does not back — makes a round unsolvable, and
//! the example shows how the violation is detected and explained.

use peer_data_exchange::core::solution::check_solution;
use peer_data_exchange::core::tractable;
use peer_data_exchange::prelude::*;
use peer_data_exchange::workloads::genomics::{
    genomics_instance, genomics_setting, GenomicsParams,
};

fn main() {
    let setting = genomics_setting();
    println!("Genomics sync setting:\n{setting:?}\n");
    println!(
        "in C_tract (LAV Σts): {}\n",
        setting.classification().ctract.ts_all_lav
    );

    // A clean sync round: 200 proteins, ~3 annotations each, 20 records
    // already ingested by the university.
    let clean = GenomicsParams {
        proteins: 200,
        annotations_per_protein: 3,
        organisms: 8,
        go_terms: 120,
        preloaded: 20,
        rogue: 0,
        seed: 7,
    };
    let input = genomics_instance(&setting, &clean);
    println!(
        "clean round: |I| = {} source facts, |J| = {} target facts",
        input.fact_count_of(Peer::Source),
        input.fact_count_of(Peer::Target),
    );
    let out = tractable::exists_solution(&setting, &input).expect("tractable path applies");
    assert!(out.exists);
    let witness = out.witness.expect("witness materialized");
    println!(
        "  synced: target now holds {} facts (chase steps: {}, blocks checked: {})",
        witness.fact_count_of(Peer::Target),
        out.stats.chase_steps,
        out.stats.block_count,
    );
    assert!(is_solution(&setting, &input, &witness));

    // A round poisoned by one rogue university record.
    let poisoned = GenomicsParams { rogue: 1, ..clean };
    let bad_input = genomics_instance(&setting, &poisoned);
    let out = tractable::exists_solution(&setting, &bad_input).expect("tractable path applies");
    println!(
        "\npoisoned round (1 rogue u_protein fact): exists = {}",
        out.exists
    );
    assert!(!out.exists);

    // Explain: the rogue fact itself violates Σts (its accession has no
    // source backing), which the solution checker pinpoints.
    let verdict = check_solution(&setting, &bad_input, &bad_input);
    println!("  diagnosis on the unmodified input: {verdict:?}");

    // Certain answers survive across all possible syncs: annotations the
    // source forces are certain, no matter which solution the university
    // materializes.
    let q: UnionQuery = parse_query(setting.schema(), "q(a, g) :- u_annotation(a, g)")
        .expect("query parses")
        .into();
    let certain = certain_answers(&setting, &input, &q, GenericLimits::default())
        .expect("certain answers computable");
    println!(
        "\ncertain annotations after any valid sync: {} tuples",
        certain.answers.len()
    );
}
