//! Span records and their JSON form.

use std::fmt::Write as _;

/// A structured field value attached to a span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FieldValue {
    /// An unsigned counter-like value (indices, sizes, rounds).
    U64(u64),
    /// A short string (solver kinds, engine names, outcomes).
    Str(String),
}

/// One completed span, as delivered to a [`crate::Sink`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dot-separated phase name (`chase.round`, `block.hom_search`, …).
    pub name: &'static str,
    /// Process-wide monotone sequence number (a stable ordering key for
    /// golden tests once durations are scrubbed).
    pub seq: u64,
    /// Wall-clock duration of the span in nanoseconds.
    pub dur_ns: u64,
    /// Duration minus time spent in same-thread child spans.
    pub self_ns: u64,
    /// Structured fields, in attachment order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl SpanRecord {
    /// Render as a single JSON object (one JSONL line, no trailing
    /// newline). Fields appear under a `"fields"` object in attachment
    /// order, so they can never collide with the fixed keys.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        let _ = write!(
            out,
            "{{\"v\":{},\"span\":{},\"seq\":{},\"dur_ns\":{},\"self_ns\":{},\"fields\":{{",
            crate::REPORT_VERSION,
            json_escape(self.name),
            self.seq,
            self.dur_ns,
            self.self_ns
        );
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:", json_escape(key));
            match value {
                FieldValue::U64(n) => {
                    let _ = write!(out, "{n}");
                }
                FieldValue::Str(s) => out.push_str(&json_escape(s)),
            }
        }
        out.push_str("}}");
        out
    }
}

/// Escape `s` as a JSON string literal (including the quotes).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_record_json_shape() {
        let r = SpanRecord {
            name: "chase.round",
            seq: 4,
            dur_ns: 1200,
            self_ns: 1000,
            fields: vec![
                ("round", FieldValue::U64(2)),
                ("engine", FieldValue::Str("seminaive".into())),
            ],
        };
        assert_eq!(
            r.to_json(),
            "{\"v\":1,\"span\":\"chase.round\",\"seq\":4,\"dur_ns\":1200,\"self_ns\":1000,\
             \"fields\":{\"round\":2,\"engine\":\"seminaive\"}}"
        );
    }

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(json_escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }
}
