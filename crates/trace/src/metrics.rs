//! A registry of named counters and histograms.
//!
//! The registry is the *report layer*: engines keep their own cheap
//! struct-of-counters (`ChaseStats`, search stats, `GovernorReport`) and
//! export into a [`MetricsRegistry`] when a run report is assembled. That
//! keeps this crate a leaf dependency and the hot loops allocation-free.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A power-of-two-bucket histogram of `u64` samples.
///
/// Bucket `i` counts samples `v` with `2^(i-1) < v <= 2^i` (bucket 0
/// counts zeros and ones). 65 buckets cover the full `u64` range.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 || v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// The bucket index a sample falls into: `ceil(log2(v))`, with 0 and
    /// 1 sharing bucket 0.
    fn bucket_of(v: u64) -> usize {
        if v <= 1 {
            0
        } else {
            (64 - (v - 1).leading_zeros()) as usize
        }
    }

    /// Fold another histogram into this one: counts and sums add, the
    /// extrema combine, buckets add pairwise. Used by report assembly to
    /// aggregate per-run histograms (e.g. chase rounds across several
    /// chases of one solve) without re-observing samples.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 || other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// Non-empty buckets as `(upper_bound_exponent, count)` pairs: bucket
    /// `e` holds samples `<= 2^e` (and `> 2^(e-1)` for `e > 0`).
    pub fn nonzero_buckets(&self) -> Vec<(u32, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, c)| **c > 0)
            .map(|(i, c)| (u32::try_from(i).unwrap_or(u32::MAX), *c))
            .collect()
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
            self.count, self.sum, self.min, self.max
        );
        for (i, (e, c)) in self.nonzero_buckets().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{e},{c}]");
        }
        out.push_str("]}");
        out
    }
}

/// Named counters and histograms, keyed by dot-separated metric names
/// (`chase.rounds`, `governor.peak_bytes`, `search.nodes`, …). Keys are
/// `BTreeMap`-ordered, so every rendering is deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `v` to the named counter (creating it at zero).
    pub fn add(&mut self, name: &str, v: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = c.saturating_add(v);
    }

    /// Set the named counter to `v` (for gauges like peak bytes, where
    /// summing across sub-runs would be wrong).
    pub fn set(&mut self, name: &str, v: u64) {
        self.counters.insert(name.to_owned(), v);
    }

    /// Set the named counter to the max of its current value and `v`.
    pub fn set_max(&mut self, name: &str, v: u64) {
        let c = self.counters.entry(name.to_owned()).or_insert(0);
        *c = (*c).max(v);
    }

    /// The named counter's value, if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Record a histogram sample under `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        self.histograms
            .entry(name.to_owned())
            .or_default()
            .record(v);
    }

    /// Fold a whole histogram into the named slot (creating it empty).
    pub fn merge_histogram(&mut self, name: &str, h: &Histogram) {
        self.histograms.entry(name.to_owned()).or_default().merge(h);
    }

    /// Fold another registry into this one: counters add, histograms
    /// merge. Gauges set with [`MetricsRegistry::set`] also add, so only
    /// merge registries with disjoint gauge names (which is how the report
    /// layer uses it: each layer owns its metric prefix).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, v) in other.counters() {
            self.add(name, v);
        }
        for (name, h) in other.histograms() {
            self.merge_histogram(name, h);
        }
    }

    /// The named histogram, if present.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterate counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterate histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render as a JSON object `{"counters":{...},"histograms":{...}}`
    /// with keys in sorted order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", crate::json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", crate::json_escape(name), h.to_json());
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_power_of_two() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1000);
        // 0,1 -> bucket 0; 2 -> bucket 1; 3,4 -> bucket 2; 1000 -> bucket 10.
        assert_eq!(h.nonzero_buckets(), vec![(0, 2), (1, 1), (2, 2), (10, 1)]);
    }

    #[test]
    fn histogram_merge_combines_counts_extrema_and_buckets() {
        let mut a = Histogram::new();
        for v in [1, 8] {
            a.record(v);
        }
        let mut b = Histogram::new();
        for v in [0, 1000] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count, 4);
        assert_eq!(a.sum, 1009);
        assert_eq!(a.min, 0);
        assert_eq!(a.max, 1000);
        assert_eq!(a.nonzero_buckets(), vec![(0, 2), (3, 1), (10, 1)]);
        // Merging an empty histogram changes nothing (not even min).
        let before = a;
        a.merge(&Histogram::new());
        assert_eq!(a, before);
    }

    #[test]
    fn registry_merge_adds_counters_and_merges_histograms() {
        let mut a = MetricsRegistry::new();
        a.add("c.x", 2);
        a.observe("h.y", 10);
        let mut b = MetricsRegistry::new();
        b.add("c.x", 3);
        b.add("c.z", 1);
        b.observe("h.y", 20);
        b.observe("h.w", 5);
        a.merge_from(&b);
        assert_eq!(a.get("c.x"), Some(5));
        assert_eq!(a.get("c.z"), Some(1));
        assert_eq!(a.histogram("h.y").map(|h| h.count), Some(2));
        assert_eq!(a.histogram("h.w").map(|h| h.sum), Some(5));
    }

    #[test]
    fn registry_counters_and_json_are_deterministic() {
        let mut r = MetricsRegistry::new();
        r.add("b.second", 2);
        r.add("a.first", 1);
        r.add("a.first", 4);
        r.set_max("gauge.peak", 10);
        r.set_max("gauge.peak", 7);
        r.observe("hist.x", 3);
        assert_eq!(r.get("a.first"), Some(5));
        assert_eq!(r.get("gauge.peak"), Some(10));
        let json = r.to_json();
        assert!(json.starts_with("{\"counters\":{\"a.first\":5,\"b.second\":2,\"gauge.peak\":10}"));
        assert!(json.contains("\"hist.x\":{\"count\":1,\"sum\":3"));
    }
}
