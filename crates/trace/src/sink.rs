//! Span sinks: no-op, collecting, aggregating, fan-out, histogram, and
//! JSONL streaming.

use crate::metrics::MetricsRegistry;
use crate::record::SpanRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A destination for completed spans. Implementations must be cheap and
/// non-blocking enough to sit inside engine hot loops, and thread-safe:
/// parallel block checks record from worker threads.
pub trait Sink: Send + Sync {
    /// Deliver one completed span.
    fn record(&self, span: &SpanRecord);
}

/// Discards every span. Installing it measures the cost of the recording
/// machinery itself (the `<2%` E16 guard compares against *no* sink, which
/// skips even record construction).
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _span: &SpanRecord) {}
}

/// Buffers spans in memory up to a bound; spans past the bound are counted
/// as dropped rather than grow the buffer without limit (CI runs the whole
/// test suite with this sink installed).
#[derive(Debug)]
pub struct CollectingSink {
    cap: usize,
    spans: Mutex<Vec<SpanRecord>>,
    dropped: AtomicU64,
}

impl CollectingSink {
    /// A sink retaining at most `cap` spans.
    pub fn bounded(cap: usize) -> CollectingSink {
        CollectingSink {
            cap,
            spans: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Take every buffered span, leaving the buffer empty.
    pub fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(
            &mut *self
                .spans
                .lock()
                .expect("collecting sink lock never poisoned"),
        )
    }

    /// Number of buffered spans.
    pub fn len(&self) -> usize {
        self.spans
            .lock()
            .expect("collecting sink lock never poisoned")
            .len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Spans discarded because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for CollectingSink {
    fn record(&self, span: &SpanRecord) {
        let mut spans = self
            .spans
            .lock()
            .expect("collecting sink lock never poisoned");
        if spans.len() < self.cap {
            spans.push(span.clone());
        } else {
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Aggregate totals for one span name, kept by [`ProfileSink`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PhaseAgg {
    /// Spans recorded under this name.
    pub count: u64,
    /// Summed wall-clock duration (nanoseconds).
    pub total_ns: u64,
    /// Summed self time (duration minus same-thread children).
    pub self_ns: u64,
}

/// Aggregates spans per name instead of buffering them, so profiling a
/// multi-million-node search stays O(#distinct span names) in memory.
/// Backs the CLI's `--profile` breakdown table.
#[derive(Debug, Default)]
pub struct ProfileSink {
    agg: Mutex<BTreeMap<&'static str, PhaseAgg>>,
}

impl ProfileSink {
    /// An empty profile.
    pub fn new() -> ProfileSink {
        ProfileSink::default()
    }

    /// Snapshot the per-phase aggregates, sorted by name.
    pub fn snapshot(&self) -> Vec<(&'static str, PhaseAgg)> {
        self.agg
            .lock()
            .expect("profile sink lock never poisoned")
            .iter()
            .map(|(name, agg)| (*name, *agg))
            .collect()
    }

    /// Render the `--profile` table: one row per phase, sorted by self
    /// time descending, with a self-time percentage column over the summed
    /// self time (self times are non-overlapping per thread, so the
    /// percentages describe where the work actually went).
    pub fn render_table(&self) -> String {
        let mut rows = self.snapshot();
        rows.sort_by(|a, b| b.1.self_ns.cmp(&a.1.self_ns).then(a.0.cmp(b.0)));
        let total_self: u64 = rows.iter().map(|(_, a)| a.self_ns).sum();
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>10} {:>12} {:>12} {:>7}",
            "phase", "count", "total ms", "self ms", "self %"
        );
        for (name, agg) in rows {
            let pct = if total_self == 0 {
                0.0
            } else {
                #[allow(clippy::cast_precision_loss)]
                let p = agg.self_ns as f64 * 100.0 / total_self as f64;
                p
            };
            let _ = writeln!(
                out,
                "{:<22} {:>10} {:>12.3} {:>12.3} {:>6.1}%",
                name,
                agg.count,
                agg.total_ns as f64 / 1e6,
                agg.self_ns as f64 / 1e6,
                pct
            );
        }
        out
    }
}

impl Sink for ProfileSink {
    fn record(&self, span: &SpanRecord) {
        let mut agg = self.agg.lock().expect("profile sink lock never poisoned");
        let entry = agg.entry(span.name).or_default();
        entry.count += 1;
        entry.total_ns = entry.total_ns.saturating_add(span.dur_ns);
        entry.self_ns = entry.self_ns.saturating_add(span.self_ns);
    }
}

/// Delivers every span to each of several sinks, so observers compose:
/// a serve session can feed its flight recorder while an operator's
/// `--trace` stream and a per-request sampling collector stay live.
pub struct FanoutSink {
    sinks: Vec<Arc<dyn Sink>>,
}

impl FanoutSink {
    /// A sink broadcasting to `sinks` in order.
    pub fn new(sinks: Vec<Arc<dyn Sink>>) -> FanoutSink {
        FanoutSink { sinks }
    }
}

impl Sink for FanoutSink {
    fn record(&self, span: &SpanRecord) {
        for sink in &self.sinks {
            sink.record(span);
        }
    }
}

/// Aggregates per-phase *self-time distributions*: every span named
/// `<name>` records its `self_ns` into a `phase.<name>.self_ns` histogram.
/// Where [`ProfileSink`] keeps totals, this keeps the shape — the report
/// layer merges the snapshot into the run report so `--stats --format
/// json` carries real latency histograms, not an empty map.
#[derive(Default)]
pub struct HistogramSink {
    reg: Mutex<MetricsRegistry>,
}

impl HistogramSink {
    /// An empty histogram sink.
    pub fn new() -> HistogramSink {
        HistogramSink::default()
    }

    /// A copy of the accumulated registry (histograms only).
    pub fn snapshot(&self) -> MetricsRegistry {
        self.reg
            .lock()
            .expect("histogram sink lock never poisoned")
            .clone()
    }
}

impl Sink for HistogramSink {
    fn record(&self, span: &SpanRecord) {
        let mut reg = self.reg.lock().expect("histogram sink lock never poisoned");
        reg.observe(&format!("phase.{}.self_ns", span.name), span.self_ns);
    }
}

/// Streams one JSON object per span to a file (or `/dev/stdout`).
#[derive(Debug)]
pub struct JsonlSink {
    out: Mutex<std::io::BufWriter<std::fs::File>>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL output file.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink> {
        let file = std::fs::File::create(path)?;
        Ok(JsonlSink {
            out: Mutex::new(std::io::BufWriter::new(file)),
        })
    }

    /// Flush buffered lines to the file. Call before reading the file or
    /// exiting; `Drop` also flushes as a last resort.
    pub fn flush(&self) {
        let _ = self
            .out
            .lock()
            .expect("jsonl sink lock never poisoned")
            .flush();
    }
}

impl Sink for JsonlSink {
    fn record(&self, span: &SpanRecord) {
        let line = span.to_json();
        let mut out = self.out.lock().expect("jsonl sink lock never poisoned");
        // Output errors (full disk, closed pipe) must never take the
        // solver down; the trace is best-effort.
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn rec(name: &'static str, dur_ns: u64, self_ns: u64) -> SpanRecord {
        SpanRecord {
            name,
            seq: 0,
            dur_ns,
            self_ns,
            fields: vec![("k", FieldValue::U64(1))],
        }
    }

    #[test]
    fn collecting_sink_bounds_its_buffer() {
        let s = CollectingSink::bounded(2);
        for _ in 0..5 {
            s.record(&rec("a", 1, 1));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        assert_eq!(s.take().len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn profile_sink_aggregates_and_ranks_by_self_time() {
        let s = ProfileSink::new();
        s.record(&rec("chase.trigger", 100, 90));
        s.record(&rec("chase.trigger", 100, 90));
        s.record(&rec("egd.merge", 50, 50));
        let snap = s.snapshot();
        assert_eq!(snap.len(), 2);
        let trigger = snap
            .iter()
            .find(|(n, _)| *n == "chase.trigger")
            .expect("trigger phase present");
        assert_eq!(trigger.1.count, 2);
        assert_eq!(trigger.1.total_ns, 200);
        assert_eq!(trigger.1.self_ns, 180);
        let table = s.render_table();
        let trigger_line = table
            .lines()
            .position(|l| l.contains("chase.trigger"))
            .expect("trigger row");
        let merge_line = table
            .lines()
            .position(|l| l.contains("egd.merge"))
            .expect("merge row");
        assert!(
            trigger_line < merge_line,
            "rows sorted by self time:\n{table}"
        );
    }

    #[test]
    fn fanout_sink_broadcasts_to_every_sink() {
        let a = Arc::new(CollectingSink::bounded(4));
        let b = Arc::new(CollectingSink::bounded(4));
        let fan = FanoutSink::new(vec![a.clone(), b.clone()]);
        fan.record(&rec("x", 1, 1));
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn histogram_sink_buckets_self_times_per_phase() {
        let s = HistogramSink::new();
        s.record(&rec("chase.round", 100, 90));
        s.record(&rec("chase.round", 100, 3));
        s.record(&rec("egd.merge", 50, 50));
        let snap = s.snapshot();
        let h = snap
            .histogram("phase.chase.round.self_ns")
            .expect("round histogram");
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 93);
        assert_eq!(
            snap.histogram("phase.egd.merge.self_ns").map(|h| h.count),
            Some(1)
        );
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("pde_trace_test_{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).expect("create jsonl file");
        sink.record(&rec("a", 1, 1));
        sink.record(&rec("b", 2, 2));
        sink.flush();
        let text = std::fs::read_to_string(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"v\":1,\"span\":\"a\""));
        assert!(lines.iter().all(|l| l.ends_with('}')));
    }
}
