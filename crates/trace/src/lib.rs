//! Hand-rolled span tracing and metrics for peer data exchange.
//!
//! The paper's algorithms are phase-structured — chase rounds, trigger
//! discovery, egd merging, block decomposition, per-block homomorphism
//! search, solver branching — and this crate gives every phase a *span*:
//! a scoped timer carrying structured fields, delivered to a process-wide
//! [`Sink`]. The crate is dependency-free by construction (the workspace
//! vendors only rand/proptest/criterion), so the whole subsystem is plain
//! `std`.
//!
//! # Design
//!
//! * **Disabled is (nearly) free.** [`span`] first reads one relaxed
//!   atomic; when no sink is installed it returns an inert guard that
//!   carries no allocation and whose `Drop` does nothing. Engines can
//!   therefore instrument their hottest loops unconditionally.
//! * **Sinks are pluggable.** [`NoopSink`] discards, [`CollectingSink`]
//!   buffers records in memory (bounded), [`ProfileSink`] aggregates
//!   per-phase totals for `--profile`, and [`JsonlSink`] streams one JSON
//!   object per span for `--trace <file.jsonl>`.
//! * **Self-time is tracked per thread.** Each thread keeps a stack of
//!   child-duration accumulators, so a span's `self_ns` excludes the time
//!   spent in *same-thread* child spans. Spans opened on worker threads
//!   (e.g. parallel block checks) account their own time on their own
//!   stack; their duration is not subtracted from the spawning span.
//! * **Environment opt-in.** The first trace call runs a one-shot
//!   initializer: `PDE_TRACE=collect` installs a bounded
//!   [`CollectingSink`] (used by CI to run the whole test suite with
//!   recording on), and any other non-empty value is treated as a JSONL
//!   output path. Programmatic [`set_sink`] / [`clear_sink`] always win
//!   over the environment.
//!
//! The span taxonomy, field names, and the versioned JSON report schema
//! are documented in `docs/OBSERVABILITY.md` at the repository root.

pub mod flight;
pub mod metrics;
pub mod record;
pub mod sink;

pub use flight::FlightRecorder;
pub use metrics::{Histogram, MetricsRegistry};
pub use record::{json_escape, FieldValue, SpanRecord};
pub use sink::{
    CollectingSink, FanoutSink, HistogramSink, JsonlSink, NoopSink, PhaseAgg, ProfileSink, Sink,
};

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, RwLock};
use std::time::Instant;

/// Version of the JSONL span format emitted by [`JsonlSink`] and of the
/// machine-readable run report printed by `pde solve --stats --format
/// json`. Bump on any incompatible change to field names or structure.
pub const REPORT_VERSION: u32 = 1;

/// Fast-path gate: `true` iff a sink is installed.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// One-shot `PDE_TRACE` environment initialization.
static ENV_INIT: Once = Once::new();

/// The installed sink. A `RwLock` keeps record-time overhead to a shared
/// read lock; installation is rare.
static SINK: RwLock<Option<Arc<dyn Sink>>> = RwLock::new(None);

/// Monotone sequence number stamped on every span record, giving golden
/// tests a stable ordering key once timestamps are scrubbed.
static SEQ: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Per-thread stack of child-duration accumulators (one slot per open
    /// span on this thread), used to compute self-time.
    static CHILD_NS: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
}

/// Install `sink` as the process-wide span sink and enable tracing.
pub fn set_sink(sink: Arc<dyn Sink>) {
    *SINK.write().expect("trace sink lock never poisoned") = Some(sink);
    // Mark the env var as handled so it cannot later override an explicit
    // installation (or an explicit clear).
    ENV_INIT.call_once(|| {});
    ENABLED.store(true, Ordering::SeqCst);
}

/// Remove the installed sink and disable tracing.
pub fn clear_sink() {
    ENABLED.store(false, Ordering::SeqCst);
    ENV_INIT.call_once(|| {});
    *SINK.write().expect("trace sink lock never poisoned") = None;
}

/// Is a sink currently installed? The first call consults the
/// `PDE_TRACE` environment variable (see the crate docs).
#[inline]
pub fn enabled() -> bool {
    if !ENV_INIT.is_completed() {
        ENV_INIT.call_once(init_from_env);
    }
    ENABLED.load(Ordering::Relaxed)
}

/// A handle to the installed sink, if any. Lets callers *compose* with
/// whatever is already observing (e.g. wrap the operator's `--trace`
/// stream and a session flight recorder in a [`FanoutSink`]) instead of
/// silently replacing it. Triggers the same one-shot environment
/// initialization as [`enabled`].
pub fn current_sink() -> Option<Arc<dyn Sink>> {
    if !enabled() {
        return None;
    }
    SINK.read().expect("trace sink lock never poisoned").clone()
}

/// Lazy `PDE_TRACE` handling: `collect` buffers spans in memory (bounded,
/// for CI soak runs), anything else non-empty names a JSONL output file.
fn init_from_env() {
    let Ok(value) = std::env::var("PDE_TRACE") else {
        return;
    };
    let value = value.trim();
    if value.is_empty() || value == "off" || value == "0" {
        return;
    }
    let sink: Arc<dyn Sink> = if value == "collect" {
        Arc::new(CollectingSink::bounded(1 << 20))
    } else {
        match JsonlSink::create(value) {
            Ok(s) => Arc::new(s),
            // A bad path must not take the process down; tracing simply
            // stays off.
            Err(_) => return,
        }
    };
    *SINK.write().expect("trace sink lock never poisoned") = Some(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Values accepted by [`Span::field`].
pub trait IntoFieldValue {
    /// Convert into the stored field representation.
    fn into_field_value(self) -> FieldValue;
}

impl IntoFieldValue for u64 {
    fn into_field_value(self) -> FieldValue {
        FieldValue::U64(self)
    }
}

impl IntoFieldValue for usize {
    fn into_field_value(self) -> FieldValue {
        FieldValue::U64(u64::try_from(self).unwrap_or(u64::MAX))
    }
}

impl IntoFieldValue for u32 {
    fn into_field_value(self) -> FieldValue {
        FieldValue::U64(u64::from(self))
    }
}

impl IntoFieldValue for &str {
    fn into_field_value(self) -> FieldValue {
        FieldValue::Str(self.to_owned())
    }
}

/// A scoped span: created by [`span`], recorded to the installed sink on
/// drop. When tracing is disabled the guard is inert (no allocation, no
/// work on drop).
#[must_use = "a span measures the scope it is held for"]
pub struct Span {
    inner: Option<Box<SpanInner>>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, FieldValue)>,
}

/// Open a span named `name`. Span names are dot-separated phase
/// identifiers (`chase.round`, `block.hom_search`, …); the full taxonomy
/// lives in `docs/OBSERVABILITY.md`.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { inner: None };
    }
    CHILD_NS.with(|s| s.borrow_mut().push(0));
    Span {
        inner: Some(Box::new(SpanInner {
            name,
            start: Instant::now(),
            fields: Vec::new(),
        })),
    }
}

impl Span {
    /// Attach a structured field. A no-op on an inert span.
    #[inline]
    pub fn field(mut self, key: &'static str, value: impl IntoFieldValue) -> Span {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into_field_value()));
        }
        self
    }

    /// Attach a field after creation (for values only known mid-scope).
    #[inline]
    pub fn record_field(&mut self, key: &'static str, value: impl IntoFieldValue) {
        if let Some(inner) = &mut self.inner {
            inner.fields.push((key, value.into_field_value()));
        }
    }

    /// Is this span actually recording?
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        let dur_ns = u64::try_from(inner.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let child_ns = CHILD_NS.with(|s| {
            let mut stack = s.borrow_mut();
            let child = stack.pop().unwrap_or(0);
            if let Some(parent) = stack.last_mut() {
                *parent = parent.saturating_add(dur_ns);
            }
            child
        });
        let record = SpanRecord {
            name: inner.name,
            seq: SEQ.fetch_add(1, Ordering::Relaxed),
            dur_ns,
            self_ns: dur_ns.saturating_sub(child_ns),
            fields: inner.fields,
        };
        if let Ok(guard) = SINK.read() {
            if let Some(sink) = guard.as_ref() {
                sink.record(&record);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The sink is process-global; tests that install one are serialized.
    static SINK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_are_inert() {
        let _guard = SINK_LOCK.lock().expect("test lock");
        clear_sink();
        let s = span("test.phase").field("k", 1u64);
        assert!(!s.is_recording());
        drop(s);
    }

    #[test]
    fn collecting_sink_receives_fields_in_order() {
        let _guard = SINK_LOCK.lock().expect("test lock");
        let sink = Arc::new(CollectingSink::bounded(16));
        set_sink(sink.clone());
        {
            let _s = span("test.outer").field("dep", 3usize).field("round", 7u64);
        }
        clear_sink();
        let spans = sink.take();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "test.outer");
        assert_eq!(
            spans[0].fields,
            vec![("dep", FieldValue::U64(3)), ("round", FieldValue::U64(7)),]
        );
    }

    #[test]
    fn self_time_excludes_same_thread_children() {
        let _guard = SINK_LOCK.lock().expect("test lock");
        let sink = Arc::new(CollectingSink::bounded(16));
        set_sink(sink.clone());
        {
            let _outer = span("test.parent");
            {
                let _inner = span("test.child");
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
        }
        clear_sink();
        let spans = sink.take();
        assert_eq!(spans.len(), 2);
        let child = spans
            .iter()
            .find(|s| s.name == "test.child")
            .expect("child");
        let parent = spans
            .iter()
            .find(|s| s.name == "test.parent")
            .expect("parent");
        assert!(parent.dur_ns >= child.dur_ns);
        // The parent did nothing but hold the child: its self time is its
        // duration minus the child's (within scheduling noise).
        assert!(parent.self_ns <= parent.dur_ns - child.dur_ns + 1_000_000);
    }

    #[test]
    fn sequence_numbers_strictly_increase() {
        let _guard = SINK_LOCK.lock().expect("test lock");
        let sink = Arc::new(CollectingSink::bounded(16));
        set_sink(sink.clone());
        for _ in 0..3 {
            let _s = span("test.seq");
        }
        clear_sink();
        let spans = sink.take();
        assert!(spans.windows(2).all(|w| w[0].seq < w[1].seq));
    }
}
