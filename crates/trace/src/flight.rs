//! A bounded ring-buffer flight recorder for postmortem dumps.
//!
//! Long-lived sessions (the `pde serve` loop) cannot stream every span to
//! disk, but when something degrades — a panic is isolated, the governor
//! stops a request, recovery rewinds a corrupt journal — the most recent
//! activity is exactly what a postmortem needs. [`FlightRecorder`] keeps
//! two rings: the last K *request records* (opaque JSONL lines noted by
//! the session) and the tail of the span stream (it is a [`Sink`], so it
//! composes with any other observer through
//! [`crate::sink::FanoutSink`]). [`FlightRecorder::dump`] renders both as
//! one JSONL document behind a caller-provided header line.

use crate::record::SpanRecord;
use crate::sink::Sink;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Bounded rings of recent request records and span tails.
pub struct FlightRecorder {
    max_requests: usize,
    max_spans: usize,
    requests: Mutex<VecDeque<String>>,
    spans: Mutex<VecDeque<SpanRecord>>,
    evicted_spans: AtomicU64,
}

impl FlightRecorder {
    /// A recorder holding at most `max_requests` request records and
    /// `max_spans` spans; older entries are evicted first.
    pub fn with_capacity(max_requests: usize, max_spans: usize) -> FlightRecorder {
        FlightRecorder {
            max_requests,
            max_spans,
            requests: Mutex::new(VecDeque::new()),
            spans: Mutex::new(VecDeque::new()),
            evicted_spans: AtomicU64::new(0),
        }
    }

    /// Note one request record (a self-contained JSONL line, stored
    /// verbatim). The oldest record is evicted past the bound.
    pub fn note_line(&self, line: &str) {
        let mut reqs = self
            .requests
            .lock()
            .expect("flight recorder lock never poisoned");
        if reqs.len() == self.max_requests {
            reqs.pop_front();
        }
        reqs.push_back(line.to_owned());
    }

    /// Request records currently held.
    pub fn request_count(&self) -> usize {
        self.requests
            .lock()
            .expect("flight recorder lock never poisoned")
            .len()
    }

    /// Spans currently held.
    pub fn span_count(&self) -> usize {
        self.spans
            .lock()
            .expect("flight recorder lock never poisoned")
            .len()
    }

    /// Spans evicted from the ring since creation.
    pub fn evicted_spans(&self) -> u64 {
        self.evicted_spans.load(Ordering::Relaxed)
    }

    /// Render the rings as one JSONL document: `header` first (one
    /// pre-rendered JSON line, no trailing newline needed), then the
    /// request records oldest-first, then the span tail oldest-first (as
    /// [`SpanRecord::to_json`] lines). Non-destructive: the rings keep
    /// recording afterwards.
    pub fn dump(&self, header: &str) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(header.trim_end());
        out.push('\n');
        {
            let reqs = self
                .requests
                .lock()
                .expect("flight recorder lock never poisoned");
            for line in reqs.iter() {
                out.push_str(line);
                out.push('\n');
            }
        }
        {
            let spans = self
                .spans
                .lock()
                .expect("flight recorder lock never poisoned");
            for span in spans.iter() {
                out.push_str(&span.to_json());
                out.push('\n');
            }
        }
        out
    }
}

impl Sink for FlightRecorder {
    fn record(&self, span: &SpanRecord) {
        let mut spans = self
            .spans
            .lock()
            .expect("flight recorder lock never poisoned");
        if spans.len() == self.max_spans {
            spans.pop_front();
            self.evicted_spans.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(span.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::FieldValue;

    fn rec(name: &'static str, seq: u64) -> SpanRecord {
        SpanRecord {
            name,
            seq,
            dur_ns: 10,
            self_ns: 10,
            fields: vec![("k", FieldValue::U64(seq))],
        }
    }

    #[test]
    fn rings_are_bounded_and_evict_oldest_first() {
        let fr = FlightRecorder::with_capacity(2, 3);
        for i in 0..4 {
            fr.note_line(&format!("{{\"id\":{i}}}"));
        }
        for i in 0..5 {
            fr.record(&rec("a", i));
        }
        assert_eq!(fr.request_count(), 2);
        assert_eq!(fr.span_count(), 3);
        assert_eq!(fr.evicted_spans(), 2);
        let dump = fr.dump("{\"kind\":\"header\"}");
        let lines: Vec<&str> = dump.lines().collect();
        // Header, the two newest requests, the three newest spans.
        assert_eq!(lines.len(), 6);
        assert_eq!(lines[0], "{\"kind\":\"header\"}");
        assert_eq!(lines[1], "{\"id\":2}");
        assert_eq!(lines[2], "{\"id\":3}");
        assert!(lines[3].contains("\"seq\":2"), "{}", lines[3]);
        assert!(lines[5].contains("\"seq\":4"), "{}", lines[5]);
    }

    #[test]
    fn dump_is_non_destructive() {
        let fr = FlightRecorder::with_capacity(4, 4);
        fr.note_line("{\"id\":1}");
        let first = fr.dump("{}");
        let second = fr.dump("{}");
        assert_eq!(first, second);
        assert_eq!(fr.request_count(), 1);
    }
}
