//! Complete search solver for settings with target constraints
//! (Σt = egds ∪ weakly acyclic tgds) — the general NP procedure behind
//! Theorem 1.
//!
//! The solver runs a *nondeterministic-witness chase*: whenever a tgd of
//! Σst ∪ Σt fires, each existential variable branches over every value of
//! the current active domain **plus one fresh null**. This search space is
//! complete by the solution-aware chase argument (Lemma 2): for any
//! solution `J'`, the branch that picks exactly `J'`'s witnesses — with
//! values outside the active domain represented by fresh nulls — reaches a
//! leaf that is itself a solution and maps homomorphically into `J'`.
//! Target egds are applied deterministically (they are forced); a
//! constant/constant conflict kills the branch.
//!
//! At a leaf (no Σst ∪ Σt violations) the branch succeeds iff Σts holds.
//! Mid-branch, a Σts violation whose premise image consists solely of
//! constants is permanent — constants survive every future merge and the
//! conclusions range over the fixed source — so such branches are pruned
//! immediately.
//!
//! Worst-case exponential, as it must be: the §4 boundary settings encode
//! CLIQUE with a single target egd or a single full target tgd.

use crate::setting::PdeSetting;
use pde_chase::{find_egd_violation, find_tgd_violation, null_gen_for};
use pde_constraints::{Egd, Tgd};
use pde_relational::{exists_hom, for_each_hom, Assignment, Instance, NullGen, Tuple, Value, Var};
use pde_runtime::{Governor, StopReason};
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::ops::ControlFlow;

/// Resource limits for the search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GenericLimits {
    /// Maximum number of search nodes to expand.
    pub max_nodes: usize,
    /// Maximum number of *active-domain* values tried per existential
    /// variable when branching (the one fresh null is always tried on
    /// top). When this truncates the branch set, an unsuccessful search
    /// reports `Unknown` rather than `NoSolution` — completeness needs
    /// every branch.
    pub max_branches: usize,
}

impl Default for GenericLimits {
    fn default() -> Self {
        GenericLimits {
            max_nodes: 1_000_000,
            max_branches: usize::MAX,
        }
    }
}

/// Why the generic solver refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GenericError {
    /// The input instance contains labeled nulls.
    InputNotGround,
}

impl fmt::Display for GenericError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenericError::InputNotGround => write!(f, "input instance contains nulls"),
        }
    }
}

impl std::error::Error for GenericError {}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct GenericStats {
    /// Search nodes expanded.
    pub nodes: usize,
    /// Branches cut by the memoized visited-state set.
    pub memo_hits: usize,
    /// Branches cut by the permanent-Σts-violation prune.
    pub ts_prunes: usize,
    /// Branches killed by egd constant conflicts.
    pub egd_failures: usize,
    /// Leaves reached (Σst ∪ Σt hold) and tested against Σts.
    pub candidates_checked: usize,
}

impl GenericStats {
    /// Export the search counters into a [`pde_trace::MetricsRegistry`]
    /// under the `search.` prefix.
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        let u = |x: usize| u64::try_from(x).unwrap_or(u64::MAX);
        reg.add("search.nodes", u(self.nodes));
        reg.add("search.memo_hits", u(self.memo_hits));
        reg.add("search.ts_prunes", u(self.ts_prunes));
        reg.add("search.egd_failures", u(self.egd_failures));
        reg.add("search.candidates_checked", u(self.candidates_checked));
    }
}

/// Outcome of the generic search.
#[derive(Clone, Debug)]
pub enum GenericOutcome {
    /// A solution exists; the witness is a combined instance.
    Solved {
        /// A materialized solution.
        witness: Instance,
        /// Search statistics.
        stats: GenericStats,
    },
    /// The search space was exhausted: no solution exists.
    NoSolution {
        /// Search statistics.
        stats: GenericStats,
    },
    /// The node limit was hit before the space was exhausted.
    Unknown {
        /// Search statistics.
        stats: GenericStats,
    },
    /// The runtime governor stopped the search (deadline, memory budget,
    /// cancellation, or an injected fault). Like `Unknown`, this is a
    /// refusal to keep spending, never a claim about the instance.
    Stopped {
        /// Why the governor stopped the run.
        reason: StopReason,
        /// Search statistics.
        stats: GenericStats,
    },
}

impl GenericOutcome {
    /// `Some(true/false)` when decided, `None` when unknown or stopped.
    pub fn decided(&self) -> Option<bool> {
        match self {
            GenericOutcome::Solved { .. } => Some(true),
            GenericOutcome::NoSolution { .. } => Some(false),
            GenericOutcome::Unknown { .. } | GenericOutcome::Stopped { .. } => None,
        }
    }

    /// The witness, if solved.
    pub fn witness(&self) -> Option<&Instance> {
        match self {
            GenericOutcome::Solved { witness, .. } => Some(witness),
            _ => None,
        }
    }

    /// The statistics of the run.
    pub fn stats(&self) -> &GenericStats {
        match self {
            GenericOutcome::Solved { stats, .. }
            | GenericOutcome::NoSolution { stats }
            | GenericOutcome::Unknown { stats }
            | GenericOutcome::Stopped { stats, .. } => stats,
        }
    }
}

/// Decide existence of a solution by complete search.
pub fn solve(
    setting: &PdeSetting,
    input: &Instance,
    limits: GenericLimits,
) -> Result<GenericOutcome, GenericError> {
    solve_governed(setting, input, limits, &Governor::unlimited())
}

/// [`solve`] under a runtime governor, checked at every search node. A
/// governor stop surfaces as [`GenericOutcome::Stopped`] — never as a
/// yes/no answer.
pub fn solve_governed(
    setting: &PdeSetting,
    input: &Instance,
    limits: GenericLimits,
    governor: &Governor,
) -> Result<GenericOutcome, GenericError> {
    let mut found = None;
    let (stats, exhausted, stopped) = run(setting, input, limits, governor, |sol| {
        found = Some(sol.clone());
        ControlFlow::Break(())
    })?;
    Ok(match (found, stopped) {
        (Some(witness), _) => GenericOutcome::Solved { witness, stats },
        (None, Some(reason)) => GenericOutcome::Stopped { reason, stats },
        (None, None) if exhausted => GenericOutcome::NoSolution { stats },
        (None, None) => GenericOutcome::Unknown { stats },
    })
}

/// Enumerate the leaf solutions of the search. Every solution of the
/// setting contains a homomorphic image of some enumerated leaf, so for
/// monotone queries certain answers are the intersection of ground answers
/// over this family. Returns the stats and whether the space was exhausted.
pub fn for_each_solution(
    setting: &PdeSetting,
    input: &Instance,
    limits: GenericLimits,
    f: impl FnMut(&Instance) -> ControlFlow<()>,
) -> Result<(GenericStats, bool), GenericError> {
    let (stats, exhausted, _stopped) = run(setting, input, limits, &Governor::unlimited(), f)?;
    Ok((stats, exhausted))
}

fn run(
    setting: &PdeSetting,
    input: &Instance,
    limits: GenericLimits,
    governor: &Governor,
    f: impl FnMut(&Instance) -> ControlFlow<()>,
) -> Result<(GenericStats, bool, Option<StopReason>), GenericError> {
    if !input.is_ground() {
        return Err(GenericError::InputNotGround);
    }
    let gen = null_gen_for(input);
    // The tgds whose violations force chase steps: Σst ∪ (tgds of Σt).
    // Full tgds first: they are forced (single branch), and applying them
    // eagerly exposes Σts violations before the search commits to further
    // existential witness choices.
    let mut forward: Vec<Tgd> = setting
        .sigma_st()
        .iter()
        .cloned()
        .chain(setting.target_tgds().cloned())
        .collect();
    forward.sort_by_key(|t| usize::from(!t.is_full()));
    let egds: Vec<Egd> = setting.target_egds().cloned().collect();
    // Conclusion-relevant variables of each ts tgd: premise variables that
    // reappear in the conclusion. A violating match is permanent when the
    // values bound to them can never change — always, if there are no egds
    // (nothing ever merges); otherwise when they are all constants.
    let ts_relevant: Vec<Vec<Var>> = setting
        .sigma_ts()
        .iter()
        .map(|t| t.frontier().into_iter().collect())
        .collect();
    let mut ctx = Ctx {
        setting,
        forward,
        egds,
        ts_relevant,
        gen,
        limits,
        // Pre-size the memo table from the node budget: a decided search
        // inserts at most one key per expanded node. Capped so tiny
        // searches under a huge budget don't over-allocate.
        visited: HashSet::with_capacity(limits.max_nodes.min(1 << 12)),
        stats: GenericStats::default(),
        sink: f,
        governor,
        stopped: None,
    };
    let exhausted = matches!(ctx.search(input.clone()), SearchFlow::Exhausted);
    Ok((ctx.stats, exhausted, ctx.stopped))
}

enum SearchFlow {
    /// Subtree fully explored.
    Exhausted,
    /// The sink asked to stop.
    Stopped,
    /// Node limit hit somewhere below.
    Truncated,
}

struct Ctx<'a, F> {
    setting: &'a PdeSetting,
    forward: Vec<Tgd>,
    egds: Vec<Egd>,
    /// Conclusion-relevant premise variables, indexed like `sigma_ts()`.
    ts_relevant: Vec<Vec<Var>>,
    gen: NullGen,
    limits: GenericLimits,
    visited: HashSet<String>,
    stats: GenericStats,
    sink: F,
    /// Resource governor, checked at every search node.
    governor: &'a Governor,
    /// Set when the governor stopped the search (distinguishes a governor
    /// stop from the sink breaking early).
    stopped: Option<StopReason>,
}

impl<F: FnMut(&Instance) -> ControlFlow<()>> Ctx<'_, F> {
    fn search(&mut self, mut k: Instance) -> SearchFlow {
        // Governor checkpoint before the node-limit check, so a governed
        // stop is reported as such rather than as a plain truncation.
        // Bytes are only estimated when a memory budget is set: this is
        // the solver's hottest loop.
        let bytes = if self.governor.tracks_memory() {
            k.heap_bytes()
        } else {
            0
        };
        if let Err(reason) = self.governor.on_round(self.stats.nodes + 1, bytes) {
            self.stopped = Some(reason);
            return SearchFlow::Stopped;
        }
        if self.stats.nodes >= self.limits.max_nodes {
            return SearchFlow::Truncated;
        }
        self.stats.nodes += 1;
        let _span = pde_trace::span("solver.branch")
            .field("solver", "generic")
            .field("node", self.stats.nodes)
            .field("facts", k.fact_count());

        // 1. Apply egds to a fixpoint (forced steps).
        loop {
            let mut stepped = false;
            for e in &self.egds {
                if let Some(h) = find_egd_violation(&k, e) {
                    let l = h
                        .get(e.lhs)
                        .expect("egd lhs bound: violation hom covers the premise");
                    let r = h
                        .get(e.rhs)
                        .expect("egd rhs bound: violation hom covers the premise");
                    match (l, r) {
                        (Value::Const(_), Value::Const(_)) => {
                            self.stats.egd_failures += 1;
                            return SearchFlow::Exhausted;
                        }
                        (Value::Null(_), _) => k.substitute(l, r),
                        (_, Value::Null(_)) => k.substitute(r, l),
                    }
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                break;
            }
        }

        // 2. Permanent Σts violation prune (checked before the memo key:
        // pruned nodes never pay for canonicalization).
        if self.has_permanent_ts_violation(&k) {
            self.stats.ts_prunes += 1;
            return SearchFlow::Exhausted;
        }

        // 3. Memoized visited check (isomorphism-invariant key).
        let key = canonical_key(&k);
        if !self.visited.insert(key) {
            self.stats.memo_hits += 1;
            return SearchFlow::Exhausted;
        }

        // 4. Find a forward-tgd violation to branch on.
        let trigger = self
            .forward
            .iter()
            .enumerate()
            .find_map(|(i, t)| find_tgd_violation(&k, t).map(|h| (i, h)));
        let Some((ti, h)) = trigger else {
            // Leaf: Σst and Σt hold; success iff Σts holds.
            self.stats.candidates_checked += 1;
            let ts_ok = self
                .setting
                .sigma_ts()
                .iter()
                .all(|t| pde_chase::satisfies_tgd(&k, t));
            if ts_ok {
                return match (self.sink)(&k) {
                    ControlFlow::Break(()) => SearchFlow::Stopped,
                    ControlFlow::Continue(()) => SearchFlow::Exhausted,
                };
            }
            return SearchFlow::Exhausted;
        };
        let tgd = self.forward[ti].clone();

        // 5. Branch over witness choices: each existential independently
        // takes any active-domain value or a fresh null.
        let exvars: Vec<Var> = tgd.existentials.iter().copied().collect();
        let adom: Vec<Value> = k.active_domain().into_iter().collect();
        // The branch-width budget caps how many active-domain values each
        // existential tries; skipping any makes the subtree incomplete, so
        // the whole search degrades to Truncated (never a false
        // NoSolution).
        let tried = adom.len().min(self.limits.max_branches);
        let fresh: Vec<Value> = exvars
            .iter()
            .map(|_| Value::Null(self.gen.fresh()))
            .collect();
        let mut truncated = !exvars.is_empty() && tried < adom.len();
        let mut choice = vec![0usize; exvars.len()];
        loop {
            // Materialize this choice.
            let mut ext = h.clone();
            for (i, v) in exvars.iter().enumerate() {
                let val = if choice[i] < tried {
                    adom[choice[i]]
                } else {
                    fresh[i]
                };
                ext.bind(*v, val);
            }
            // Fault-injection points: firing a branch is the search's
            // analogue of a chase trigger/allocation.
            self.governor.on_trigger(self.stats.nodes);
            if let Err(reason) = self.governor.on_alloc(self.stats.nodes) {
                self.stopped = Some(reason);
                return SearchFlow::Stopped;
            }
            let mut k2 = k.clone();
            for atom in &tgd.conclusion.atoms {
                let vals = atom
                    .ground(&|v| ext.get(v))
                    .expect("conclusion fully bound: ext extends the premise hom with witnesses for every existential");
                k2.insert(atom.rel, Tuple::new(vals));
            }
            match self.search(k2) {
                SearchFlow::Stopped => return SearchFlow::Stopped,
                SearchFlow::Truncated => truncated = true,
                SearchFlow::Exhausted => {}
            }
            // Advance the mixed-radix counter (adom values + 1 fresh each).
            let mut pos = 0;
            loop {
                if pos == exvars.len() {
                    return if truncated {
                        SearchFlow::Truncated
                    } else {
                        SearchFlow::Exhausted
                    };
                }
                choice[pos] += 1;
                if choice[pos] <= tried {
                    break;
                }
                choice[pos] = 0;
                pos += 1;
            }
            if exvars.is_empty() {
                // Full tgd: a single (empty) choice.
                return if truncated {
                    SearchFlow::Truncated
                } else {
                    SearchFlow::Exhausted
                };
            }
        }
    }

    /// Is there a Σts violation that no future step can repair?
    ///
    /// Target facts only grow (more matches, never fewer) and the source
    /// is fixed, so a violating match dies only if an egd later merges a
    /// null bound to a conclusion-relevant variable. Without egds every
    /// violation is permanent; with egds a violation is permanent when its
    /// conclusion-relevant values are all constants.
    fn has_permanent_ts_violation(&self, k: &Instance) -> bool {
        let no_egds = self.egds.is_empty();
        for (i, t) in self.setting.sigma_ts().iter().enumerate() {
            let relevant = &self.ts_relevant[i];
            let mut permanent = false;
            let _ = for_each_hom(&t.premise.atoms, k, &Assignment::new(), |h| {
                let frozen = no_egds
                    || relevant
                        .iter()
                        .all(|v| h.get(*v).is_some_and(|val| val.is_const()));
                if frozen && !exists_hom(&t.conclusion.atoms, k, h) {
                    permanent = true;
                    ControlFlow::Break(())
                } else {
                    ControlFlow::Continue(())
                }
            });
            if permanent {
                return true;
            }
        }
        false
    }
}

/// An isomorphism-invariant key: render facts with null ids, sort, then
/// renumber nulls by first appearance. Instances differing only in null
/// naming share a key; different instances never collide.
fn canonical_key(k: &Instance) -> String {
    let mut lines: Vec<String> = k
        .facts()
        .map(|(rel, t)| format!("{}{t:?}", rel.0))
        .collect();
    lines.sort();
    let joined = lines.join(";");
    // Renumber nulls by first appearance, rebuilding in one pass so ids
    // that prefix each other (⊥1 vs ⊥10) cannot collide.
    let mut ranks: HashMap<String, usize> = HashMap::new();
    let mut out = String::with_capacity(joined.len());
    let bytes = joined.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if joined[i..].starts_with('⊥') {
            let start = i + '⊥'.len_utf8();
            let mut j = start;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let id = joined[start..j].to_owned();
            let next = ranks.len();
            let rank = *ranks.entry(id).or_insert(next);
            out.push_str(&format!("¤{rank}¤"));
            i = j;
        } else {
            let ch = joined[i..]
                .chars()
                .next()
                .expect("i < joined.len() and on a char boundary: i only advances by len_utf8");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_relational::parse_instance;

    #[test]
    fn agrees_with_assignment_solver_when_sigma_t_empty() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap();
        for src in [
            "E(a, b). E(b, c).",
            "E(a, a).",
            "E(a, b). E(b, c). E(a, c).",
            "E(a, b). E(b, a).",
        ] {
            let input = parse_instance(p.schema(), src).unwrap();
            let fast = crate::assignment::solve(&p, &input).unwrap().exists;
            let out = solve(&p, &input, GenericLimits::default()).unwrap();
            assert_eq!(out.decided(), Some(fast), "{src}");
        }
    }

    #[test]
    fn egd_boundary_setting_tiny_clique() {
        // §4 first boundary setting: single target egd, Σst/Σts in (1, 2.1)
        // — the existence problem encodes CLIQUE. (With the w-consistency
        // Σts tgd added as in the Theorem 3 reduction; see DESIGN.md.)
        let p = PdeSetting::parse(
            "source D/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w)",
            "P(x, z, y, w), P(x, z2, y2, w2) -> z = z2;
             P(x, z, y, w), P(y, z2, y2, w2) -> w = z2",
        )
        .unwrap();
        // Triangle: solution exists (3-clique).
        let tri = parse_instance(
            p.schema(),
            "D(a1, a2). D(a2, a1). D(a1, a3). D(a3, a1). D(a2, a3). D(a3, a2).
             E(u, v). E(v, u). E(u, t). E(t, u). E(v, t). E(t, v).",
        )
        .unwrap();
        let out = solve(&p, &tri, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(true));
        let w = out.witness().unwrap();
        assert!(is_solution(&p, &tri, w));
        // Path: no 3-clique, no solution.
        let path = parse_instance(
            p.schema(),
            "D(a1, a2). D(a2, a1). D(a1, a3). D(a3, a1). D(a2, a3). D(a3, a2).
             E(u, v). E(v, u). E(v, t). E(t, v).",
        )
        .unwrap();
        let out = solve(&p, &path, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(false));
    }

    #[test]
    fn weakly_acyclic_target_tgds() {
        // Σt tgd copies H into K; Σts then demands E-support for K.
        let p = PdeSetting::parse(
            "source E/2; source F/2; target H/2; target K/2;",
            "E(x, y) -> H(x, y)",
            "K(x, y) -> F(x, y)",
            "H(x, y) -> K(x, y)",
        )
        .unwrap();
        let good = parse_instance(p.schema(), "E(a, b). F(a, b).").unwrap();
        let out = solve(&p, &good, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(true));
        assert!(is_solution(&p, &good, out.witness().unwrap()));
        let bad = parse_instance(p.schema(), "E(a, b).").unwrap();
        let out = solve(&p, &bad, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(false));
    }

    #[test]
    fn egd_conflict_in_j_means_no_solution() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "H(a, b). H(a, c).").unwrap();
        let out = solve(&p, &input, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(false));
        assert!(out.stats().egd_failures >= 1);
    }

    #[test]
    fn egd_forces_merge_consistent_with_ts() {
        // Σst creates H(a, n); Σt egd merges n with b via J's H(a, b);
        // Σts then requires E-support for (a, b) — present.
        let p = PdeSetting::parse(
            "source E/2; source W/2; target H/2;",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, y) -> W(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let good = parse_instance(p.schema(), "E(a, q). H(a, b). W(a, b).").unwrap();
        let out = solve(&p, &good, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(true));
        assert!(is_solution(&p, &good, out.witness().unwrap()));
        // Without W(a, b) the merged H(a, b) violates Σts.
        let bad = parse_instance(p.schema(), "E(a, q). H(a, b).").unwrap();
        let out = solve(&p, &bad, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(false));
    }

    #[test]
    fn node_limit_yields_unknown() {
        let p = PdeSetting::parse(
            "source D/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w)",
            "P(x, z, y, w), P(x, z2, y2, w2) -> z = z2",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "D(a1, a2). D(a2, a1). E(u, v). E(v, u).").unwrap();
        let out = solve(
            &p,
            &input,
            GenericLimits {
                max_nodes: 1,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(out.decided().is_none() || out.decided() == Some(true));
    }

    #[test]
    fn branch_cap_degrades_to_unknown_not_no_solution() {
        // The only solution instantiates the existential with the adom
        // value `b` (a fresh null cannot match the ground Σts demand);
        // with every active-domain choice cut, the search must degrade to
        // Unknown rather than claim NoSolution.
        let p = PdeSetting::parse(
            "source E/2; source W/2; target H/2;",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, y) -> W(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, q). W(a, b).").unwrap();
        let full = solve(&p, &input, GenericLimits::default()).unwrap();
        assert_eq!(full.decided(), Some(true));
        let capped = solve(
            &p,
            &input,
            GenericLimits {
                max_branches: 0,
                ..Default::default()
            },
        )
        .unwrap();
        // Fresh-null branches alone cannot satisfy Σts here, and the
        // skipped branches forbid a NoSolution verdict.
        assert_eq!(capped.decided(), None);
    }

    #[test]
    fn governed_deadline_yields_stopped_not_no_solution() {
        use pde_runtime::GovernorConfig;
        use std::time::Duration;
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let governor = Governor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        });
        let out = solve_governed(&p, &input, GenericLimits::default(), &governor).unwrap();
        assert!(matches!(
            out,
            GenericOutcome::Stopped {
                reason: StopReason::DeadlineExceeded { .. },
                ..
            }
        ));
        assert_eq!(out.decided(), None);
    }

    #[test]
    fn canonical_key_is_null_rename_invariant() {
        let p = PdeSetting::parse("source E/2; target H/2;", "", "", "").unwrap();
        let a = parse_instance(p.schema(), "H(?3, a). H(?3, ?7).").unwrap();
        let b = parse_instance(p.schema(), "H(?12, a). H(?12, ?1).").unwrap();
        assert_eq!(canonical_key(&a), canonical_key(&b));
        let c = parse_instance(p.schema(), "H(?3, a). H(?4, ?7).").unwrap();
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn data_exchange_case_matches_chase() {
        // Σts = ∅: the generic solver must agree with the plain chase.
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> exists z . H(x, z)",
            "",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b). H(a, c).").unwrap();
        let out = solve(&p, &input, GenericLimits::default()).unwrap();
        assert_eq!(out.decided(), Some(true));
    }
}
