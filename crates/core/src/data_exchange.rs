//! Classic data exchange (Σts = ∅) — the \[FKMP\] baseline the paper
//! contrasts against in §3.
//!
//! When there are no target-to-source constraints, the chase of `(I, J)`
//! with Σst ∪ Σt decides everything in polynomial time (for weakly acyclic
//! Σt): it fails iff no solution exists, and on success its result is a
//! *universal* solution — it maps homomorphically into every solution, so
//! the ground answers of a union of conjunctive queries evaluated on it
//! are exactly the certain answers.

use crate::setting::PdeSetting;
use pde_chase::{null_gen_for, ChaseEngine, ChaseLimits, ChaseOutcome, ChaseStats, DepSchedule};
use pde_constraints::Dependency;
use pde_relational::{Instance, Peer, UnionQuery, Value};
use pde_runtime::{Governor, StopReason};
use std::collections::BTreeSet;
use std::fmt;

/// Why the data-exchange solver refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DataExchangeError {
    /// The setting has target-to-source constraints: not a data exchange
    /// setting.
    HasTargetToSource,
    /// The input instance contains labeled nulls.
    InputNotGround,
    /// The chase hit its resource limits (target tgds not weakly acyclic).
    ChaseDidNotTerminate,
    /// The query mentions non-target relations.
    QueryNotOverTarget,
    /// The runtime governor stopped the chase (deadline, memory budget,
    /// cancellation, or an injected fault). The question is *undecided*,
    /// not answered.
    Stopped(StopReason),
}

impl fmt::Display for DataExchangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataExchangeError::HasTargetToSource => {
                write!(
                    f,
                    "setting has target-to-source constraints; not data exchange"
                )
            }
            DataExchangeError::InputNotGround => write!(f, "input instance contains nulls"),
            DataExchangeError::ChaseDidNotTerminate => {
                write!(
                    f,
                    "chase resource limit exceeded (weak acyclicity violated?)"
                )
            }
            DataExchangeError::QueryNotOverTarget => {
                write!(
                    f,
                    "certain answers are defined for queries over the target schema"
                )
            }
            DataExchangeError::Stopped(reason) => write!(f, "chase stopped: {reason}"),
        }
    }
}

impl std::error::Error for DataExchangeError {}

/// Outcome of the data-exchange chase.
#[derive(Clone, Debug)]
pub struct DataExchangeOutcome {
    /// Does a solution exist (the chase did not fail)?
    pub exists: bool,
    /// On success: the canonical universal solution (combined instance;
    /// its target part may contain nulls).
    pub canonical: Option<Instance>,
    /// Chase steps taken.
    pub chase_steps: usize,
    /// Engine counters from the chase (rounds, triggers, merges).
    pub chase_stats: ChaseStats,
}

/// Chase-based existence test and canonical-solution construction.
pub fn solve_data_exchange(
    setting: &PdeSetting,
    input: &Instance,
) -> Result<DataExchangeOutcome, DataExchangeError> {
    solve_data_exchange_with_limits(setting, input, ChaseLimits::default())
}

/// Chase with explicit limits (certificate-derived budgets, or tight caps
/// for experiments that measure divergence).
pub fn solve_data_exchange_with_limits(
    setting: &PdeSetting,
    input: &Instance,
    limits: ChaseLimits,
) -> Result<DataExchangeOutcome, DataExchangeError> {
    solve_data_exchange_governed(
        setting,
        input,
        limits,
        pde_chase::default_chase_engine(),
        &Governor::unlimited(),
    )
}

/// [`solve_data_exchange_with_limits`] under an explicit chase engine and
/// runtime governor. A governor stop surfaces as
/// [`DataExchangeError::Stopped`] — never as a yes/no answer.
pub fn solve_data_exchange_governed(
    setting: &PdeSetting,
    input: &Instance,
    limits: ChaseLimits,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<DataExchangeOutcome, DataExchangeError> {
    solve_data_exchange_governed_scheduled(setting, input, limits, engine, governor, None)
}

/// [`solve_data_exchange_governed`] with an optional stratified
/// [`DepSchedule`] over the forward dependency list (Σst tgds first, then
/// Σt — the order `pde-analysis`'s `forward_schedule` indexes). Only the
/// semi-naive engine consumes the schedule.
pub fn solve_data_exchange_governed_scheduled(
    setting: &PdeSetting,
    input: &Instance,
    limits: ChaseLimits,
    engine: ChaseEngine,
    governor: &Governor,
    schedule: Option<&DepSchedule>,
) -> Result<DataExchangeOutcome, DataExchangeError> {
    if !setting.is_data_exchange() {
        return Err(DataExchangeError::HasTargetToSource);
    }
    if !input.is_ground() {
        return Err(DataExchangeError::InputNotGround);
    }
    let gen = null_gen_for(input);
    let deps: Vec<Dependency> = setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect();
    let res = pde_chase::chase_governed_scheduled(
        input.clone(),
        &deps,
        pde_chase::WitnessMode::FreshNulls(&gen),
        limits,
        engine,
        governor,
        schedule,
    );
    match res.outcome {
        ChaseOutcome::Success => Ok(DataExchangeOutcome {
            exists: true,
            canonical: Some(res.instance),
            chase_steps: res.steps,
            chase_stats: res.stats,
        }),
        ChaseOutcome::Failure { .. } => Ok(DataExchangeOutcome {
            exists: false,
            canonical: None,
            chase_steps: res.steps,
            chase_stats: res.stats,
        }),
        ChaseOutcome::ResourceExceeded => Err(DataExchangeError::ChaseDidNotTerminate),
        ChaseOutcome::Stopped { reason } => Err(DataExchangeError::Stopped(reason)),
    }
}

/// Certain answers in data exchange: ground answers of the UCQ on the
/// canonical universal solution (\[FKMP\] Theorem 4.2). Returns `None` when
/// no solution exists (vacuous certainty).
pub fn certain_answers_data_exchange(
    setting: &PdeSetting,
    input: &Instance,
    query: &UnionQuery,
) -> Result<Option<BTreeSet<Vec<Value>>>, DataExchangeError> {
    if !query
        .disjuncts
        .iter()
        .all(|q| q.over_peer(setting.schema(), Peer::Target))
    {
        return Err(DataExchangeError::QueryNotOverTarget);
    }
    let out = solve_data_exchange(setting, input)?;
    Ok(out.canonical.map(|c| {
        query
            .eval(&c)
            .into_iter()
            .filter(|t| t.iter().all(Value::is_const))
            .collect()
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_instance, parse_query};

    fn de_setting() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> exists z . H(x, z), H(z, y)",
            "",
            "",
        )
        .unwrap()
    }

    #[test]
    fn solutions_always_exist_without_target_constraints() {
        // The §3 contrast: data exchange with Σt = ∅ is trivial.
        let p = de_setting();
        for src in ["E(a, b).", "E(a, b). E(b, c).", ""] {
            let input = parse_instance(p.schema(), src).unwrap();
            let out = solve_data_exchange(&p, &input).unwrap();
            assert!(out.exists, "{src}");
        }
    }

    #[test]
    fn canonical_solution_is_a_solution() {
        let p = de_setting();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let out = solve_data_exchange(&p, &input).unwrap();
        let canon = out.canonical.unwrap();
        assert!(crate::solution::is_solution(&p, &input, &canon));
        assert_eq!(canon.nulls().len(), 1);
    }

    #[test]
    fn egd_failure_means_no_solution() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b). E(a, c).").unwrap();
        let out = solve_data_exchange(&p, &input).unwrap();
        assert!(!out.exists);
        // Cross-check against the generic search solver.
        let gen =
            crate::generic::solve(&p, &input, crate::generic::GenericLimits::default()).unwrap();
        assert_eq!(gen.decided(), Some(false));
    }

    #[test]
    fn certain_answers_via_canonical_solution() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> exists z . H(x, z), H(z, y)",
            "",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let q = parse_query(p.schema(), "q(x, y) :- H(x, z), H(z, y)")
            .unwrap()
            .into();
        let ans = certain_answers_data_exchange(&p, &input, &q)
            .unwrap()
            .unwrap();
        assert!(ans.contains(&vec![Value::constant("a"), Value::constant("b")]));
        // Answers through the null are not ground, hence not certain.
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn rejects_pde_settings() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        assert_eq!(
            solve_data_exchange(&p, &input).unwrap_err(),
            DataExchangeError::HasTargetToSource
        );
    }

    #[test]
    fn governed_deadline_is_undecided_not_answered() {
        use pde_runtime::{GovernorConfig, StopReason};
        use std::time::Duration;
        let p = de_setting();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let governor = Governor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        });
        let err = solve_data_exchange_governed(
            &p,
            &input,
            ChaseLimits::default(),
            pde_chase::default_chase_engine(),
            &governor,
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DataExchangeError::Stopped(StopReason::DeadlineExceeded { .. })
        ));
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn weak_acyclicity_guard() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> exists z . H(y, z)",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let err = solve_data_exchange_with_limits(&p, &input, ChaseLimits::tight(100)).unwrap_err();
        assert_eq!(err, DataExchangeError::ChaseDidNotTerminate);
    }
}
