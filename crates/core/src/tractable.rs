//! The polynomial-time `ExistsSolution` algorithm (paper Fig. 3, Thm. 4–5).
//!
//! For a PDE setting with no target constraints:
//!
//! 1. chase `(I, J)` with Σst, yielding the canonical target instance
//!    `J_can` (fresh nulls witness Σst's existentials);
//! 2. chase `(J_can, ∅)` with Σts, yielding the canonical *source demand*
//!    `I_can` — everything Σts forces the source to contain if the target
//!    were `J_can`;
//! 3. decide whether a constant-preserving homomorphism `I_can → I`
//!    exists, block by block (Prop. 1).
//!
//! Theorem 5 proves the reduction correct whenever condition 1 of
//! `C_tract` holds; Theorem 6 proves the per-block checks run in
//! polynomial time whenever condition 2 holds (each block of `I_can` has a
//! constant number of nulls). When a homomorphism exists the algorithm also
//! *materializes* a solution `J_img = h_J(J_can)` — the (⇐) construction of
//! Theorem 5 — so callers receive a witness, not just a bit.

use crate::blocks::{blocks, max_block_nulls};
use crate::setting::PdeSetting;
use pde_chase::{chase_tgds_governed, null_gen_for, ChaseEngine, ChaseOutcome, ChaseResult};
use pde_relational::{Instance, NullId, Peer, Value};
use pde_runtime::{Governor, StopReason};
use std::collections::HashMap;
use std::fmt;

/// Block count above which the per-block homomorphism checks run on
/// multiple threads (they are independent by Prop. 1).
const PARALLEL_BLOCK_THRESHOLD: usize = 64;

/// Why the tractable solver refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TractableError {
    /// The setting has target constraints (the Fig. 3 algorithm requires
    /// Σt = ∅).
    HasTargetConstraints,
    /// The setting is outside `C_tract` (and `check_class` was requested).
    NotInCtract,
    /// The input instance contains labeled nulls.
    InputNotGround,
    /// The Σst or Σts chase exceeded its resource limits (cannot happen for
    /// valid settings: both chases are single-pass, but the engine's guard
    /// is surfaced rather than swallowed).
    ChaseDidNotTerminate,
    /// The runtime governor stopped one of the chases (deadline, memory
    /// budget, cancellation, or an injected fault). The question is
    /// *undecided*, not answered.
    Stopped(StopReason),
}

impl fmt::Display for TractableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TractableError::HasTargetConstraints => {
                write!(
                    f,
                    "ExistsSolution requires a setting with no target constraints"
                )
            }
            TractableError::NotInCtract => {
                write!(
                    f,
                    "setting is outside C_tract; use the complete search solver"
                )
            }
            TractableError::InputNotGround => write!(f, "input instance contains nulls"),
            TractableError::ChaseDidNotTerminate => write!(f, "chase resource limit exceeded"),
            TractableError::Stopped(reason) => write!(f, "chase stopped: {reason}"),
        }
    }
}

impl std::error::Error for TractableError {}

/// Statistics from a run of `ExistsSolution`.
#[derive(Clone, Debug, Default)]
pub struct TractableStats {
    /// Facts in `J_can` (target part after the Σst chase).
    pub jcan_facts: usize,
    /// Facts in `I_can` (source part after the Σts chase).
    pub ican_facts: usize,
    /// Number of blocks of `I_can`.
    pub block_count: usize,
    /// Maximum nulls in any block of `I_can` (constant for `C_tract`
    /// settings — Theorem 6).
    pub max_block_nulls: usize,
    /// Chase steps taken by the two chases.
    pub chase_steps: usize,
    /// Aggregate engine counters from the two chases.
    pub chase_stats: pde_chase::ChaseStats,
}

impl TractableStats {
    /// Export the run counters into a [`pde_trace::MetricsRegistry`] under
    /// the `tractable.` prefix, plus the absorbed chase counters under
    /// `chase.`.
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        let u = |x: usize| u64::try_from(x).unwrap_or(u64::MAX);
        reg.set_max("tractable.jcan_facts", u(self.jcan_facts));
        reg.set_max("tractable.ican_facts", u(self.ican_facts));
        reg.set_max("tractable.block_count", u(self.block_count));
        reg.set_max("tractable.max_block_nulls", u(self.max_block_nulls));
        reg.add("tractable.chase_steps", u(self.chase_steps));
        self.chase_stats.export_metrics(reg);
    }
}

/// Outcome of `ExistsSolution`.
#[derive(Clone, Debug)]
pub struct TractableOutcome {
    /// Does a solution exist?
    pub exists: bool,
    /// When `exists`: a materialized solution as a combined instance
    /// `(I, J_img)`; `J_img` may contain nulls of `J_can` that the
    /// homomorphism left in place.
    pub witness: Option<Instance>,
    /// When `!exists`: the first unsatisfiable source demand — a block of
    /// `I_can` with no homomorphism into `I`. Its facts are what Σts
    /// forces the source to contain (nulls mark "any value" slots), so it
    /// explains *why* the exchange is impossible.
    pub unsatisfiable_demand: Option<Vec<(pde_relational::RelId, pde_relational::Tuple)>>,
    /// Run statistics.
    pub stats: TractableStats,
}

/// Run `ExistsSolution` after checking the setting is in `C_tract`
/// (Theorem 4's hypothesis).
pub fn exists_solution(
    setting: &PdeSetting,
    input: &Instance,
) -> Result<TractableOutcome, TractableError> {
    exists_solution_governed(
        setting,
        input,
        pde_chase::default_chase_engine(),
        &Governor::unlimited(),
    )
}

/// [`exists_solution`] under an explicit chase engine and runtime
/// governor. A governor stop surfaces as [`TractableError::Stopped`] —
/// never as a yes/no answer.
pub fn exists_solution_governed(
    setting: &PdeSetting,
    input: &Instance,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<TractableOutcome, TractableError> {
    if !setting.has_no_target_constraints() {
        return Err(TractableError::HasTargetConstraints);
    }
    if !setting.classification().ctract.in_ctract() {
        return Err(TractableError::NotInCtract);
    }
    exists_solution_governed_unchecked(setting, input, engine, governor)
}

/// Run the Fig. 3 algorithm without the `C_tract` membership check.
///
/// Correctness still requires condition 1 of `C_tract` (Theorem 5);
/// polynomial running time requires condition 2 (Theorem 6). Callers that
/// have verified a weaker sufficient condition themselves (e.g. full Σst
/// only) can use this entry point directly. Σt must be empty regardless.
pub fn exists_solution_unchecked(
    setting: &PdeSetting,
    input: &Instance,
) -> Result<TractableOutcome, TractableError> {
    exists_solution_governed_unchecked(
        setting,
        input,
        pde_chase::default_chase_engine(),
        &Governor::unlimited(),
    )
}

/// Map a non-success chase to the right refusal (governor stops stay
/// distinguishable from plain limit trips).
fn chase_refusal(res: &ChaseResult) -> TractableError {
    match &res.outcome {
        ChaseOutcome::Stopped { reason } => TractableError::Stopped(reason.clone()),
        _ => TractableError::ChaseDidNotTerminate,
    }
}

/// [`exists_solution_unchecked`] under an explicit chase engine and
/// runtime governor.
pub fn exists_solution_governed_unchecked(
    setting: &PdeSetting,
    input: &Instance,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<TractableOutcome, TractableError> {
    if !setting.has_no_target_constraints() {
        return Err(TractableError::HasTargetConstraints);
    }
    if !input.is_ground() {
        return Err(TractableError::InputNotGround);
    }
    let mut stats = TractableStats::default();
    let gen = null_gen_for(input);

    // Step 1: (I, J_can) := chase of (I, J) with Σst.
    let st_res = chase_tgds_governed(input.clone(), setting.sigma_st(), &gen, engine, governor);
    if !st_res.is_success() {
        return Err(chase_refusal(&st_res));
    }
    stats.chase_steps += st_res.steps;
    stats.chase_stats.absorb(st_res.stats);
    solve_from_chased(setting, input, &st_res.instance, stats, engine, governor)
}

/// Steps 2–3 of `ExistsSolution` on a *precomputed* step-1 chase.
///
/// `chased_st` must be the Σst-chase fixpoint of `input` (the combined
/// `(I, J_can)` instance) — e.g. one maintained incrementally across
/// inserts via `chase_incremental_governed`, which is how `pde serve`
/// answers `solve` requests without re-chasing from scratch. The same
/// `C_tract` caveats as [`exists_solution_unchecked`] apply, and a stale
/// or under-chased `chased_st` yields wrong answers — callers own that
/// invariant.
pub fn exists_solution_from_chased(
    setting: &PdeSetting,
    input: &Instance,
    chased_st: &Instance,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<TractableOutcome, TractableError> {
    if !setting.has_no_target_constraints() {
        return Err(TractableError::HasTargetConstraints);
    }
    if !input.is_ground() {
        return Err(TractableError::InputNotGround);
    }
    let stats = TractableStats::default();
    solve_from_chased(setting, input, chased_st, stats, engine, governor)
}

/// Shared tail of the Fig. 3 algorithm: steps 2–3 plus the witness
/// construction, given the step-1 chase `chased_st`.
fn solve_from_chased(
    setting: &PdeSetting,
    input: &Instance,
    chased_st: &Instance,
    mut stats: TractableStats,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<TractableOutcome, TractableError> {
    stats.jcan_facts = chased_st.fact_count_of(Peer::Target);
    // Seed above the chase's nulls, not just the input's: step 2 must not
    // collide with witnesses step 1 already invented.
    let gen = null_gen_for(chased_st);

    // Step 2: (J_can, I_can) := chase of (J_can, ∅) with Σts.
    let jcan_only = chased_st.restrict(Peer::Target);
    let ts_res = chase_tgds_governed(jcan_only, setting.sigma_ts(), &gen, engine, governor);
    if !ts_res.is_success() {
        return Err(chase_refusal(&ts_res));
    }
    stats.chase_steps += ts_res.steps;
    stats.chase_stats.absorb(ts_res.stats);
    let chased_ts = ts_res.instance;
    let ican = chased_ts.restrict(Peer::Source);
    stats.ican_facts = ican.fact_count();

    // Step 3: blockwise homomorphism I_can → I, collecting the null map.
    // Blocks are independent (Prop. 1); large block counts fan out over
    // threads.
    let source_i = input.restrict(Peer::Source);
    let ican_blocks = blocks(&ican);
    stats.block_count = ican_blocks.len();
    stats.max_block_nulls = max_block_nulls(&ican);

    let h: HashMap<NullId, Value> =
        match crate::blocks::collect_block_homs(&ican, &source_i, PARALLEL_BLOCK_THRESHOLD) {
            Some(h) => h,
            None => {
                // Re-identify the failing block sequentially for the
                // diagnostic (cheap: blocks are constant-width here).
                let demand = ican_blocks.iter().find_map(|b| {
                    let bi = b.to_instance(input.schema());
                    if pde_relational::instance_hom(&bi, &source_i).is_none() {
                        Some(b.facts.clone())
                    } else {
                        None
                    }
                });
                return Ok(TractableOutcome {
                    exists: false,
                    witness: None,
                    unsatisfiable_demand: demand,
                    stats,
                });
            }
        };

    // Witness: J_img = h_J(J_can) where h_J applies h to the nulls shared
    // with I_can and is the identity elsewhere (Theorem 5 (⇐)).
    let jcan = chased_st.restrict(Peer::Target);
    let j_img = jcan.map_values(|v| match v {
        Value::Null(n) => h.get(&n).copied().unwrap_or(v),
        Value::Const(_) => v,
    });
    let witness = source_i.union(&j_img);
    debug_assert!(
        crate::solution::is_solution(setting, input, &witness),
        "Theorem 5 (⇐): J_img must be a solution"
    );
    Ok(TractableOutcome {
        exists: true,
        witness: Some(witness),
        unsatisfiable_demand: None,
        stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_relational::parse_instance;

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn example1_no_solution() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let out = exists_solution(&p, &input).unwrap();
        assert!(!out.exists);
        assert!(out.witness.is_none());
        assert_eq!(out.stats.jcan_facts, 1); // H(a, c)
        assert_eq!(out.stats.ican_facts, 1); // E(a, c)
    }

    #[test]
    fn example1_self_loop_has_solution() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        let out = exists_solution(&p, &input).unwrap();
        assert!(out.exists);
        let w = out.witness.unwrap();
        assert!(is_solution(&p, &input, &w));
        let h = p.schema().rel_id("H").unwrap();
        assert_eq!(w.relation(h).len(), 1);
    }

    #[test]
    fn example1_triangle_has_solution() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let out = exists_solution(&p, &input).unwrap();
        assert!(out.exists);
        assert!(is_solution(&p, &input, &out.witness.unwrap()));
    }

    #[test]
    fn lav_with_existentials() {
        // Σts: H(x, y) -> exists z . E(x, z), E(z, y): H-edges must be
        // realizable as paths of length 2 in E.
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> exists z . E(x, z), E(z, y)",
            "",
        )
        .unwrap();
        // A 1-cycle: every edge lies on a path of length 2.
        let good = parse_instance(p.schema(), "E(a, a).").unwrap();
        let out = exists_solution(&p, &good).unwrap();
        assert!(out.exists);
        assert!(is_solution(&p, &good, &out.witness.unwrap()));
        // A single edge a->b has no 2-path from a to b.
        let bad = parse_instance(p.schema(), "E(a, b).").unwrap();
        assert!(!exists_solution(&p, &bad).unwrap().exists);
        // A 3-cycle: a->b realizable via ... a->b needs x with a->x->b:
        // with edges a->b, b->c, c->a: path a->b->c gives H(a,c)? We need
        // each E edge (x,y) to have a 2-path from x to y; for a->b the
        // 2-path must be a->?->b where ? has an edge into b: c->... a->b
        // has no intermediate. So: no solution.
        let cyc = parse_instance(p.schema(), "E(a, b). E(b, c). E(c, a).").unwrap();
        assert!(!exists_solution(&p, &cyc).unwrap().exists);
    }

    #[test]
    fn nonempty_j_is_respected() {
        // J already has a fact that forces source demands.
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a). H(b, b).").unwrap();
        // H(b, b) requires E(b, b) in the source: absent → no solution.
        let out = exists_solution(&p, &input).unwrap();
        assert!(!out.exists);
        let input2 = parse_instance(p.schema(), "E(a, a). E(b, b). H(b, b).").unwrap();
        let out2 = exists_solution(&p, &input2).unwrap();
        assert!(out2.exists);
        let w = out2.witness.unwrap();
        assert!(is_solution(&p, &input2, &w));
    }

    #[test]
    fn rejects_settings_with_target_constraints() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        assert_eq!(
            exists_solution(&p, &input).unwrap_err(),
            TractableError::HasTargetConstraints
        );
    }

    #[test]
    fn rejects_non_ctract_settings() {
        let p = PdeSetting::parse(
            "source D/2; source S/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w); P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "D(a, b).").unwrap();
        assert_eq!(
            exists_solution(&p, &input).unwrap_err(),
            TractableError::NotInCtract
        );
        // The unchecked entry point runs (condition 1 holds for this
        // setting, so the answer is still correct — just not guaranteed
        // polynomial).
        assert!(exists_solution_unchecked(&p, &input).is_ok());
    }

    #[test]
    fn rejects_null_inputs() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(?0, a).").unwrap();
        assert_eq!(
            exists_solution(&p, &input).unwrap_err(),
            TractableError::InputNotGround
        );
    }

    #[test]
    fn full_st_tgds_case() {
        // Corollary 1 instance: full Σst, Σts with existentials.
        let p = PdeSetting::parse(
            "source E/2; source F/1; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> exists u . F(u)",
            "",
        )
        .unwrap();
        let with_f = parse_instance(p.schema(), "E(a, b). F(c).").unwrap();
        assert!(exists_solution(&p, &with_f).unwrap().exists);
        let without_f = parse_instance(p.schema(), "E(a, b).").unwrap();
        assert!(!exists_solution(&p, &without_f).unwrap().exists);
    }

    #[test]
    fn unsatisfiable_demand_explains_failures() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let out = exists_solution(&p, &input).unwrap();
        assert!(!out.exists);
        let demand = out.unsatisfiable_demand.expect("failure is explained");
        // The unsatisfiable demand is exactly E(a, c).
        assert_eq!(demand.len(), 1);
        let (rel, t) = &demand[0];
        assert_eq!(p.schema().name(*rel).as_str(), "E");
        assert_eq!(*t, pde_relational::Tuple::consts(["a", "c"]));
        // Successful runs have no demand.
        let ok = parse_instance(p.schema(), "E(a, a).").unwrap();
        assert!(exists_solution(&p, &ok)
            .unwrap()
            .unsatisfiable_demand
            .is_none());
    }

    #[test]
    fn stats_are_populated() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let out = exists_solution(&p, &input).unwrap();
        assert!(out.stats.jcan_facts >= 1);
        assert!(out.stats.ican_facts >= 1);
        assert!(out.stats.block_count >= 1);
        assert_eq!(out.stats.max_block_nulls, 0); // no existentials anywhere
    }

    #[test]
    fn governed_deadline_is_undecided_not_answered() {
        use pde_runtime::GovernorConfig;
        use std::time::Duration;
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let governor = Governor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        });
        let err =
            exists_solution_governed(&p, &input, pde_chase::default_chase_engine(), &governor)
                .unwrap_err();
        assert!(matches!(
            err,
            TractableError::Stopped(StopReason::DeadlineExceeded { .. })
        ));
    }

    #[test]
    fn empty_input_trivially_solvable() {
        let p = example1();
        let input = pde_relational::Instance::new(p.schema().clone());
        let out = exists_solution(&p, &input).unwrap();
        assert!(out.exists);
        assert_eq!(out.witness.unwrap().fact_count(), 0);
    }
}
