//! Lemma 2: extracting a polynomial-size solution from any solution.
//!
//! The paper's NP upper bound rests on this: if `(I, J)` has a solution
//! `J'`, then the **solution-aware chase** of `(I, J)` with Σst ∪ Σt —
//! drawing every existential witness from `J'` — terminates (Lemma 1, via
//! weak acyclicity) in a solution `J* ⊆ J'` whose size is polynomial in
//! `|(I, J)|`. `J*` satisfies Σst ∪ Σt because the chase ran to
//! completion, and Σts for free: its premises over `J* ⊆ J'` are premises
//! over `J'`, whose Σts conclusions live in the *fixed* source instance.
//!
//! [`shrink_solution`] makes the lemma executable: give it any (possibly
//! bloated) solution and get back the chase-extracted small one.

use crate::setting::PdeSetting;
use crate::solution::is_solution;
use pde_chase::{solution_aware_chase, ChaseLimits};
use pde_constraints::Dependency;
use pde_relational::Instance;
use std::fmt;

/// Errors of the Lemma 2 extraction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShrinkError {
    /// The supplied candidate is not a solution for the input.
    NotASolution,
    /// The solution-aware chase hit its limits (target tgds not weakly
    /// acyclic — outside Lemma 2's hypothesis).
    ChaseDidNotTerminate,
}

impl fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShrinkError::NotASolution => write!(f, "candidate is not a solution"),
            ShrinkError::ChaseDidNotTerminate => {
                write!(f, "solution-aware chase exceeded its limits")
            }
        }
    }
}

impl std::error::Error for ShrinkError {}

/// Lemma 2, constructively: given a solution `big` for `input`, return a
/// solution `J* ⊆ big` obtained by the solution-aware chase of `input`
/// with Σst ∪ Σt and witnesses from `big`.
pub fn shrink_solution(
    setting: &PdeSetting,
    input: &Instance,
    big: &Instance,
) -> Result<Instance, ShrinkError> {
    if !is_solution(setting, input, big) {
        return Err(ShrinkError::NotASolution);
    }
    let deps: Vec<Dependency> = setting
        .sigma_st()
        .iter()
        .cloned()
        .map(Dependency::Tgd)
        .chain(setting.sigma_t().iter().cloned())
        .collect();
    let res = solution_aware_chase(input.clone(), &deps, big, ChaseLimits::default());
    if !res.is_success() {
        return Err(ShrinkError::ChaseDidNotTerminate);
    }
    let small = res.instance;
    debug_assert!(small.contained_in(big), "Lemma 2: J* ⊆ J'");
    debug_assert!(
        is_solution(setting, input, &small),
        "Lemma 2: J* is a solution"
    );
    Ok(small)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::parse_instance;

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn shrinks_the_bloated_triangle_solution() {
        // Paper Example 1, third instance: both {H(a,c)} and the full
        // H-set are solutions; Lemma 2 extracts the small one from the big
        // one.
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let big = parse_instance(
            p.schema(),
            "E(a, b). E(b, c). E(a, c). H(a, b). H(b, c). H(a, c).",
        )
        .unwrap();
        let small = shrink_solution(&p, &input, &big).unwrap();
        assert!(small.contained_in(&big));
        assert!(is_solution(&p, &input, &small));
        let h = p.schema().rel_id("H").unwrap();
        assert_eq!(
            small.relation(h).len(),
            1,
            "only the forced H(a, c) remains"
        );
    }

    #[test]
    fn preserves_j_facts() {
        // Facts of J always survive (the chase starts from (I, J)).
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a). E(b, b). H(b, b).").unwrap();
        let big =
            parse_instance(p.schema(), "E(a, a). E(b, b). H(a, a). H(b, b). H(a, b).").unwrap();
        // H(a,b) is junk (but supported: E(a,b)? no — E(a,b) ∉ I, so big
        // isn't a solution with it). Use a supported bloat instead.
        assert!(!is_solution(&p, &input, &big));
        let big_ok = parse_instance(p.schema(), "E(a, a). E(b, b). H(a, a). H(b, b).").unwrap();
        let small = shrink_solution(&p, &input, &big_ok).unwrap();
        let h = p.schema().rel_id("H").unwrap();
        assert!(
            small.contains(h, &pde_relational::Tuple::consts(["b", "b"])),
            "J ⊆ J*"
        );
    }

    #[test]
    fn rejects_non_solutions() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let junk = parse_instance(p.schema(), "E(a, b). E(b, c). H(a, c).").unwrap();
        assert_eq!(
            shrink_solution(&p, &input, &junk),
            Err(ShrinkError::NotASolution)
        );
    }

    #[test]
    fn works_with_target_constraints() {
        let p = PdeSetting::parse(
            "source E/2; source W/2; target H/2; target K/2;",
            "E(x, y) -> H(x, y)",
            "K(x, y) -> W(x, y)",
            "H(x, y) -> K(x, y)",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b). W(a, b). W(q, q).").unwrap();
        let big = parse_instance(
            p.schema(),
            "E(a, b). W(a, b). W(q, q). H(a, b). K(a, b). K(q, q).",
        )
        .unwrap();
        let small = shrink_solution(&p, &input, &big).unwrap();
        assert!(is_solution(&p, &input, &small));
        let k = p.schema().rel_id("K").unwrap();
        // The junk K(q, q) is gone; the forced K(a, b) stays.
        assert_eq!(small.relation(k).len(), 1);
    }

    #[test]
    fn size_is_polynomial_in_input() {
        // The shrunk solution never exceeds the Lemma 1 bound.
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c). E(c, a).").unwrap();
        if let Ok(small) = {
            // Build some solution first via the complete solver.
            let out = crate::assignment::solve(&p, &input).unwrap();
            match out.witness {
                Some(w) => shrink_solution(&p, &input, &w),
                None => return, // no solution for this input: nothing to test
            }
        } {
            let bound =
                pde_constraints::chase_bound(p.schema(), p.sigma_st(), input.active_domain().len())
                    .unwrap();
            assert!(small.fact_count() <= bound.fact_bound);
        }
    }
}
