//! Peer data exchange settings (paper Def. 1).
//!
//! A PDE setting is a quintuple `P = (S, T, Σst, Σts, Σt)`. The combined
//! schema `(S, T)` is a single [`Schema`] whose relations carry peer tags;
//! construction-time validation checks every dependency's orientation, and
//! [`PdeSetting::classification`] runs the static analyses (weak acyclicity
//! of the Σt tgds, `C_tract` membership of (Σst, Σts)).

use pde_constraints::{
    classify, is_weakly_acyclic, CtractReport, Dependency, DependencyError, Orientation, Tgd,
};
use pde_relational::{parse_schema, ParseError, Schema};
use std::fmt;
use std::sync::Arc;

/// A peer data exchange setting `(S, T, Σst, Σts, Σt)`.
#[derive(Clone)]
pub struct PdeSetting {
    schema: Arc<Schema>,
    sigma_st: Vec<Tgd>,
    sigma_ts: Vec<Tgd>,
    sigma_t: Vec<Dependency>,
}

/// Errors constructing or validating a setting.
#[derive(Clone, Debug)]
pub enum SettingError {
    /// A dependency failed structural/orientation validation.
    Dependency {
        /// Which constraint set the dependency belongs to.
        group: &'static str,
        /// Index within that set.
        index: usize,
        /// The underlying error.
        error: DependencyError,
    },
    /// A text source failed to parse.
    Parse(ParseError),
}

impl fmt::Display for SettingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SettingError::Dependency {
                group,
                index,
                error,
            } => {
                write!(f, "{group}[{index}]: {error}")
            }
            SettingError::Parse(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SettingError {}

impl From<ParseError> for SettingError {
    fn from(e: ParseError) -> Self {
        SettingError::Parse(e)
    }
}

/// Drop syntactically identical repeats within one dependency group,
/// keeping the first copy and describing each removal. The wording avoids
/// lint-code vocabulary on purpose: this is a parse-time normalization,
/// not a diagnostic.
fn dedupe_exact<T: PartialEq>(
    group: &'static str,
    items: Vec<T>,
    warnings: &mut Vec<String>,
    display: impl Fn(&T) -> String,
) -> Vec<T> {
    let mut kept: Vec<(usize, T)> = Vec::new();
    for (i, item) in items.into_iter().enumerate() {
        if let Some((j, _)) = kept.iter().find(|(_, k)| *k == item) {
            warnings.push(format!(
                "{group} dependency #{i} repeats #{j} ({}); keeping one copy",
                display(&item)
            ));
        } else {
            kept.push((i, item));
        }
    }
    kept.into_iter().map(|(_, item)| item).collect()
}

impl PdeSetting {
    /// Build and validate a setting.
    pub fn new(
        schema: Arc<Schema>,
        sigma_st: Vec<Tgd>,
        sigma_ts: Vec<Tgd>,
        sigma_t: Vec<Dependency>,
    ) -> Result<PdeSetting, SettingError> {
        let s = PdeSetting {
            schema,
            sigma_st,
            sigma_ts,
            sigma_t,
        };
        s.validate()?;
        Ok(s)
    }

    /// Parse a setting from text sources: a schema declaration, and
    /// `;`-separated dependency lists for Σst, Σts, and Σt (the last may mix
    /// tgds and egds; any may be empty).
    pub fn parse(
        schema_src: &str,
        st_src: &str,
        ts_src: &str,
        t_src: &str,
    ) -> Result<PdeSetting, SettingError> {
        let schema = Arc::new(parse_schema(schema_src)?);
        let sigma_st = pde_constraints::parser::parse_tgds(&schema, st_src)?;
        let sigma_ts = pde_constraints::parser::parse_tgds(&schema, ts_src)?;
        let sigma_t = pde_constraints::parse_dependencies(&schema, t_src)?;
        PdeSetting::new(schema, sigma_st, sigma_ts, sigma_t)
    }

    /// [`PdeSetting::parse`], but syntactically identical repeats of a
    /// dependency within one group are dropped (first copy kept), each
    /// with a warning string. A repeated dependency is semantically inert
    /// but doubles trigger discovery on the chase's hot path, so keeping
    /// it would be a silent performance bug. Alpha-renamed or reordered
    /// near-duplicates are left alone here — those are the optimizer's
    /// business (`pde optimize`) and the `duplicate-tgd` lint's.
    pub fn parse_with_warnings(
        schema_src: &str,
        st_src: &str,
        ts_src: &str,
        t_src: &str,
    ) -> Result<(PdeSetting, Vec<String>), SettingError> {
        let schema = Arc::new(parse_schema(schema_src)?);
        let mut warnings = Vec::new();
        let sigma_st = dedupe_exact(
            "sigma_st",
            pde_constraints::parser::parse_tgds(&schema, st_src)?,
            &mut warnings,
            |t| t.display(&schema).to_string(),
        );
        let sigma_ts = dedupe_exact(
            "sigma_ts",
            pde_constraints::parser::parse_tgds(&schema, ts_src)?,
            &mut warnings,
            |t| t.display(&schema).to_string(),
        );
        let sigma_t = dedupe_exact(
            "sigma_t",
            pde_constraints::parse_dependencies(&schema, t_src)?,
            &mut warnings,
            |d| d.display(&schema).to_string(),
        );
        let setting = PdeSetting::new(schema, sigma_st, sigma_ts, sigma_t)?;
        Ok((setting, warnings))
    }

    fn validate(&self) -> Result<(), SettingError> {
        let wrap =
            |group: &'static str, index: usize, error: DependencyError| SettingError::Dependency {
                group,
                index,
                error,
            };
        for (i, t) in self.sigma_st.iter().enumerate() {
            t.validate(&self.schema, Orientation::SourceToTarget)
                .map_err(|e| wrap("sigma_st", i, e))?;
        }
        for (i, t) in self.sigma_ts.iter().enumerate() {
            t.validate(&self.schema, Orientation::TargetToSource)
                .map_err(|e| wrap("sigma_ts", i, e))?;
        }
        for (i, d) in self.sigma_t.iter().enumerate() {
            match d {
                Dependency::Tgd(t) => t
                    .validate(&self.schema, Orientation::TargetTarget)
                    .map_err(|e| wrap("sigma_t", i, e))?,
                Dependency::Egd(e) => e
                    .validate(&self.schema)
                    .map_err(|er| wrap("sigma_t", i, er))?,
            }
        }
        Ok(())
    }

    /// The combined schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The source-to-target tgds Σst.
    pub fn sigma_st(&self) -> &[Tgd] {
        &self.sigma_st
    }

    /// The target-to-source tgds Σts.
    pub fn sigma_ts(&self) -> &[Tgd] {
        &self.sigma_ts
    }

    /// The target constraints Σt (tgds and egds).
    pub fn sigma_t(&self) -> &[Dependency] {
        &self.sigma_t
    }

    /// The target tgds of Σt.
    pub fn target_tgds(&self) -> impl Iterator<Item = &Tgd> {
        self.sigma_t.iter().filter_map(Dependency::as_tgd)
    }

    /// The target egds of Σt.
    pub fn target_egds(&self) -> impl Iterator<Item = &pde_constraints::Egd> {
        self.sigma_t.iter().filter_map(Dependency::as_egd)
    }

    /// Is this a plain data exchange setting (Σts = ∅)?
    pub fn is_data_exchange(&self) -> bool {
        self.sigma_ts.is_empty()
    }

    /// Are there no target constraints?
    pub fn has_no_target_constraints(&self) -> bool {
        self.sigma_t.is_empty()
    }

    /// Run the static analyses.
    pub fn classification(&self) -> SettingClass {
        let tgds: Vec<&Tgd> = self.target_tgds().collect();
        SettingClass {
            ctract: classify(&self.schema, &self.sigma_st, &self.sigma_ts),
            target_tgds_weakly_acyclic: is_weakly_acyclic(&self.schema, tgds.iter().copied()),
            has_target_constraints: !self.sigma_t.is_empty(),
            is_data_exchange: self.is_data_exchange(),
        }
    }
}

impl fmt::Debug for PdeSetting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PdeSetting {{")?;
        writeln!(f, "  schema: {}", self.schema)?;
        for t in &self.sigma_st {
            writeln!(f, "  st: {}", t.display(&self.schema))?;
        }
        for t in &self.sigma_ts {
            writeln!(f, "  ts: {}", t.display(&self.schema))?;
        }
        for d in &self.sigma_t {
            writeln!(f, "  t:  {}", d.display(&self.schema))?;
        }
        write!(f, "}}")
    }
}

/// Static classification of a setting, driving solver selection.
#[derive(Clone, Debug)]
pub struct SettingClass {
    /// The `C_tract` report for (Σst, Σts).
    pub ctract: CtractReport,
    /// Are the target tgds weakly acyclic (NP membership requirement of
    /// Theorem 1)?
    pub target_tgds_weakly_acyclic: bool,
    /// Does the setting have target constraints?
    pub has_target_constraints: bool,
    /// Is Σts empty (plain data exchange)?
    pub is_data_exchange: bool,
}

impl SettingClass {
    /// Is the polynomial `ExistsSolution` algorithm (Theorem 4) applicable:
    /// no target constraints and (Σst, Σts) ∈ `C_tract`?
    pub fn tractable(&self) -> bool {
        !self.has_target_constraints && self.ctract.in_ctract()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 1 setting of the paper.
    pub(crate) fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn example1_parses_and_validates() {
        let p = example1();
        assert_eq!(p.sigma_st().len(), 1);
        assert_eq!(p.sigma_ts().len(), 1);
        assert!(p.has_no_target_constraints());
        assert!(!p.is_data_exchange());
    }

    #[test]
    fn example1_is_tractable() {
        // Σts is H(x,y) -> E(x,y): LAV, no existentials ⇒ C_tract.
        let c = example1().classification();
        assert!(c.ctract.in_ctract());
        assert!(c.tractable());
        assert!(c.target_tgds_weakly_acyclic);
    }

    #[test]
    fn orientation_violations_rejected() {
        // An st-tgd with a target-relation premise must be rejected.
        let err =
            PdeSetting::parse("source E/2; target H/2;", "H(x, y) -> H(x, y)", "", "").unwrap_err();
        assert!(format!("{err}").contains("sigma_st[0]"));
    }

    #[test]
    fn target_constraints_validated() {
        // Σt may not mention source relations.
        let err =
            PdeSetting::parse("source E/2; target H/2;", "", "", "H(x, y) -> E(x, y)").unwrap_err();
        assert!(format!("{err}").contains("sigma_t[0]"));
    }

    #[test]
    fn mixed_target_constraints() {
        let p = PdeSetting::parse(
            "source E/2; target H/2; target K/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> K(x, y); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        assert_eq!(p.target_tgds().count(), 1);
        assert_eq!(p.target_egds().count(), 1);
        let c = p.classification();
        assert!(c.target_tgds_weakly_acyclic);
        assert!(!c.tractable(), "target constraints disable C_tract");
    }

    #[test]
    fn weak_acyclicity_detected() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "",
            "",
            "H(x, y) -> exists z . H(y, z)",
        )
        .unwrap();
        assert!(!p.classification().target_tgds_weakly_acyclic);
    }

    #[test]
    fn data_exchange_special_case() {
        let p = PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        assert!(p.is_data_exchange());
        assert!(p.classification().is_data_exchange);
    }

    #[test]
    fn clique_setting_classification() {
        let p = PdeSetting::parse(
            "source D/2; source S/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w); P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
            "",
        )
        .unwrap();
        let c = p.classification();
        assert!(!c.tractable());
        assert!(c.ctract.holds1());
        assert!(!c.ctract.holds2_1());
        assert!(!c.ctract.holds2_2());
    }
}
