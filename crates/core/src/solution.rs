//! Solutions and solution checking (paper Def. 2).
//!
//! Given a setting `P` and an input pair `(I, J)` — represented as one
//! combined instance — a target instance `J'` is a **solution** when
//! `J ⊆ J'`, `(I, J') ⊨ Σst ∪ Σts`, and `J' ⊨ Σt`. Candidates are passed
//! as combined instances too; the checker additionally insists the source
//! part is untouched, the defining invariant of peer data exchange.

use crate::setting::PdeSetting;
use pde_chase::{satisfies, satisfies_tgd};
use pde_constraints::Dependency;
use pde_relational::{Instance, Peer};
use std::fmt;

/// Why a candidate is not a solution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SolutionViolation {
    /// The candidate's source part differs from the input's.
    SourceChanged,
    /// Some fact of `J` is missing from the candidate (`J ⊄ J'`).
    TargetNotContained,
    /// A Σst tgd is violated.
    SigmaSt(usize),
    /// A Σts tgd is violated.
    SigmaTs(usize),
    /// A Σt dependency is violated.
    SigmaT(usize),
}

impl fmt::Display for SolutionViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolutionViolation::SourceChanged => {
                write!(f, "the source instance was modified")
            }
            SolutionViolation::TargetNotContained => {
                write!(
                    f,
                    "the candidate does not contain the input target instance"
                )
            }
            SolutionViolation::SigmaSt(i) => write!(f, "sigma_st[{i}] is violated"),
            SolutionViolation::SigmaTs(i) => write!(f, "sigma_ts[{i}] is violated"),
            SolutionViolation::SigmaT(i) => write!(f, "sigma_t[{i}] is violated"),
        }
    }
}

/// Check whether `candidate` (a combined instance) is a solution for
/// `input` (a combined instance `(I, J)`) in `setting`.
pub fn check_solution(
    setting: &PdeSetting,
    input: &Instance,
    candidate: &Instance,
) -> Result<(), SolutionViolation> {
    // Source unchanged, in both directions.
    if !input.peer_contained_in(candidate, Peer::Source)
        || !candidate.peer_contained_in(input, Peer::Source)
    {
        return Err(SolutionViolation::SourceChanged);
    }
    // J ⊆ J'.
    if !input.peer_contained_in(candidate, Peer::Target) {
        return Err(SolutionViolation::TargetNotContained);
    }
    for (i, t) in setting.sigma_st().iter().enumerate() {
        if !satisfies_tgd(candidate, t) {
            return Err(SolutionViolation::SigmaSt(i));
        }
    }
    for (i, t) in setting.sigma_ts().iter().enumerate() {
        if !satisfies_tgd(candidate, t) {
            return Err(SolutionViolation::SigmaTs(i));
        }
    }
    for (i, d) in setting.sigma_t().iter().enumerate() {
        let ok = match d {
            // Σt ranges over the target only; the combined instance is fine
            // to check against because its premises mention only target
            // relations.
            Dependency::Tgd(_) | Dependency::Egd(_) => satisfies(candidate, d),
        };
        if !ok {
            return Err(SolutionViolation::SigmaT(i));
        }
    }
    Ok(())
}

/// Is `candidate` a solution for `input` in `setting`?
pub fn is_solution(setting: &PdeSetting, input: &Instance, candidate: &Instance) -> bool {
    check_solution(setting, input, candidate).is_ok()
}

/// Shrink a solution to its core (minimal retract).
///
/// For settings with no target constraints, the core of a solution is
/// again a solution: the retraction fixes all ground facts (so `J` and the
/// source stay put), homomorphic images preserve Σst, and the core is a
/// subinstance so it fires no Σts premise the original didn't. With target
/// tgds present this does **not** hold in general (tgd conclusions can be
/// lost), so the function refuses.
pub fn core_solution(
    setting: &PdeSetting,
    input: &Instance,
    solution: &Instance,
) -> Option<Instance> {
    if setting.target_tgds().next().is_some() {
        return None;
    }
    let cored = pde_relational::core_of(solution);
    debug_assert!(
        is_solution(setting, input, &cored),
        "core of a solution must be a solution when Σt has no tgds"
    );
    Some(cored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::parse_instance;

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn example1_no_solution_case() {
        // I = {E(a,b), E(b,c)}, J = ∅: H(a,c) is forced but E(a,c) absent.
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let candidate = parse_instance(p.schema(), "E(a, b). E(b, c). H(a, c).").unwrap();
        assert_eq!(
            check_solution(&p, &input, &candidate),
            Err(SolutionViolation::SigmaTs(0))
        );
        // Leaving H empty violates Σst instead.
        assert_eq!(
            check_solution(&p, &input, &input),
            Err(SolutionViolation::SigmaSt(0))
        );
    }

    #[test]
    fn example1_unique_solution_case() {
        // I = {E(a,a)}: J' = {H(a,a)} is the only solution.
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        let good = parse_instance(p.schema(), "E(a, a). H(a, a).").unwrap();
        assert!(is_solution(&p, &input, &good));
    }

    #[test]
    fn example1_two_solutions_case() {
        // I = {E(a,b), E(b,c), E(a,c)}: both {H(a,c)} and
        // {H(a,b), H(b,c), H(a,c)} are solutions.
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let s1 = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c). H(a, c).").unwrap();
        let s2 = parse_instance(
            p.schema(),
            "E(a, b). E(b, c). E(a, c). H(a, b). H(b, c). H(a, c).",
        )
        .unwrap();
        assert!(is_solution(&p, &input, &s1));
        assert!(is_solution(&p, &input, &s2));
        // But {H(a,b)} alone is not (missing H(a,c) for Σst).
        let bad = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c). H(a, b).").unwrap();
        assert!(!is_solution(&p, &input, &bad));
    }

    #[test]
    fn source_must_not_change() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        let grown = parse_instance(p.schema(), "E(a, a). E(b, b). H(a, a).").unwrap();
        assert_eq!(
            check_solution(&p, &input, &grown),
            Err(SolutionViolation::SourceChanged)
        );
        let shrunk = parse_instance(p.schema(), "H(a, a).").unwrap();
        assert_eq!(
            check_solution(&p, &input, &shrunk),
            Err(SolutionViolation::SourceChanged)
        );
    }

    #[test]
    fn j_must_be_contained() {
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a). H(q, q).").unwrap();
        // Candidate drops H(q, q).
        let cand = parse_instance(p.schema(), "E(a, a). H(a, a).").unwrap();
        assert_eq!(
            check_solution(&p, &input, &cand),
            Err(SolutionViolation::TargetNotContained)
        );
    }

    #[test]
    fn core_solution_shrinks_redundant_witnesses() {
        // A bloated solution with a redundant null fact cores down.
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, y) -> E(x, x)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b). E(a, a).").unwrap();
        // Solution with both a ground fact and a subsumed null fact.
        let bloated = parse_instance(p.schema(), "E(a, b). E(a, a). H(a, b). H(a, ?0).").unwrap();
        assert!(is_solution(&p, &input, &bloated));
        let cored = core_solution(&p, &input, &bloated).unwrap();
        assert!(is_solution(&p, &input, &cored));
        assert!(cored.fact_count() < bloated.fact_count());
        assert!(cored.is_ground());
    }

    #[test]
    fn core_solution_refuses_target_tgds() {
        let p = PdeSetting::parse(
            "source E/2; target H/2; target K/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y) -> K(x, y)",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let sol = parse_instance(p.schema(), "E(a, b). H(a, b). K(a, b).").unwrap();
        assert!(core_solution(&p, &input, &sol).is_none());
    }

    #[test]
    fn target_egd_checked() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let bad = parse_instance(p.schema(), "E(a, b). H(a, b). H(a, c).").unwrap();
        assert_eq!(
            check_solution(&p, &input, &bad),
            Err(SolutionViolation::SigmaT(0))
        );
        let good = parse_instance(p.schema(), "E(a, b). H(a, b).").unwrap();
        assert!(is_solution(&p, &input, &good));
    }
}
