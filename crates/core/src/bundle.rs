//! The `.pde` bundle format: a whole problem — setting plus input
//! instance — in one self-describing text file.
//!
//! ```text
//! # comments and blank lines are allowed anywhere
//! %schema
//! source E/2; target H/2
//! %st
//! E(x, z), E(z, y) -> H(x, y)
//! %ts
//! H(x, y) -> E(x, y)
//! %t
//! # (empty: no target constraints)
//! %instance
//! E(a, b). E(b, c).
//! ```
//!
//! Sections may appear in any order; `%schema` is mandatory, the others
//! default to empty. The CLI (`pde`) consumes bundles; programmatic users
//! get [`Bundle::parse`] / [`Bundle::render`].

use crate::setting::{PdeSetting, SettingError};
use pde_relational::{parse_instance, Instance, ParseError, Peer};
use std::fmt;

/// A parsed bundle: the setting and the input pair `(I, J)`.
#[derive(Clone)]
pub struct Bundle {
    /// The PDE setting.
    pub setting: PdeSetting,
    /// The combined input instance.
    pub input: Instance,
}

/// Bundle parse errors, with the offending section.
#[derive(Debug)]
pub enum BundleError {
    /// The `%schema` section is missing.
    MissingSchema,
    /// A line outside any section.
    ContentOutsideSection {
        /// 1-based line number.
        line: usize,
    },
    /// An unknown `%section` marker.
    UnknownSection {
        /// The marker as written.
        name: String,
        /// 1-based line number.
        line: usize,
    },
    /// A section appeared twice.
    DuplicateSection {
        /// The duplicated marker.
        name: String,
        /// 1-based line number.
        line: usize,
    },
    /// The setting failed to build.
    Setting(SettingError),
    /// The instance failed to parse.
    Instance(ParseError),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::MissingSchema => write!(f, "bundle has no %schema section"),
            BundleError::ContentOutsideSection { line } => {
                write!(f, "line {line}: content before the first %section marker")
            }
            BundleError::UnknownSection { name, line } => {
                write!(f, "line {line}: unknown section %{name}")
            }
            BundleError::DuplicateSection { name, line } => {
                write!(f, "line {line}: duplicate section %{name}")
            }
            BundleError::Setting(e) => write!(f, "{e}"),
            BundleError::Instance(e) => write!(f, "instance: {e}"),
        }
    }
}

impl std::error::Error for BundleError {}

impl From<SettingError> for BundleError {
    fn from(e: SettingError) -> Self {
        BundleError::Setting(e)
    }
}

/// One section's text plus provenance: `line_map[i]` is the 1-based file
/// line that section line `i` came from. The map is needed because blank
/// and comment lines are dropped, so a section offset alone cannot be
/// translated back to a file position.
#[derive(Clone, Debug, Default)]
pub struct Section {
    /// The section's text with comments and blank lines removed.
    pub text: String,
    /// 1-based file line of each line of `text`.
    pub line_map: Vec<usize>,
}

impl Section {
    /// Translate a byte offset into `text` to a `(file_line, col)` pair,
    /// both 1-based. Offsets past the end map to the last line.
    pub fn file_line_col(&self, offset: usize) -> (usize, usize) {
        let mut line = 0usize;
        let mut col = 1usize;
        for (i, b) in self.text.bytes().enumerate() {
            if i >= offset {
                break;
            }
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        let file_line = self
            .line_map
            .get(line.min(self.line_map.len().saturating_sub(1)))
            .copied()
            .unwrap_or(line + 1);
        (file_line, col)
    }
}

/// The raw text of a bundle's five sections, before any parsing of their
/// contents. This is the substrate the lint driver works from: it parses
/// each section leniently and reports diagnostics with file positions via
/// each [`Section`]'s line map.
#[derive(Clone, Debug, Default)]
pub struct BundleSources {
    /// `%schema` section.
    pub schema: Section,
    /// `%st` section.
    pub st: Section,
    /// `%ts` section.
    pub ts: Section,
    /// `%t` section.
    pub t: Section,
    /// `%instance` section.
    pub instance: Section,
}

/// Split a bundle into its sections without parsing their contents.
/// Enforces the structural rules (known markers, no duplicates, no content
/// before the first marker, `%schema` present).
pub fn split_sections(src: &str) -> Result<BundleSources, BundleError> {
    let mut sections: [(&str, Option<Section>); 5] = [
        ("schema", None),
        ("st", None),
        ("ts", None),
        ("t", None),
        ("instance", None),
    ];
    let mut current: Option<usize> = None;
    for (i, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix('%') {
            let name = name.trim();
            let idx = sections
                .iter()
                .position(|(n, _)| *n == name)
                .ok_or_else(|| BundleError::UnknownSection {
                    name: name.to_owned(),
                    line: i + 1,
                })?;
            if sections[idx].1.is_some() {
                return Err(BundleError::DuplicateSection {
                    name: name.to_owned(),
                    line: i + 1,
                });
            }
            sections[idx].1 = Some(Section::default());
            current = Some(idx);
            continue;
        }
        let Some(cur) = current else {
            return Err(BundleError::ContentOutsideSection { line: i + 1 });
        };
        let sec = sections[cur]
            .1
            .as_mut()
            .expect("current only ever set after Some(Section) is stored");
        sec.text.push_str(raw);
        sec.text.push('\n');
        sec.line_map.push(i + 1);
    }
    if sections[0].1.is_none() {
        return Err(BundleError::MissingSchema);
    }
    let mut it = sections.into_iter().map(|(_, s)| s.unwrap_or_default());
    Ok(BundleSources {
        schema: it.next().expect("five sections"),
        st: it.next().expect("five sections"),
        ts: it.next().expect("five sections"),
        t: it.next().expect("five sections"),
        instance: it.next().expect("five sections"),
    })
}

impl Bundle {
    /// Parse a bundle from text. Exact duplicate dependencies are removed
    /// (see [`Bundle::parse_with_warnings`], which this delegates to); use
    /// that entry point to surface the removal warnings.
    pub fn parse(src: &str) -> Result<Bundle, BundleError> {
        Bundle::parse_with_warnings(src).map(|(bundle, _)| bundle)
    }

    /// Parse a bundle from text, deduplicating syntactically identical
    /// dependencies within each group at parse time (a repeated dependency
    /// silently doubles trigger work in the chase) and returning one
    /// warning string per removed copy.
    pub fn parse_with_warnings(src: &str) -> Result<(Bundle, Vec<String>), BundleError> {
        let sources = split_sections(src)?;
        let (setting, warnings) = PdeSetting::parse_with_warnings(
            &sources.schema.text,
            &sources.st.text,
            &sources.ts.text,
            &sources.t.text,
        )?;
        let input = parse_instance(setting.schema(), &sources.instance.text)
            .map_err(BundleError::Instance)?;
        Ok((Bundle { setting, input }, warnings))
    }

    /// Render this bundle back to the text format (parse∘render = id up to
    /// formatting).
    pub fn render(&self) -> String {
        let schema = self.setting.schema();
        let mut out = String::new();
        out.push_str("%schema\n");
        for rel in schema.rel_ids() {
            out.push_str(&format!(
                "{} {}/{};\n",
                schema.peer(rel),
                schema.name(rel),
                schema.arity(rel)
            ));
        }
        out.push_str("%st\n");
        for t in self.setting.sigma_st() {
            out.push_str(&format!("{};\n", t.display(schema)));
        }
        out.push_str("%ts\n");
        for t in self.setting.sigma_ts() {
            out.push_str(&format!("{};\n", t.display(schema)));
        }
        out.push_str("%t\n");
        for d in self.setting.sigma_t() {
            out.push_str(&format!("{};\n", d.display(schema)));
        }
        out.push_str("%instance\n");
        for (rel, t) in self.input.facts() {
            out.push_str(&format!("{}{}.\n", schema.name(rel), t));
        }
        out
    }

    /// Short one-line summary (for CLI headers).
    pub fn summary(&self) -> String {
        format!(
            "|Σst|={} |Σts|={} |Σt|={} |I|={} |J|={}",
            self.setting.sigma_st().len(),
            self.setting.sigma_ts().len(),
            self.setting.sigma_t().len(),
            self.input.fact_count_of(Peer::Source),
            self.input.fact_count_of(Peer::Target),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EXAMPLE: &str = "
# Example 1 of the paper
%schema
source E/2; target H/2
%st
E(x, z), E(z, y) -> H(x, y)
%ts
H(x, y) -> E(x, y)
%t
%instance
E(a, b). E(b, c).
";

    #[test]
    fn parse_happy_path() {
        let b = Bundle::parse(EXAMPLE).unwrap();
        assert_eq!(b.setting.sigma_st().len(), 1);
        assert_eq!(b.setting.sigma_ts().len(), 1);
        assert!(b.setting.has_no_target_constraints());
        assert_eq!(b.input.fact_count(), 2);
        assert!(b.summary().contains("|I|=2"));
    }

    #[test]
    fn sections_in_any_order_and_optional() {
        let src = "%instance\n%schema\nsource A/1; target B/1\n%st\nA(x) -> B(x)";
        let b = Bundle::parse(src).unwrap();
        assert_eq!(b.setting.sigma_st().len(), 1);
        assert_eq!(b.input.fact_count(), 0);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            Bundle::parse("source E/2"),
            Err(BundleError::ContentOutsideSection { line: 1 })
        ));
        assert!(matches!(
            Bundle::parse("%bogus\n"),
            Err(BundleError::UnknownSection { .. })
        ));
        assert!(matches!(
            Bundle::parse("%st\n%st\n"),
            Err(BundleError::DuplicateSection { .. })
        ));
        assert!(matches!(
            Bundle::parse("%st\n"),
            Err(BundleError::MissingSchema)
        ));
        assert!(matches!(
            Bundle::parse("%schema\nsource E/2\n%st\nE(x, y) -> E(x, y)"),
            Err(BundleError::Setting(_))
        ));
        assert!(matches!(
            Bundle::parse("%schema\nsource E/2\n%instance\nE(a)."),
            Err(BundleError::Instance(_))
        ));
    }

    #[test]
    fn render_roundtrips() {
        let b = Bundle::parse(EXAMPLE).unwrap();
        let rendered = b.render();
        let again = Bundle::parse(&rendered).unwrap();
        assert_eq!(again.setting.sigma_st(), b.setting.sigma_st());
        assert_eq!(again.setting.sigma_ts(), b.setting.sigma_ts());
        assert!(again.input.same_facts(&b.input));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let src = "# top\n\n%schema\n# inner\nsource A/1; target B/1\n\n%instance\nA(q).";
        let b = Bundle::parse(src).unwrap();
        assert_eq!(b.input.fact_count(), 1);
    }

    #[test]
    fn split_sections_tracks_file_lines() {
        let src = "# header\n%schema\nsource A/1; target B/1\n%st\n# comment\n\nA(x) -> B(x)\nA(x) -> B(x)\n";
        let s = split_sections(src).unwrap();
        assert_eq!(s.schema.text, "source A/1; target B/1\n");
        assert_eq!(s.schema.line_map, vec![3]);
        // Comment (line 5) and blank (line 6) are skipped, so the two st
        // lines come from file lines 7 and 8.
        assert_eq!(s.st.line_map, vec![7, 8]);
        // Offset into the second st line maps to file line 8.
        let second_line_start = s.st.text.find('\n').unwrap() + 1;
        assert_eq!(s.st.file_line_col(second_line_start + 5), (8, 6));
        assert_eq!(s.st.file_line_col(0), (7, 1));
        // Missing sections come back empty.
        assert!(s.t.text.is_empty());
        assert!(s.instance.line_map.is_empty());
    }
}
