//! Solver façade: pick the right algorithm from the setting's
//! classification and report what ran.
//!
//! | Setting shape                           | Algorithm (module)          |
//! |-----------------------------------------|-----------------------------|
//! | Σts = ∅ (data exchange)                 | chase ([`crate::data_exchange`]) |
//! | Σt = ∅, (Σst, Σts) ∈ `C_tract`          | Fig. 3 ([`crate::tractable`])    |
//! | Σt = ∅, outside `C_tract`               | null-assignment search ([`crate::assignment`]) |
//! | Σt ≠ ∅                                  | witness-chase search ([`crate::generic`]) |
//!
//! The first two are polynomial; the last two are complete exponential
//! searches, matching the NP-completeness results of §3.

use crate::assignment::{self, AssignmentError};
use crate::data_exchange::{self, DataExchangeError};
use crate::generic::{self, GenericLimits, GenericOutcome};
use crate::setting::PdeSetting;
use crate::tractable::{self, TractableError};
use pde_chase::{ChaseEngine, ChaseLimits, ChaseStats, DepSchedule};
use pde_relational::Instance;
use pde_runtime::{isolate, EngineError, Governor, GovernorReport, StopReason};
use std::fmt;
use std::time::{Duration, Instant};

/// Which algorithm the façade selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolverKind {
    /// Plain data-exchange chase (Σts = ∅).
    DataExchange,
    /// The polynomial `ExistsSolution` of Fig. 3.
    Tractable,
    /// Complete null-assignment search (Σt = ∅, outside `C_tract`).
    AssignmentSearch,
    /// Complete nondeterministic-witness chase search (Σt ≠ ∅).
    GenericSearch,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverKind::DataExchange => write!(f, "data-exchange chase"),
            SolverKind::Tractable => write!(f, "ExistsSolution (C_tract)"),
            SolverKind::AssignmentSearch => write!(f, "null-assignment search"),
            SolverKind::GenericSearch => write!(f, "witness-chase search"),
        }
    }
}

/// Search counters of the complete (exponential) solvers, normalized
/// across the null-assignment and witness-chase searches so every solver
/// kind reports real numbers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchSummary {
    /// Search-tree branches (nodes) explored.
    pub branches: usize,
    /// Complete candidate solutions reached and checked at leaves.
    pub candidates_checked: usize,
    /// Branches cut before expansion (determined-violation prunes,
    /// permanent-Σts prunes, memo hits, and egd constant conflicts).
    pub prunes: usize,
}

impl SearchSummary {
    /// Export the counters into a [`pde_trace::MetricsRegistry`] under the
    /// `search.` prefix.
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        let u = |x: usize| u64::try_from(x).unwrap_or(u64::MAX);
        reg.add("search.branches", u(self.branches));
        reg.add("search.candidates_checked", u(self.candidates_checked));
        reg.add("search.prunes", u(self.prunes));
    }
}

/// Result of [`decide`].
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The algorithm that ran.
    pub kind: SolverKind,
    /// `Some(answer)` when decided; `None` when a resource limit or the
    /// governor stopped the run early.
    pub exists: Option<bool>,
    /// A materialized solution, when one was found.
    pub witness: Option<Instance>,
    /// Wall-clock time of the solve call.
    pub elapsed: Duration,
    /// Chase engine counters (rounds, triggers fired / skipped-by-delta,
    /// egd merges) whenever the selected algorithm ran a chase engine:
    /// the data-exchange and `C_tract` paths, and the null-assignment
    /// search (which absorbs its Σst chase). `None` only for the generic
    /// witness-chase search, whose chase steps are inlined into the
    /// branch nodes counted by `search`.
    pub chase_stats: Option<ChaseStats>,
    /// Search counters when the selected algorithm is one of the complete
    /// searches; `None` for the polynomial paths.
    pub search: Option<SearchSummary>,
    /// Why the run is undecided, when the governor stopped it (`exists`
    /// is `None` in that case). `None` for decided runs and for plain
    /// limit truncations.
    pub undecided: Option<StopReason>,
    /// True when the primary engine attempt panicked or tripped an
    /// injected fault and this report came from the retry on the naive
    /// oracle engine.
    pub engine_fallback: bool,
    /// Governor counters accumulated over the whole solve (all zeros /
    /// `None` for ungoverned runs that never checked).
    pub governor: GovernorReport,
}

impl SolveReport {
    /// Export every counter this report carries into a
    /// [`pde_trace::MetricsRegistry`]: chase counters under `chase.`,
    /// search counters under `search.`, governor counters under
    /// `governor.`, witness storage gauges under `storage.`, plus
    /// `solve.elapsed_ns`. This is the canonical source for the
    /// machine-readable run report.
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        if let Some(cs) = &self.chase_stats {
            cs.export_metrics(reg);
        }
        if let Some(s) = &self.search {
            s.export_metrics(reg);
        }
        self.governor.export_metrics(reg);
        if let Some(w) = &self.witness {
            let stats = w.storage_stats();
            reg.set("storage.facts", stats.facts as u64);
            reg.set("storage.heap_bytes", stats.heap_bytes as u64);
            reg.set("storage.bytes_per_fact", stats.bytes_per_fact() as u64);
            reg.set("storage.slots", stats.slots as u64);
            reg.set("storage.index_entries", stats.index_entries as u64);
        }
        let elapsed_ns = u64::try_from(self.elapsed.as_nanos()).unwrap_or(u64::MAX);
        reg.set("solve.elapsed_ns", elapsed_ns);
        // Also observed as a histogram so aggregated reports (batch runs,
        // serve sessions folding many solves) carry the distribution, not
        // just the last gauge value.
        reg.observe("solve.elapsed_ns", elapsed_ns);
    }
}

/// Errors from the façade (the per-solver errors, unified).
#[derive(Clone, Debug)]
pub enum SolveError {
    /// Input contains nulls or another per-solver precondition failed.
    Precondition(String),
    /// An engine attempt panicked and the panic was contained at the
    /// solver boundary (after exhausting the engine-fallback retry).
    Engine(EngineError),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Precondition(m) => write!(f, "{m}"),
            SolveError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A precomputed routing decision plus resource budgets, so repeated
/// solves of one setting skip the per-call classification work
/// (`PdeSetting::classification` rebuilds the dependency graph and the
/// `C_tract` report every time).
///
/// Obtain one with [`SolvePlan::for_setting`] (runs the classification
/// once), or from a verified static complexity certificate (the
/// `pde-analysis` planner derives the budgets from Lemma 1's chase bound).
#[derive(Clone, Copy, Debug)]
pub struct SolvePlan {
    /// The algorithm to dispatch to, decided ahead of time.
    pub kind: SolverKind,
    /// Budgets for the complete searches.
    pub limits: GenericLimits,
    /// Budget/pre-sizing for the chase-based paths (the data-exchange
    /// solver chases Σst ∪ Σt under these limits).
    pub chase_limits: ChaseLimits,
}

impl SolvePlan {
    /// Classify `setting` once and fix the routing, with default budgets.
    pub fn for_setting(setting: &PdeSetting) -> SolvePlan {
        let kind = if setting.is_data_exchange() {
            SolverKind::DataExchange
        } else if setting.classification().tractable() {
            SolverKind::Tractable
        } else if setting.has_no_target_constraints() {
            SolverKind::AssignmentSearch
        } else {
            SolverKind::GenericSearch
        };
        SolvePlan {
            kind,
            limits: GenericLimits::default(),
            chase_limits: ChaseLimits::default(),
        }
    }
}

/// Decide `SOL(P)` for `input`, automatically selecting the algorithm.
pub fn decide(setting: &PdeSetting, input: &Instance) -> Result<SolveReport, SolveError> {
    decide_with_limits(setting, input, GenericLimits::default())
}

/// [`decide`] with explicit limits for the complete searches.
pub fn decide_with_limits(
    setting: &PdeSetting,
    input: &Instance,
    limits: GenericLimits,
) -> Result<SolveReport, SolveError> {
    let mut plan = SolvePlan::for_setting(setting);
    plan.limits = limits;
    decide_with_plan(setting, input, &plan)
}

/// Decide `SOL(P)` following a precomputed [`SolvePlan`]: no
/// re-classification, chase structures bounded by the plan's chase
/// limits, search budgets taken from the plan.
///
/// The caller is responsible for the plan matching the setting (pair a
/// certificate-derived plan with `verify_certificate` first); a
/// mismatched plan surfaces as a solver precondition error, never a wrong
/// answer.
pub fn decide_with_plan(
    setting: &PdeSetting,
    input: &Instance,
    plan: &SolvePlan,
) -> Result<SolveReport, SolveError> {
    decide_governed(setting, input, plan, &Governor::unlimited())
}

/// [`decide_with_plan`] under a runtime [`Governor`]: deadlines, memory
/// budgets, and cancellation are enforced cooperatively inside the chase
/// engines and search solvers, and a budget exhaustion surfaces as a
/// report with `exists: None` and `undecided: Some(reason)` — never a
/// wrong yes/no answer and never a poisoned input (engines consume
/// clones).
///
/// Every engine attempt runs behind panic isolation. When the primary
/// (default) engine panics or trips an injected fault, the solve is
/// retried once on the naive oracle engine (`engine_fallback` marks such
/// reports); a panic surviving the retry becomes [`SolveError::Engine`].
pub fn decide_governed(
    setting: &PdeSetting,
    input: &Instance,
    plan: &SolvePlan,
    governor: &Governor,
) -> Result<SolveReport, SolveError> {
    decide_governed_scheduled(setting, input, plan, None, governor)
}

/// [`decide_governed`] with an optional stratified [`DepSchedule`] for the
/// chase of the data-exchange path (derived by `pde-analysis`'s
/// `forward_schedule` over this setting's forward dependencies). The
/// other solver kinds, and the naive fallback engine, ignore it.
pub fn decide_governed_scheduled(
    setting: &PdeSetting,
    input: &Instance,
    plan: &SolvePlan,
    schedule: Option<&DepSchedule>,
    governor: &Governor,
) -> Result<SolveReport, SolveError> {
    let start = Instant::now();
    let primary = pde_chase::default_chase_engine();
    let first = isolate(|| attempt(setting, input, plan, primary, governor, schedule));
    // Retry-with-degradation: a panic or an injected fault on the primary
    // engine gets one retry on the naive oracle engine. Precondition
    // errors and genuine budget stops are deterministic — retrying would
    // only spend more budget on the same outcome.
    let retryable = match &first {
        Err(_) => true,
        Ok(Ok(r)) => matches!(r.undecided, Some(StopReason::FaultInjected { .. })),
        Ok(Err(_)) => false,
    };
    let outcome = if retryable && primary != ChaseEngine::Naive {
        match isolate(|| attempt(setting, input, plan, ChaseEngine::Naive, governor, schedule)) {
            Ok(res) => res.map(|mut r| {
                r.engine_fallback = true;
                r
            }),
            Err(e) => Err(SolveError::Engine(e)),
        }
    } else {
        match first {
            Ok(res) => res,
            Err(e) => Err(SolveError::Engine(e)),
        }
    };
    outcome.map(|mut r| {
        r.elapsed = start.elapsed();
        r.governor = governor.report();
        r
    })
}

/// One engine attempt: dispatch to the governed solver for the plan's
/// kind and normalize the outcome into a [`SolveReport`] (a governor stop
/// becomes `undecided`, every other solver error surfaces as a
/// precondition error).
fn attempt(
    setting: &PdeSetting,
    input: &Instance,
    plan: &SolvePlan,
    engine: ChaseEngine,
    governor: &Governor,
    schedule: Option<&DepSchedule>,
) -> Result<SolveReport, SolveError> {
    let start = Instant::now();
    let wrap = |e: &dyn fmt::Display| SolveError::Precondition(e.to_string());
    let report = |exists, witness, chase_stats, search, undecided| SolveReport {
        kind: plan.kind,
        exists,
        witness,
        elapsed: start.elapsed(),
        chase_stats,
        search,
        undecided,
        engine_fallback: false,
        governor: GovernorReport::default(),
    };

    match plan.kind {
        SolverKind::DataExchange => {
            match data_exchange::solve_data_exchange_governed_scheduled(
                setting,
                input,
                plan.chase_limits,
                engine,
                governor,
                schedule,
            ) {
                Ok(out) => Ok(report(
                    Some(out.exists),
                    out.canonical,
                    Some(out.chase_stats),
                    None,
                    None,
                )),
                Err(DataExchangeError::Stopped(reason)) => {
                    Ok(report(None, None, None, None, Some(reason)))
                }
                Err(e) => Err(wrap(&e)),
            }
        }
        SolverKind::Tractable => {
            match tractable::exists_solution_governed(setting, input, engine, governor) {
                Ok(out) => Ok(report(
                    Some(out.exists),
                    out.witness,
                    Some(out.stats.chase_stats),
                    None,
                    None,
                )),
                Err(TractableError::Stopped(reason)) => {
                    Ok(report(None, None, None, None, Some(reason)))
                }
                Err(e) => Err(wrap(&e)),
            }
        }
        SolverKind::AssignmentSearch => {
            match assignment::solve_governed(setting, input, engine, governor) {
                Ok(out) => {
                    let search = SearchSummary {
                        branches: out.stats.nodes,
                        candidates_checked: out.stats.candidates_checked,
                        prunes: out.stats.prunes,
                    };
                    Ok(report(
                        Some(out.exists),
                        out.witness,
                        Some(out.stats.chase_stats),
                        Some(search),
                        None,
                    ))
                }
                Err(AssignmentError::Stopped(reason)) => {
                    Ok(report(None, None, None, None, Some(reason)))
                }
                Err(e) => Err(wrap(&e)),
            }
        }
        SolverKind::GenericSearch => {
            let out = generic::solve_governed(setting, input, plan.limits, governor)
                .map_err(|e| wrap(&e))?;
            let gs = out.stats();
            let search = SearchSummary {
                branches: gs.nodes,
                candidates_checked: gs.candidates_checked,
                prunes: gs.memo_hits + gs.ts_prunes + gs.egd_failures,
            };
            let (exists, witness, undecided) = match out {
                GenericOutcome::Solved { witness, .. } => (Some(true), Some(witness), None),
                GenericOutcome::NoSolution { .. } => (Some(false), None, None),
                GenericOutcome::Unknown { .. } => (None, None, None),
                GenericOutcome::Stopped { reason, .. } => (None, None, Some(reason)),
            };
            Ok(report(exists, witness, None, Some(search), undecided))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_relational::parse_instance;

    #[test]
    fn selects_data_exchange() {
        let p = PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::DataExchange);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn selects_tractable() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::Tractable);
        assert_eq!(r.exists, Some(true));
        assert!(is_solution(&p, &input, &r.witness.unwrap()));
    }

    #[test]
    fn selects_assignment_search() {
        let p = PdeSetting::parse(
            "source D/2; source S/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w); P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "D(a1, a2). S(u, u). E(u, u).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::AssignmentSearch);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn selects_generic_search() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::GenericSearch);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn all_kinds_display() {
        for k in [
            SolverKind::DataExchange,
            SolverKind::Tractable,
            SolverKind::AssignmentSearch,
            SolverKind::GenericSearch,
        ] {
            assert!(!format!("{k}").is_empty());
        }
    }

    #[test]
    fn precondition_errors_surface() {
        let p = PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        let input = parse_instance(p.schema(), "E(?0, a).").unwrap();
        assert!(decide(&p, &input).is_err());
    }

    #[test]
    fn governed_deadline_reports_undecided_for_every_solver_kind() {
        use pde_runtime::GovernorConfig;
        let cases = [
            // (schema, sigma_st, sigma_ts, sigma_t, input): one per kind.
            (
                "source E/2; target H/2;",
                "E(x, y) -> H(x, y)",
                "",
                "",
                "E(a, b).",
            ),
            (
                "source E/2; target H/2;",
                "E(x, z), E(z, y) -> H(x, y)",
                "H(x, y) -> E(x, y)",
                "",
                "E(a, a).",
            ),
            (
                "source D/2; source S/2; source E/2; target P/4;",
                "D(x, y) -> exists z, w . P(x, z, y, w)",
                "P(x, z, y, w) -> E(z, w); P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
                "",
                "D(a1, a2). S(u, u). E(u, u).",
            ),
            (
                "source E/2; target H/2;",
                "E(x, y) -> H(x, y)",
                "H(x, y) -> E(x, y)",
                "H(x, y), H(x, z) -> y = z",
                "E(a, b).",
            ),
        ];
        for (schema, st, ts, t, src) in cases {
            let p = PdeSetting::parse(schema, st, ts, t).unwrap();
            let input = parse_instance(p.schema(), src).unwrap();
            let plan = SolvePlan::for_setting(&p);
            let governor = Governor::new(GovernorConfig {
                deadline: Some(Duration::ZERO),
                ..GovernorConfig::default()
            });
            let before = input.clone();
            let r = decide_governed(&p, &input, &plan, &governor).unwrap();
            assert_eq!(r.exists, None, "{:?} must be undecided", plan.kind);
            assert!(
                matches!(r.undecided, Some(StopReason::DeadlineExceeded { .. })),
                "{:?}: {:?}",
                plan.kind,
                r.undecided
            );
            assert!(r.governor.stops >= 1);
            assert_eq!(input, before, "input must not be poisoned");
        }
    }

    #[test]
    fn ungoverned_decide_still_reports_governor_zeros() {
        let p = PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.exists, Some(true));
        assert!(!r.engine_fallback);
        assert!(r.undecided.is_none());
        assert_eq!(r.governor.stops, 0);
        assert_eq!(r.governor.deadline_remaining, None);
    }

    #[cfg(feature = "fault-injection")]
    mod faults {
        use super::*;
        use pde_runtime::{FaultPlan, GovernorConfig};

        fn chase_heavy_setting() -> (PdeSetting, Instance) {
            let p = PdeSetting::parse(
                "source E/2; target H/2;",
                "E(x, y) -> H(x, y)",
                "",
                "H(x, y), H(y, z) -> H(x, z)",
            )
            .unwrap();
            let input =
                parse_instance(p.schema(), "E(a, b). E(b, c). E(c, d). E(d, e). E(e, a).").unwrap();
            (p, input)
        }

        #[test]
        fn panic_in_trigger_falls_back_to_naive_engine() {
            let (p, input) = chase_heavy_setting();
            let plan = SolvePlan::for_setting(&p);
            let ungoverned = decide_with_plan(&p, &input, &plan).unwrap();
            let governor = Governor::with_faults(
                GovernorConfig::default(),
                FaultPlan {
                    panic_in_trigger_at_step: Some(1),
                    ..FaultPlan::default()
                },
            );
            let r = decide_governed(&p, &input, &plan, &governor).unwrap();
            // The fault is one-shot: the retry on the naive engine decides.
            assert!(r.engine_fallback);
            assert_eq!(r.exists, ungoverned.exists);
        }

        #[test]
        fn alloc_fault_retries_then_decides() {
            let (p, input) = chase_heavy_setting();
            let plan = SolvePlan::for_setting(&p);
            let governor = Governor::with_faults(
                GovernorConfig::default(),
                FaultPlan {
                    fail_alloc_at_step: Some(1),
                    ..FaultPlan::default()
                },
            );
            let r = decide_governed(&p, &input, &plan, &governor).unwrap();
            assert!(r.engine_fallback);
            assert_eq!(r.exists, Some(true));
            assert!(r.governor.faults_fired >= 1);
        }

        #[test]
        fn cancel_fault_is_a_genuine_stop_no_retry() {
            let (p, input) = chase_heavy_setting();
            let plan = SolvePlan::for_setting(&p);
            let governor = Governor::with_faults(
                GovernorConfig::default(),
                FaultPlan {
                    cancel_at_round: Some(1),
                    ..FaultPlan::default()
                },
            );
            let r = decide_governed(&p, &input, &plan, &governor).unwrap();
            // Cancellation (even injected) is not an engine failure — it
            // must not be retried away.
            assert!(!r.engine_fallback);
            assert_eq!(r.exists, None);
            assert!(matches!(r.undecided, Some(StopReason::Cancelled)));
        }
    }
}
