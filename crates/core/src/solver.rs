//! Solver façade: pick the right algorithm from the setting's
//! classification and report what ran.
//!
//! | Setting shape                           | Algorithm (module)          |
//! |-----------------------------------------|-----------------------------|
//! | Σts = ∅ (data exchange)                 | chase ([`crate::data_exchange`]) |
//! | Σt = ∅, (Σst, Σts) ∈ `C_tract`          | Fig. 3 ([`crate::tractable`])    |
//! | Σt = ∅, outside `C_tract`               | null-assignment search ([`crate::assignment`]) |
//! | Σt ≠ ∅                                  | witness-chase search ([`crate::generic`]) |
//!
//! The first two are polynomial; the last two are complete exponential
//! searches, matching the NP-completeness results of §3.

use crate::assignment;
use crate::data_exchange;
use crate::generic::{self, GenericLimits, GenericOutcome};
use crate::setting::PdeSetting;
use crate::tractable;
use pde_chase::{ChaseLimits, ChaseStats};
use pde_relational::Instance;
use std::fmt;
use std::time::{Duration, Instant};

/// Which algorithm the façade selected.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SolverKind {
    /// Plain data-exchange chase (Σts = ∅).
    DataExchange,
    /// The polynomial `ExistsSolution` of Fig. 3.
    Tractable,
    /// Complete null-assignment search (Σt = ∅, outside `C_tract`).
    AssignmentSearch,
    /// Complete nondeterministic-witness chase search (Σt ≠ ∅).
    GenericSearch,
}

impl fmt::Display for SolverKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverKind::DataExchange => write!(f, "data-exchange chase"),
            SolverKind::Tractable => write!(f, "ExistsSolution (C_tract)"),
            SolverKind::AssignmentSearch => write!(f, "null-assignment search"),
            SolverKind::GenericSearch => write!(f, "witness-chase search"),
        }
    }
}

/// Result of [`decide`].
#[derive(Clone, Debug)]
pub struct SolveReport {
    /// The algorithm that ran.
    pub kind: SolverKind,
    /// `Some(answer)` when decided; `None` when a resource limit stopped
    /// the complete search early.
    pub exists: Option<bool>,
    /// A materialized solution, when one was found.
    pub witness: Option<Instance>,
    /// Wall-clock time of the solve call.
    pub elapsed: Duration,
    /// Chase engine counters (rounds, triggers fired / skipped-by-delta,
    /// egd merges) when the selected algorithm is chase-based
    /// (data-exchange and `C_tract` paths); `None` for the complete
    /// searches, which run many small exploratory chases.
    pub chase_stats: Option<ChaseStats>,
}

/// Errors from the façade (the per-solver errors, unified).
#[derive(Clone, Debug)]
pub enum SolveError {
    /// Input contains nulls or another per-solver precondition failed.
    Precondition(String),
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Precondition(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// A precomputed routing decision plus resource budgets, so repeated
/// solves of one setting skip the per-call classification work
/// (`PdeSetting::classification` rebuilds the dependency graph and the
/// `C_tract` report every time).
///
/// Obtain one with [`SolvePlan::for_setting`] (runs the classification
/// once), or from a verified static complexity certificate (the
/// `pde-analysis` planner derives the budgets from Lemma 1's chase bound).
#[derive(Clone, Copy, Debug)]
pub struct SolvePlan {
    /// The algorithm to dispatch to, decided ahead of time.
    pub kind: SolverKind,
    /// Budgets for the complete searches.
    pub limits: GenericLimits,
    /// Budget/pre-sizing for the chase-based paths (the data-exchange
    /// solver chases Σst ∪ Σt under these limits).
    pub chase_limits: ChaseLimits,
}

impl SolvePlan {
    /// Classify `setting` once and fix the routing, with default budgets.
    pub fn for_setting(setting: &PdeSetting) -> SolvePlan {
        let kind = if setting.is_data_exchange() {
            SolverKind::DataExchange
        } else if setting.classification().tractable() {
            SolverKind::Tractable
        } else if setting.has_no_target_constraints() {
            SolverKind::AssignmentSearch
        } else {
            SolverKind::GenericSearch
        };
        SolvePlan {
            kind,
            limits: GenericLimits::default(),
            chase_limits: ChaseLimits::default(),
        }
    }
}

/// Decide `SOL(P)` for `input`, automatically selecting the algorithm.
pub fn decide(setting: &PdeSetting, input: &Instance) -> Result<SolveReport, SolveError> {
    decide_with_limits(setting, input, GenericLimits::default())
}

/// [`decide`] with explicit limits for the complete searches.
pub fn decide_with_limits(
    setting: &PdeSetting,
    input: &Instance,
    limits: GenericLimits,
) -> Result<SolveReport, SolveError> {
    let mut plan = SolvePlan::for_setting(setting);
    plan.limits = limits;
    decide_with_plan(setting, input, &plan)
}

/// Decide `SOL(P)` following a precomputed [`SolvePlan`]: no
/// re-classification, chase structures bounded by the plan's chase
/// limits, search budgets taken from the plan.
///
/// The caller is responsible for the plan matching the setting (pair a
/// certificate-derived plan with `verify_certificate` first); a
/// mismatched plan surfaces as a solver precondition error, never a wrong
/// answer.
pub fn decide_with_plan(
    setting: &PdeSetting,
    input: &Instance,
    plan: &SolvePlan,
) -> Result<SolveReport, SolveError> {
    let start = Instant::now();
    let wrap = |e: &dyn fmt::Display| SolveError::Precondition(e.to_string());

    match plan.kind {
        SolverKind::DataExchange => {
            let out =
                data_exchange::solve_data_exchange_with_limits(setting, input, plan.chase_limits)
                    .map_err(|e| wrap(&e))?;
            Ok(SolveReport {
                kind: SolverKind::DataExchange,
                exists: Some(out.exists),
                witness: out.canonical,
                elapsed: start.elapsed(),
                chase_stats: Some(out.chase_stats),
            })
        }
        SolverKind::Tractable => {
            let out = tractable::exists_solution(setting, input).map_err(|e| wrap(&e))?;
            Ok(SolveReport {
                kind: SolverKind::Tractable,
                exists: Some(out.exists),
                witness: out.witness,
                elapsed: start.elapsed(),
                chase_stats: Some(out.stats.chase_stats),
            })
        }
        SolverKind::AssignmentSearch => {
            let out = assignment::solve(setting, input).map_err(|e| wrap(&e))?;
            Ok(SolveReport {
                kind: SolverKind::AssignmentSearch,
                exists: Some(out.exists),
                witness: out.witness,
                elapsed: start.elapsed(),
                chase_stats: None,
            })
        }
        SolverKind::GenericSearch => {
            let out = generic::solve(setting, input, plan.limits).map_err(|e| wrap(&e))?;
            let (exists, witness) = match out {
                GenericOutcome::Solved { witness, .. } => (Some(true), Some(witness)),
                GenericOutcome::NoSolution { .. } => (Some(false), None),
                GenericOutcome::Unknown { .. } => (None, None),
            };
            Ok(SolveReport {
                kind: SolverKind::GenericSearch,
                exists,
                witness,
                elapsed: start.elapsed(),
                chase_stats: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_relational::parse_instance;

    #[test]
    fn selects_data_exchange() {
        let p = PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::DataExchange);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn selects_tractable() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::Tractable);
        assert_eq!(r.exists, Some(true));
        assert!(is_solution(&p, &input, &r.witness.unwrap()));
    }

    #[test]
    fn selects_assignment_search() {
        let p = PdeSetting::parse(
            "source D/2; source S/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w); P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "D(a1, a2). S(u, u). E(u, u).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::AssignmentSearch);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn selects_generic_search() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        let r = decide(&p, &input).unwrap();
        assert_eq!(r.kind, SolverKind::GenericSearch);
        assert_eq!(r.exists, Some(true));
    }

    #[test]
    fn all_kinds_display() {
        for k in [
            SolverKind::DataExchange,
            SolverKind::Tractable,
            SolverKind::AssignmentSearch,
            SolverKind::GenericSearch,
        ] {
            assert!(!format!("{k}").is_empty());
        }
    }

    #[test]
    fn precondition_errors_surface() {
        let p = PdeSetting::parse("source E/2; target H/2;", "E(x, y) -> H(x, y)", "", "").unwrap();
        let input = parse_instance(p.schema(), "E(?0, a).").unwrap();
        assert!(decide(&p, &input).is_err());
    }
}
