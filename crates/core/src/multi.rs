//! Multi-PDE settings: several source peers exchanging data with one
//! target peer (paper §2).
//!
//! A multi-PDE setting is a family `P_1 = (S_1, T, Σ_{s1 t}, Σ_{t s1},
//! Σ_{t1}), …, P_n` over pairwise disjoint source schemas. A target
//! instance `J'` is a solution for `((I_1, …, I_n), J)` iff it is a
//! solution for `(I_m, J)` in every `P_m` — and, as the paper observes,
//! iff it is a solution for `(I_1 ∪ ⋯ ∪ I_n, J)` in the *union* setting
//! whose constraint sets are the unions of the per-peer ones. The
//! [`MultiPdeSetting::to_single`] construction implements that reduction,
//! so every solver in this crate applies to multi-peer exchanges
//! unchanged.

use crate::setting::{PdeSetting, SettingError};
use crate::solution::{check_solution, SolutionViolation};
use pde_constraints::Dependency;
use pde_relational::{Instance, RelId, Schema};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The constraints of one source peer against the shared target.
#[derive(Clone, Debug)]
pub struct PeerConstraints {
    /// Human-readable peer name (for reports).
    pub name: String,
    /// This peer's Σst.
    pub sigma_st: Vec<pde_constraints::Tgd>,
    /// This peer's Σts.
    pub sigma_ts: Vec<pde_constraints::Tgd>,
    /// This peer's Σt.
    pub sigma_t: Vec<Dependency>,
}

/// A multi-PDE setting over one combined schema: the union of the pairwise
/// disjoint source schemas `S_1, …, S_n` plus the target schema `T`.
#[derive(Clone, Debug)]
pub struct MultiPdeSetting {
    schema: Arc<Schema>,
    peers: Vec<PeerConstraints>,
}

impl MultiPdeSetting {
    /// Build a multi-PDE setting; validates each peer's constraints as a
    /// PDE setting over the combined schema and checks that the peers'
    /// source relations are pairwise disjoint (the paper's disjointness
    /// requirement on `S_1, …, S_n`).
    pub fn new(
        schema: Arc<Schema>,
        peers: Vec<PeerConstraints>,
    ) -> Result<MultiPdeSetting, MultiPdeError> {
        let mut claimed: BTreeSet<RelId> = BTreeSet::new();
        for (i, p) in peers.iter().enumerate() {
            // Validate orientation etc. by building the per-peer setting.
            PdeSetting::new(
                schema.clone(),
                p.sigma_st.clone(),
                p.sigma_ts.clone(),
                p.sigma_t.clone(),
            )
            .map_err(|e| MultiPdeError::Peer { index: i, error: e })?;
            let mine = source_rels_of(&p.sigma_st, &p.sigma_ts);
            for r in mine {
                if !claimed.insert(r) {
                    return Err(MultiPdeError::OverlappingSources {
                        peer: p.name.clone(),
                        relation: schema.name(r).as_str(),
                    });
                }
            }
        }
        Ok(MultiPdeSetting { schema, peers })
    }

    /// The combined schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The peers.
    pub fn peers(&self) -> &[PeerConstraints] {
        &self.peers
    }

    /// Per-peer view as a PDE setting.
    pub fn peer_setting(&self, index: usize) -> PdeSetting {
        let p = &self.peers[index];
        PdeSetting::new(
            self.schema.clone(),
            p.sigma_st.clone(),
            p.sigma_ts.clone(),
            p.sigma_t.clone(),
        )
        .expect("validated at construction")
    }

    /// The union construction: a single PDE setting with the same solution
    /// space (paper §2).
    pub fn to_single(&self) -> PdeSetting {
        let mut st = Vec::new();
        let mut ts = Vec::new();
        let mut t = Vec::new();
        for p in &self.peers {
            st.extend(p.sigma_st.iter().cloned());
            ts.extend(p.sigma_ts.iter().cloned());
            t.extend(p.sigma_t.iter().cloned());
        }
        PdeSetting::new(self.schema.clone(), st, ts, t).expect("validated at construction")
    }

    /// Is `candidate` a solution for `input` per the multi-PDE definition
    /// (a solution for `(I_m, J)` in every peer's setting)?
    pub fn check_multi_solution(
        &self,
        input: &Instance,
        candidate: &Instance,
    ) -> Result<(), (usize, SolutionViolation)> {
        for i in 0..self.peers.len() {
            let p = self.peer_setting(i);
            check_solution(&p, input, candidate).map_err(|v| (i, v))?;
        }
        Ok(())
    }
}

/// The source relations mentioned by a peer's constraints.
fn source_rels_of(st: &[pde_constraints::Tgd], ts: &[pde_constraints::Tgd]) -> BTreeSet<RelId> {
    let mut out = BTreeSet::new();
    for t in st {
        out.extend(t.premise.atoms.iter().map(|a| a.rel));
    }
    for t in ts {
        out.extend(t.conclusion.atoms.iter().map(|a| a.rel));
    }
    out
}

/// Multi-PDE construction errors.
#[derive(Debug)]
pub enum MultiPdeError {
    /// A peer's constraints failed PDE validation.
    Peer {
        /// Peer index.
        index: usize,
        /// Underlying error.
        error: SettingError,
    },
    /// Two peers' constraints mention the same source relation, violating
    /// schema disjointness.
    OverlappingSources {
        /// The later peer.
        peer: String,
        /// The shared relation.
        relation: String,
    },
}

impl std::fmt::Display for MultiPdeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MultiPdeError::Peer { index, error } => write!(f, "peer {index}: {error}"),
            MultiPdeError::OverlappingSources { peer, relation } => {
                write!(f, "peer {peer} reuses source relation {relation}")
            }
        }
    }
}

impl std::error::Error for MultiPdeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_constraints::parser::parse_tgds;
    use pde_relational::{parse_instance, parse_schema};

    fn two_peer_setting() -> MultiPdeSetting {
        let schema = Arc::new(parse_schema("source A/2; source B/2; target H/2;").unwrap());
        let p1 = PeerConstraints {
            name: "alpha".into(),
            sigma_st: parse_tgds(&schema, "A(x, y) -> H(x, y)").unwrap(),
            sigma_ts: vec![],
            sigma_t: vec![],
        };
        let p2 = PeerConstraints {
            name: "beta".into(),
            sigma_st: parse_tgds(&schema, "B(x, y) -> H(y, x)").unwrap(),
            sigma_ts: parse_tgds(&schema, "H(x, y) -> B(y, x)").unwrap(),
            sigma_t: vec![],
        };
        MultiPdeSetting::new(schema, vec![p1, p2]).unwrap()
    }

    #[test]
    fn union_setting_collects_all_constraints() {
        let m = two_peer_setting();
        let u = m.to_single();
        assert_eq!(u.sigma_st().len(), 2);
        assert_eq!(u.sigma_ts().len(), 1);
    }

    #[test]
    fn multi_solution_iff_union_solution() {
        let m = two_peer_setting();
        let u = m.to_single();
        let input = parse_instance(m.schema(), "A(a, b). B(c, d).").unwrap();
        // Candidates: all subsets of a small H universe.
        let h_facts = ["H(a, b).", "H(d, c).", "H(b, a)."];
        for mask in 0u8..8 {
            let mut src = String::from("A(a, b). B(c, d). ");
            for (i, f) in h_facts.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    src.push_str(f);
                }
            }
            let cand = parse_instance(m.schema(), &src).unwrap();
            let multi_ok = m.check_multi_solution(&input, &cand).is_ok();
            let union_ok = is_solution(&u, &input, &cand);
            assert_eq!(multi_ok, union_ok, "mask {mask}");
        }
    }

    #[test]
    fn per_peer_violations_are_attributed() {
        let m = two_peer_setting();
        let input = parse_instance(m.schema(), "A(a, b). B(c, d).").unwrap();
        // Missing H(d, c) violates peer beta's Σst (index 1).
        let cand = parse_instance(m.schema(), "A(a, b). B(c, d). H(a, b).").unwrap();
        let (peer, _) = m.check_multi_solution(&input, &cand).unwrap_err();
        assert_eq!(peer, 1);
    }

    #[test]
    fn overlapping_source_relations_rejected() {
        let schema = Arc::new(parse_schema("source A/2; target H/2;").unwrap());
        let mk = |name: &str| PeerConstraints {
            name: name.into(),
            sigma_st: parse_tgds(&schema, "A(x, y) -> H(x, y)").unwrap(),
            sigma_ts: vec![],
            sigma_t: vec![],
        };
        let err = MultiPdeSetting::new(schema.clone(), vec![mk("p1"), mk("p2")]).unwrap_err();
        assert!(matches!(err, MultiPdeError::OverlappingSources { .. }));
    }

    #[test]
    fn solving_the_union_solves_the_multi_setting() {
        let m = two_peer_setting();
        let u = m.to_single();
        // Peer alpha forces H(a, b), which peer beta's Σts only accepts
        // when B(b, a) is present — the cross-peer interaction.
        let no = parse_instance(m.schema(), "A(a, b). B(c, d).").unwrap();
        assert!(!crate::assignment::solve(&u, &no).unwrap().exists);
        let input = parse_instance(m.schema(), "A(a, b). B(b, a). B(c, d).").unwrap();
        let out = crate::assignment::solve(&u, &input).unwrap();
        assert!(out.exists);
        let w = out.witness.unwrap();
        assert!(m.check_multi_solution(&input, &w).is_ok());
    }
}
