//! Certain answers of monotone queries (paper Def. 4, Theorem 2).
//!
//! `t ∈ certain(q, (I, J))` iff `t ∈ q(J')` for **every** solution `J'`.
//! Both complete solvers enumerate a family `F` of solutions such that
//! every solution contains a homomorphic, constant-preserving image of some
//! member of `F` (for Σt = ∅: the images of `J_can`; in general: the leaves
//! of the nondeterministic-witness chase). For a monotone query `q` and a
//! *ground* tuple `t`, `t ∈ q(K)` and a constant-preserving homomorphism
//! `K → J'` imply `t ∈ q(J')`; hence
//!
//! ```text
//! certain(q, (I, J)) = ⋂ { ground answers of q on K : K ∈ F }.
//! ```
//!
//! This realizes Theorem 2's coNP procedure constructively: a tuple is
//! *refuted* by exhibiting one family member whose answers omit it.
//! When no solution exists, every tuple is vacuously certain; the outcome
//! flags this case instead of trying to enumerate an infinite set.

use crate::assignment::{self, AssignmentError, DisjunctiveProblem};
use crate::generic::{self, GenericError, GenericLimits};
use crate::setting::PdeSetting;
use pde_relational::{Instance, Peer, UnionQuery, Value};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::ControlFlow;

/// Errors of the certain-answer computation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CertainError {
    /// The query mentions non-target relations.
    QueryNotOverTarget,
    /// Underlying assignment-solver error.
    Assignment(AssignmentError),
    /// Underlying generic-solver error.
    Generic(GenericError),
    /// The solution space could not be exhausted within the limits, so the
    /// intersection is not known to be complete.
    Undecided,
}

impl fmt::Display for CertainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertainError::QueryNotOverTarget => {
                write!(
                    f,
                    "certain answers are defined for queries over the target schema"
                )
            }
            CertainError::Assignment(e) => write!(f, "{e}"),
            CertainError::Generic(e) => write!(f, "{e}"),
            CertainError::Undecided => {
                write!(f, "solution enumeration hit its resource limit")
            }
        }
    }
}

impl std::error::Error for CertainError {}

impl From<AssignmentError> for CertainError {
    fn from(e: AssignmentError) -> Self {
        CertainError::Assignment(e)
    }
}

impl From<GenericError> for CertainError {
    fn from(e: GenericError) -> Self {
        CertainError::Generic(e)
    }
}

/// The certain answers of a query on an input pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CertainOutcome {
    /// Does any solution exist? When `false` the certain answers are
    /// vacuously "all tuples"; `answers` is empty and callers must consult
    /// this flag.
    pub solution_exists: bool,
    /// The ground certain answers (meaningful when `solution_exists`).
    pub answers: BTreeSet<Vec<Value>>,
    /// Number of family members examined.
    pub solutions_examined: usize,
}

impl CertainOutcome {
    /// For a Boolean query: the certain truth value. Vacuously `true` when
    /// no solution exists (every solution satisfies q).
    pub fn certain_bool(&self) -> bool {
        !self.solution_exists || self.answers.contains(&Vec::new())
    }

    /// Is `t` a certain answer (vacuously yes without solutions)?
    pub fn is_certain(&self, t: &[Value]) -> bool {
        !self.solution_exists || self.answers.contains(t)
    }
}

/// Compute the certain answers of a union of conjunctive queries over the
/// target schema. Chooses the assignment solver when Σt = ∅ and the
/// generic search otherwise.
pub fn certain_answers(
    setting: &PdeSetting,
    input: &Instance,
    query: &UnionQuery,
    limits: GenericLimits,
) -> Result<CertainOutcome, CertainError> {
    if !query
        .disjuncts
        .iter()
        .all(|q| q.over_peer(setting.schema(), Peer::Target))
    {
        return Err(CertainError::QueryNotOverTarget);
    }
    let mut acc: Option<BTreeSet<Vec<Value>>> = None;
    let mut examined = 0usize;
    let mut intersect = |sol: &Instance| -> ControlFlow<()> {
        examined += 1;
        let ground: BTreeSet<Vec<Value>> = query
            .eval(sol)
            .into_iter()
            .filter(|t| t.iter().all(Value::is_const))
            .collect();
        let next = match acc.take() {
            None => ground,
            Some(prev) => prev.intersection(&ground).cloned().collect(),
        };
        let empty = next.is_empty();
        acc = Some(next);
        // Once the intersection is empty it stays empty.
        if empty {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };

    if setting.has_no_target_constraints() {
        let problem = DisjunctiveProblem::from_setting(setting)?;
        assignment::for_each_solution(&problem, input, &mut intersect)?;
    } else {
        let (_, exhausted) = generic::for_each_solution(setting, input, limits, &mut intersect)?;
        // `intersect` breaking early (empty intersection) is fine; only an
        // un-exhausted space with a nonempty running intersection is
        // genuinely undecided.
        if !exhausted && acc.as_ref().is_none_or(|a| !a.is_empty()) {
            return Err(CertainError::Undecided);
        }
    }

    Ok(match acc {
        None => CertainOutcome {
            solution_exists: false,
            answers: BTreeSet::new(),
            solutions_examined: 0,
        },
        Some(answers) => CertainOutcome {
            solution_exists: true,
            answers,
            solutions_examined: examined,
        },
    })
}

/// Brute-force *soundness oracle* for tests: enumerate every target
/// instance over the input's active domain (up to `max_universe` candidate
/// facts) that is a solution, and intersect the query answers over them.
///
/// Because genuine solutions may also use values outside the active
/// domain, the returned set is a **superset** of the certain answers — the
/// real implementation's output must be contained in it, and must hold in
/// every solution this oracle finds. Panics if the fact universe exceeds
/// `max_universe` (the enumeration is exponential).
pub fn brute_force_certain_superset(
    setting: &PdeSetting,
    input: &Instance,
    query: &UnionQuery,
    max_universe: usize,
) -> (bool, BTreeSet<Vec<Value>>) {
    let schema = setting.schema();
    let adom: Vec<Value> = input.active_domain().into_iter().collect();
    // Build the universe of candidate target facts.
    let mut universe: Vec<(pde_relational::RelId, pde_relational::Tuple)> = Vec::new();
    for rel in schema.rels_of(Peer::Target) {
        let arity = schema.arity(rel) as usize;
        if arity > 0 && adom.is_empty() {
            continue;
        }
        let mut idx = vec![0usize; arity];
        loop {
            let vals: Vec<Value> = idx.iter().map(|i| adom[*i]).collect();
            let t = pde_relational::Tuple::new(vals);
            if !input.contains(rel, &t) {
                universe.push((rel, t));
            }
            let mut p = 0;
            loop {
                if p == arity || adom.is_empty() {
                    break;
                }
                idx[p] += 1;
                if idx[p] < adom.len() {
                    break;
                }
                idx[p] = 0;
                p += 1;
            }
            if arity == 0 || adom.is_empty() || p == arity {
                break;
            }
        }
    }
    assert!(
        universe.len() <= max_universe,
        "fact universe too large for brute force: {}",
        universe.len()
    );
    let mut exists = false;
    let mut acc: Option<BTreeSet<Vec<Value>>> = None;
    for mask in 0u64..(1u64 << universe.len()) {
        let mut cand = input.clone();
        for (b, (rel, t)) in universe.iter().enumerate() {
            if mask & (1 << b) != 0 {
                cand.insert(*rel, t.clone());
            }
        }
        if crate::solution::is_solution(setting, input, &cand) {
            exists = true;
            let ground: BTreeSet<Vec<Value>> = query
                .eval(&cand)
                .into_iter()
                .filter(|t| t.iter().all(Value::is_const))
                .collect();
            acc = Some(match acc.take() {
                None => ground,
                Some(prev) => prev.intersection(&ground).cloned().collect(),
            });
        }
    }
    (exists, acc.unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_instance, parse_query};

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    fn uq(p: &PdeSetting, src: &str) -> UnionQuery {
        parse_query(p.schema(), src).unwrap().into()
    }

    #[test]
    fn paper_example_certain_bool() {
        // From the paper: q = ∃x∃y∃z (H(x,y) ∧ H(y,z)).
        // certain(q, ({E(a,a)}, ∅)) = true;
        // certain(q, ({E(a,b), E(b,c), E(a,c)}, ∅)) = false.
        let p = example1();
        let q = uq(&p, "H(x, y), H(y, z)");
        let loopy = parse_instance(p.schema(), "E(a, a).").unwrap();
        let out = certain_answers(&p, &loopy, &q, GenericLimits::default()).unwrap();
        assert!(out.solution_exists);
        assert!(out.certain_bool());
        let tri = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let out = certain_answers(&p, &tri, &q, GenericLimits::default()).unwrap();
        assert!(out.solution_exists);
        assert!(
            !out.certain_bool(),
            "the solution {{H(a,c)}} has no H-path of length 2"
        );
    }

    #[test]
    fn vacuous_certainty_without_solutions() {
        let p = example1();
        let q = uq(&p, "H(x, y)");
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let out = certain_answers(&p, &input, &q, GenericLimits::default()).unwrap();
        assert!(!out.solution_exists);
        assert!(out.certain_bool());
        assert!(out.is_certain(&[Value::constant("anything"), Value::constant("at all")]));
    }

    #[test]
    fn certain_answers_with_head_variables() {
        let p = example1();
        // q(x, y) :- H(x, y): H(a, c) is forced in every solution.
        let q = uq(&p, "q(x, y) :- H(x, y)");
        let tri = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let out = certain_answers(&p, &tri, &q, GenericLimits::default()).unwrap();
        assert!(out.solution_exists);
        assert!(out
            .answers
            .contains(&vec![Value::constant("a"), Value::constant("c")]));
        // H(a, b) holds in some solutions but not the minimal one.
        assert!(!out.is_certain(&[Value::constant("a"), Value::constant("b")]));
    }

    #[test]
    fn brute_force_oracle_agrees_on_tiny_inputs() {
        let p = example1();
        let q = uq(&p, "q(x, y) :- H(x, y)");
        for src in [
            "E(a, a).",
            "E(a, b). E(b, a).",
            "E(a, b). E(b, c). E(a, c).",
        ] {
            let input = parse_instance(p.schema(), src).unwrap();
            let fast = certain_answers(&p, &input, &q, GenericLimits::default()).unwrap();
            let (bf_exists, bf_superset) = brute_force_certain_superset(&p, &input, &q, 16);
            assert_eq!(fast.solution_exists, bf_exists, "{src}");
            if fast.solution_exists {
                assert!(
                    fast.answers.is_subset(&bf_superset),
                    "{src}: {:?} ⊄ {:?}",
                    fast.answers,
                    bf_superset
                );
                // For this setting solutions never need out-of-adom values
                // (Σts is full), so the oracle is exact.
                assert_eq!(fast.answers, bf_superset, "{src}");
            }
        }
    }

    #[test]
    fn certain_with_target_constraints_uses_generic_solver() {
        let p = PdeSetting::parse(
            "source E/2; source W/2; target H/2;",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, y) -> W(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        // H(a, ?) must merge with H(a, b) from J; W(a, b) supports it.
        let input = parse_instance(p.schema(), "E(a, q). H(a, b). W(a, b).").unwrap();
        let q = uq(&p, "q(x, y) :- H(x, y)");
        let out = certain_answers(&p, &input, &q, GenericLimits::default()).unwrap();
        assert!(out.solution_exists);
        assert!(out
            .answers
            .contains(&vec![Value::constant("a"), Value::constant("b")]));
    }

    #[test]
    fn union_queries_are_supported() {
        let p = example1();
        let q1 = parse_query(p.schema(), "q(x) :- H(x, y)").unwrap();
        let q2 = parse_query(p.schema(), "q(y) :- H(x, y)").unwrap();
        let q = UnionQuery::new(vec![q1, q2]);
        let tri = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let out = certain_answers(&p, &tri, &q, GenericLimits::default()).unwrap();
        // Every solution contains H(a, c): a is an endpoint via q1, c via q2.
        assert!(out.is_certain(&[Value::constant("a")]));
        assert!(out.is_certain(&[Value::constant("c")]));
        assert!(!out.is_certain(&[Value::constant("b")]));
    }

    #[test]
    fn source_queries_rejected() {
        let p = example1();
        let q = uq(&p, "E(x, y)");
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        assert_eq!(
            certain_answers(&p, &input, &q, GenericLimits::default()).unwrap_err(),
            CertainError::QueryNotOverTarget
        );
    }
}
