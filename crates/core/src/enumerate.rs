//! Solution enumeration: list distinct (minimal-family) solutions.
//!
//! Both complete solvers internally enumerate a family of solutions with
//! the covering property (every solution contains a homomorphic image of a
//! family member). This module exposes that stream as a first-class API —
//! deduplicated up to null renaming, optionally cored, capped at a limit —
//! for exploration, debugging, and the `solution_space` example.

use crate::assignment::{self, AssignmentError, DisjunctiveProblem};
use crate::generic::{self, GenericError, GenericLimits};
use crate::setting::PdeSetting;
use pde_relational::{core_of, Instance};
use std::collections::HashSet;
use std::fmt;
use std::ops::ControlFlow;

/// Options for [`enumerate_solutions`].
#[derive(Clone, Copy, Debug)]
pub struct EnumerateOptions {
    /// Stop after this many distinct solutions.
    pub max_solutions: usize,
    /// Replace each solution by its core before deduplication (only
    /// applied when Σt contains no tgds; see
    /// [`crate::solution::core_solution`]).
    pub core: bool,
    /// Node limits for the generic search (settings with Σt ≠ ∅).
    pub limits: GenericLimits,
}

impl Default for EnumerateOptions {
    fn default() -> Self {
        EnumerateOptions {
            max_solutions: 100,
            core: false,
            limits: GenericLimits::default(),
        }
    }
}

/// Enumeration errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EnumerateError {
    /// Underlying assignment-solver error.
    Assignment(AssignmentError),
    /// Underlying generic-solver error.
    Generic(GenericError),
}

impl fmt::Display for EnumerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnumerateError::Assignment(e) => write!(f, "{e}"),
            EnumerateError::Generic(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EnumerateError {}

impl From<AssignmentError> for EnumerateError {
    fn from(e: AssignmentError) -> Self {
        EnumerateError::Assignment(e)
    }
}

impl From<GenericError> for EnumerateError {
    fn from(e: GenericError) -> Self {
        EnumerateError::Generic(e)
    }
}

/// The outcome: the distinct solutions found (sorted smallest-first) and
/// whether the family was exhausted within the limits.
#[derive(Clone, Debug)]
pub struct SolutionFamily {
    /// Distinct solutions, ascending by fact count.
    pub solutions: Vec<Instance>,
    /// Was the enumeration exhaustive (no limit cut it short)?
    pub exhaustive: bool,
}

/// A rename-invariant key for deduplication: sorted fact strings with
/// nulls renumbered by first appearance.
fn dedup_key(k: &Instance) -> String {
    let mut lines: Vec<String> = k
        .facts()
        .map(|(rel, t)| format!("{}{t:?}", rel.0))
        .collect();
    lines.sort();
    let joined = lines.join(";");
    let mut ranks: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let mut out = String::with_capacity(joined.len());
    let bytes = joined.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if joined[i..].starts_with('⊥') {
            let start = i + '⊥'.len_utf8();
            let mut j = start;
            while j < bytes.len() && bytes[j].is_ascii_digit() {
                j += 1;
            }
            let id = joined[start..j].to_owned();
            let next = ranks.len();
            let rank = *ranks.entry(id).or_insert(next);
            out.push_str(&format!("¤{rank}¤"));
            i = j;
        } else {
            let ch = joined[i..]
                .chars()
                .next()
                .expect("i < joined.len() and on a char boundary: i only advances by len_utf8");
            out.push(ch);
            i += ch.len_utf8();
        }
    }
    out
}

/// Enumerate distinct solutions of the minimal family for `input` in
/// `setting`.
pub fn enumerate_solutions(
    setting: &PdeSetting,
    input: &Instance,
    options: EnumerateOptions,
) -> Result<SolutionFamily, EnumerateError> {
    let mut seen: HashSet<String> = HashSet::new();
    let mut solutions: Vec<Instance> = Vec::new();
    let core_allowed = options.core && setting.target_tgds().next().is_none();
    let mut truncated = false;
    let mut sink = |sol: &Instance| -> ControlFlow<()> {
        let candidate = if core_allowed {
            core_of(sol)
        } else {
            sol.clone()
        };
        if seen.insert(dedup_key(&candidate)) {
            solutions.push(candidate);
        }
        if solutions.len() >= options.max_solutions {
            truncated = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    };

    let exhausted = if setting.has_no_target_constraints() {
        let problem = DisjunctiveProblem::from_setting(setting)?;
        assignment::for_each_solution(&problem, input, &mut sink)?;
        !truncated
    } else {
        let (_, ex) = generic::for_each_solution(setting, input, options.limits, &mut sink)?;
        ex && !truncated
    };

    solutions.sort_by_key(Instance::fact_count);
    Ok(SolutionFamily {
        solutions,
        exhaustive: exhausted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_relational::parse_instance;

    fn marked_example() -> PdeSetting {
        PdeSetting::parse(
            "source S/2; target T/2;",
            "S(x1, x2) -> exists y . T(x1, y)",
            "T(x1, x2) -> exists w . S(w, x2)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn enumerates_distinct_solutions() {
        let p = marked_example();
        // S(a, b), S(c, b): T(a, ?) and T(c, ?) must map into column 2 of
        // S, i.e. both nulls go to b — plus Keep is never viable here.
        let input = parse_instance(p.schema(), "S(a, b). S(c, b).").unwrap();
        let fam = enumerate_solutions(&p, &input, EnumerateOptions::default()).unwrap();
        assert!(fam.exhaustive);
        assert!(!fam.solutions.is_empty());
        for s in &fam.solutions {
            assert!(is_solution(&p, &input, s));
        }
        // Sorted ascending by size.
        for w in fam.solutions.windows(2) {
            assert!(w[0].fact_count() <= w[1].fact_count());
        }
    }

    #[test]
    fn dedup_collapses_null_renamings() {
        let p = PdeSetting::parse(
            "source S/1; source W/1; target T/2;",
            "S(x) -> exists y . T(x, y)",
            "T(x, y) -> W(x)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "S(a). W(a).").unwrap();
        let fam = enumerate_solutions(&p, &input, EnumerateOptions::default()).unwrap();
        // Solutions: T(a, kept-null) and T(a, a). Exactly two distinct.
        assert_eq!(fam.solutions.len(), 2);
    }

    #[test]
    fn cap_truncates_and_reports() {
        let p = marked_example();
        let input = parse_instance(p.schema(), "S(a, b). S(a, c). S(d, b).").unwrap();
        let all = enumerate_solutions(&p, &input, EnumerateOptions::default()).unwrap();
        assert!(all.exhaustive);
        if all.solutions.len() > 1 {
            let capped = enumerate_solutions(
                &p,
                &input,
                EnumerateOptions {
                    max_solutions: 1,
                    ..EnumerateOptions::default()
                },
            )
            .unwrap();
            assert_eq!(capped.solutions.len(), 1);
            assert!(!capped.exhaustive);
        }
    }

    #[test]
    fn coring_shrinks_family_members() {
        let p = PdeSetting::parse(
            "source S/1; target T/2;",
            "S(x) -> exists y . T(x, y); S(x) -> T(x, x)",
            "",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "S(a).").unwrap();
        let plain = enumerate_solutions(&p, &input, EnumerateOptions::default()).unwrap();
        let cored = enumerate_solutions(
            &p,
            &input,
            EnumerateOptions {
                core: true,
                ..EnumerateOptions::default()
            },
        )
        .unwrap();
        let min_plain = plain.solutions.iter().map(Instance::fact_count).min();
        let min_cored = cored.solutions.iter().map(Instance::fact_count).min();
        assert!(min_cored <= min_plain);
        for s in &cored.solutions {
            assert!(is_solution(&p, &input, s));
        }
    }

    #[test]
    fn with_target_constraints_uses_generic_enumeration() {
        let p = PdeSetting::parse(
            "source E/2; source W/2; target H/2;",
            "E(x, y) -> exists z . H(x, z)",
            "H(x, y) -> W(x, y)",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, q). W(a, b). W(a, c).").unwrap();
        let fam = enumerate_solutions(&p, &input, EnumerateOptions::default()).unwrap();
        assert!(fam.exhaustive);
        // H(a,b) and H(a,c) are both viable (but not together: egd).
        assert!(fam.solutions.len() >= 2);
        for s in &fam.solutions {
            assert!(is_solution(&p, &input, s));
        }
    }

    #[test]
    fn no_solutions_yields_empty_family() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        let fam = enumerate_solutions(&p, &input, EnumerateOptions::default()).unwrap();
        assert!(fam.exhaustive);
        assert!(fam.solutions.is_empty());
    }
}
