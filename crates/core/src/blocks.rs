//! Block decomposition of instances with nulls (paper Def. 10, Prop. 1).
//!
//! The *graph of the nulls* of an instance `K` joins two nulls when they
//! co-occur in a tuple. A **block** is either (a) the set of tuples carrying
//! nulls from one connected component, or (b) the set of all null-free
//! tuples. Proposition 1: a homomorphism `K → I` exists iff each block maps
//! into `I` independently — nulls in different blocks never constrain each
//! other. Theorem 6 shows that for `C_tract` settings every block of
//! `I_can` has a constant number of nulls, which is what makes the
//! per-block homomorphism checks of `ExistsSolution` polynomial.

use pde_relational::{Instance, NullId, RelId, Tuple, Value};
use std::collections::HashMap;

/// A block of tuples, with its null inventory.
#[derive(Clone, Debug)]
pub struct Block {
    /// The facts of the block.
    pub facts: Vec<(RelId, Tuple)>,
    /// The distinct nulls occurring in the block (empty for the ground
    /// block).
    pub nulls: Vec<NullId>,
}

impl Block {
    /// Number of facts.
    pub fn len(&self) -> usize {
        self.facts.len()
    }

    /// Is the block empty?
    pub fn is_empty(&self) -> bool {
        self.facts.is_empty()
    }

    /// Is this the null-free (ground) block?
    pub fn is_ground(&self) -> bool {
        self.nulls.is_empty()
    }

    /// Materialize this block as an instance over `schema`.
    pub fn to_instance(&self, schema: &std::sync::Arc<pde_relational::Schema>) -> Instance {
        let mut out = Instance::new(schema.clone());
        for (rel, t) in &self.facts {
            out.insert(*rel, t.clone());
        }
        out
    }
}

/// Union-find over null ids.
struct UnionFind {
    parent: HashMap<NullId, NullId>,
}

impl UnionFind {
    fn new() -> UnionFind {
        UnionFind {
            parent: HashMap::new(),
        }
    }

    fn find(&mut self, x: NullId) -> NullId {
        let p = *self.parent.entry(x).or_insert(x);
        if p == x {
            return x;
        }
        let root = self.find(p);
        self.parent.insert(x, root);
        root
    }

    fn union(&mut self, a: NullId, b: NullId) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent.insert(ra, rb);
        }
    }
}

/// Decompose `inst` into its blocks. The ground block (if non-empty) comes
/// first, followed by one block per connected component of the null graph,
/// in ascending order of their smallest null id.
pub fn blocks(inst: &Instance) -> Vec<Block> {
    let mut span = pde_trace::span("blocks.decompose").field("facts", inst.fact_count());
    let mut uf = UnionFind::new();
    // Union pass over the packed columns — no tuples materialized.
    let _ = inst.for_each_fact(|_, ids| {
        let mut prev: Option<NullId> = None;
        for id in ids {
            if let Value::Null(n) = id.value() {
                match prev {
                    Some(p) => uf.union(p, n),
                    None => {
                        uf.find(n); // ensure singleton components are registered
                    }
                }
                prev = Some(n);
            }
        }
        std::ops::ControlFlow::Continue(())
    });
    let mut ground = Block {
        facts: Vec::new(),
        nulls: Vec::new(),
    };
    let mut by_root: HashMap<NullId, Block> = HashMap::new();
    for (rel, t) in inst.facts() {
        let first_null = t.nulls().next();
        match first_null {
            None => ground.facts.push((rel, t)),
            Some(n) => {
                let root = uf.find(n);
                by_root
                    .entry(root)
                    .or_insert_with(|| Block {
                        facts: Vec::new(),
                        nulls: Vec::new(),
                    })
                    .facts
                    .push((rel, t));
            }
        }
    }
    // Record each block's distinct nulls.
    let mut out = Vec::new();
    if !ground.facts.is_empty() {
        out.push(ground);
    }
    let mut keyed: Vec<(NullId, Block)> = by_root.into_iter().collect();
    for (_, b) in &mut keyed {
        let mut ns: Vec<NullId> = b
            .facts
            .iter()
            .flat_map(|(_, t)| t.nulls().collect::<Vec<_>>())
            .collect();
        ns.sort_unstable();
        ns.dedup();
        b.nulls = ns;
    }
    keyed.sort_by_key(|(_, b)| b.nulls[0]);
    out.extend(keyed.into_iter().map(|(_, b)| b));
    span.record_field("blocks", out.len());
    out
}

/// Proposition 1, used by `ExistsSolution`: there is a homomorphism from
/// `from` to `to` iff each block of `from` maps into `to` independently.
/// Returns the per-block results; the conjunction is the overall answer.
pub fn blockwise_hom_exists(from: &Instance, to: &Instance) -> bool {
    let schema = from.schema().clone();
    blocks(from).iter().all(|b| {
        let bi = b.to_instance(&schema);
        pde_relational::instance_hom_exists(&bi, to)
    })
}

/// The maximum number of nulls in any block (0 for ground instances) —
/// the quantity Theorem 6 bounds by a constant for `C_tract` settings.
pub fn max_block_nulls(inst: &Instance) -> usize {
    blocks(inst)
        .iter()
        .map(|b| b.nulls.len())
        .max()
        .unwrap_or(0)
}

/// Find a per-block homomorphism map for every block of `from` into `to`,
/// or `None` if some block has none. Blocks are mutually independent
/// (Prop. 1), so above `parallel_threshold` blocks the checks fan out over
/// `std::thread::scope`; any failing block cancels the rest.
pub fn collect_block_homs(
    from: &Instance,
    to: &Instance,
    parallel_threshold: usize,
) -> Option<std::collections::HashMap<pde_relational::NullId, pde_relational::Value>> {
    use std::sync::atomic::{AtomicBool, Ordering};
    let schema = from.schema().clone();
    let bs = blocks(from);
    if bs.len() < parallel_threshold {
        let mut out = std::collections::HashMap::new();
        for (bi_idx, b) in bs.iter().enumerate() {
            let _span = pde_trace::span("block.hom_search")
                .field("block", bi_idx)
                .field("nulls", b.nulls.len())
                .field("facts", b.len());
            let bi = b.to_instance(&schema);
            out.extend(pde_relational::instance_hom(&bi, to)?);
        }
        return Some(out);
    }
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(4)
        .min(bs.len());
    let failed = AtomicBool::new(false);
    let chunk = bs.len().div_ceil(threads);
    let results: Vec<Option<Vec<std::collections::HashMap<_, _>>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = bs
            .chunks(chunk)
            .enumerate()
            .map(|(ci, part)| {
                let schema = &schema;
                let failed = &failed;
                scope.spawn(move || {
                    let mut maps = Vec::with_capacity(part.len());
                    for (off, b) in part.iter().enumerate() {
                        if failed.load(Ordering::Relaxed) {
                            return None;
                        }
                        // Worker-thread spans self-account on their own
                        // thread; they are not subtracted from the
                        // spawning span's self time.
                        let _span = pde_trace::span("block.hom_search")
                            .field("block", ci * chunk + off)
                            .field("nulls", b.nulls.len())
                            .field("facts", b.len());
                        let bi = b.to_instance(schema);
                        match pde_relational::instance_hom(&bi, to) {
                            Some(m) => maps.push(m),
                            None => {
                                failed.store(true, Ordering::Relaxed);
                                return None;
                            }
                        }
                    }
                    Some(maps)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .expect("block-check worker panicked; per-block hom search is panic-free")
            })
            .collect()
    });
    let mut out = std::collections::HashMap::new();
    for r in results {
        out.extend(r?.into_iter().flatten());
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{instance_hom_exists, parse_instance, parse_schema, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2;").unwrap())
    }

    #[test]
    fn ground_instance_is_one_block() {
        let s = schema();
        let i = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
        let bs = blocks(&i);
        assert_eq!(bs.len(), 1);
        assert!(bs[0].is_ground());
        assert_eq!(bs[0].len(), 2);
    }

    #[test]
    fn connected_nulls_share_a_block() {
        let s = schema();
        // ?0-?1 linked via a tuple; ?2 separate; (a, b) ground.
        let i = parse_instance(&s, "E(?0, ?1). E(?1, a). E(?2, b). E(a, b).").unwrap();
        let bs = blocks(&i);
        assert_eq!(bs.len(), 3);
        assert!(bs[0].is_ground());
        assert_eq!(
            bs[1].nulls,
            vec![pde_relational::NullId(0), pde_relational::NullId(1)]
        );
        assert_eq!(bs[1].len(), 2);
        assert_eq!(bs[2].nulls, vec![pde_relational::NullId(2)]);
        assert_eq!(max_block_nulls(&i), 2);
    }

    #[test]
    fn transitive_connection_through_tuples() {
        let s = schema();
        // ?0-?1 in one tuple, ?1-?2 in another: all three connected.
        let i = parse_instance(&s, "E(?0, ?1). E(?1, ?2).").unwrap();
        let bs = blocks(&i);
        assert_eq!(bs.len(), 1);
        assert_eq!(bs[0].nulls.len(), 3);
    }

    #[test]
    fn blocks_partition_the_facts() {
        let s = schema();
        let i = parse_instance(&s, "E(?0, a). E(?1, b). E(c, d). E(?0, ?1).").unwrap();
        let bs = blocks(&i);
        let total: usize = bs.iter().map(Block::len).sum();
        assert_eq!(total, i.fact_count());
    }

    #[test]
    fn proposition1_agrees_with_direct_hom() {
        let s = schema();
        let ground = parse_instance(&s, "E(a, b). E(b, a). E(c, c).").unwrap();
        for pat_src in [
            "E(?0, ?1). E(?1, ?0).",          // maps onto the 2-cycle
            "E(?0, ?0).",                     // needs the self-loop
            "E(?0, ?1). E(?1, ?2).",          // path of length 2
            "E(?0, a).",                      // anchored at constant a
            "E(a, c).",                       // absent ground fact
            "E(?0, ?1). E(?2, ?2). E(a, b).", // mixed blocks
        ] {
            let pat = parse_instance(&s, pat_src).unwrap();
            assert_eq!(
                blockwise_hom_exists(&pat, &ground),
                instance_hom_exists(&pat, &ground),
                "{pat_src}"
            );
        }
    }

    #[test]
    fn collect_block_homs_sequential_and_parallel_agree() {
        let s = schema();
        let ground = parse_instance(&s, "E(a, b). E(b, a). E(c, c).").unwrap();
        // Many independent 1-null blocks plus a ground block.
        let mut src = String::from("E(a, b). ");
        for i in 0..100 {
            src.push_str(&format!("E(?{i}, a). "));
        }
        let pat = parse_instance(&s, &src).unwrap();
        let seq = super::collect_block_homs(&pat, &ground, usize::MAX).unwrap();
        let par = super::collect_block_homs(&pat, &ground, 1).unwrap();
        assert_eq!(seq.len(), par.len());
        // Both maps must induce valid homomorphisms.
        for h in [seq, par] {
            let img = pat.map_values(|v| match v {
                pde_relational::Value::Null(n) => h.get(&n).copied().unwrap_or(v),
                c => c,
            });
            assert!(img.contained_in(&ground));
        }
    }

    #[test]
    fn collect_block_homs_fails_fast_in_parallel() {
        let s = schema();
        let ground = parse_instance(&s, "E(a, b).").unwrap();
        let mut src = String::new();
        for i in 0..80 {
            src.push_str(&format!("E(?{i}, a). ")); // unsatisfiable: no (_, a)
        }
        let pat = parse_instance(&s, &src).unwrap();
        assert!(super::collect_block_homs(&pat, &ground, 1).is_none());
        assert!(super::collect_block_homs(&pat, &ground, usize::MAX).is_none());
    }

    #[test]
    fn block_instances_roundtrip() {
        let s = schema();
        let i = parse_instance(&s, "E(?0, a). E(b, c).").unwrap();
        let bs = blocks(&i);
        let mut union = pde_relational::Instance::new(s.clone());
        for b in &bs {
            let bi = b.to_instance(&s);
            union = union.union(&bi);
        }
        assert!(union.same_facts(&i));
    }
}
