//! Peer data exchange (PODS 2005): the paper's primary contribution.
//!
//! This crate defines PDE settings and implements all the paper's
//! algorithms:
//!
//! * [`setting`]: `P = (S, T, Σst, Σts, Σt)` with validation and static
//!   classification (Def. 1, Def. 9);
//! * [`solution`]: solution checking (Def. 2);
//! * [`blocks`](mod@blocks): block decomposition and Prop. 1;
//! * [`tractable`]: the polynomial `ExistsSolution` of Fig. 3 (Thms. 4–6);
//! * [`assignment`]: complete solver for Σt = ∅ (the Theorem 1 NP
//!   procedure, specialized to no target constraints), including the §4
//!   disjunctive extension;
//! * placeholder for further modules.

pub mod assignment;
pub mod blocks;
pub mod setting;
pub mod solution;
pub mod tractable;

pub use assignment::{
    solve as assignment_solve, AssignmentError, AssignmentOutcome, DisjunctiveProblem, SearchStats,
};
pub use blocks::{blocks, blockwise_hom_exists, max_block_nulls, Block};
pub use setting::{PdeSetting, SettingClass, SettingError};
pub use solution::{check_solution, core_solution, is_solution, SolutionViolation};
pub use tractable::{
    exists_solution, exists_solution_from_chased, exists_solution_unchecked, TractableError,
    TractableOutcome, TractableStats,
};

pub mod generic;
pub use generic::{GenericError, GenericLimits, GenericOutcome, GenericStats};

pub mod certain;
pub use certain::{brute_force_certain_superset, certain_answers, CertainError, CertainOutcome};

pub mod bundle;
pub mod data_exchange;
pub mod enumerate;
pub mod multi;
pub mod pdms;
pub mod small;
pub mod solver;
pub use bundle::{split_sections, Bundle, BundleError, BundleSources, Section};
pub use data_exchange::{
    certain_answers_data_exchange, solve_data_exchange, solve_data_exchange_governed,
    solve_data_exchange_governed_scheduled, DataExchangeError, DataExchangeOutcome,
};
pub use enumerate::{enumerate_solutions, EnumerateError, EnumerateOptions, SolutionFamily};
pub use multi::{MultiPdeError, MultiPdeSetting, PeerConstraints};
pub use pdms::{Pdms, StorageDescription};
pub use small::{shrink_solution, ShrinkError};
pub use solver::{
    decide, decide_governed, decide_governed_scheduled, decide_with_limits, decide_with_plan,
    SearchSummary, SolveError, SolvePlan, SolveReport, SolverKind,
};
