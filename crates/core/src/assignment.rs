//! Complete solver for PDE settings with no target constraints.
//!
//! **Idea.** Chase `(I, J)` with Σst to get the canonical target `J_can`
//! (Lemma 3: `J_can` maps homomorphically into *every* solution). Because
//! Σts conclusions range over the *fixed* source instance, satisfaction of
//! Σts is antitone in the target: if `J'` is a solution and
//! `h : J_can → J'` is the Lemma 3 homomorphism, then `h(J_can)` is itself
//! a solution (it contains `J`, homomorphic images preserve Σst, and it is
//! a subinstance of `J'` so it fires no Σts premise `J'` doesn't). Hence a
//! solution exists **iff** some constant-preserving image of `J_can`
//! satisfies Σts — a search over assignments of the nulls of `J_can`.
//!
//! **Search space.** Each null maps to a constant of `adom(I)` or stays a
//! null (`Keep`). Values outside `adom(I)` are interchangeable with `Keep`:
//! a Σts conclusion can only be witnessed inside `I`, so a non-`adom(I)`
//! value can never help, and merging nulls only fires *more* premises.
//! This makes the space finite: `(|adom(I)| + 1)^{#nulls}`, matching the
//! NP upper bound of Theorem 1 (for Σt = ∅).
//!
//! **Pruning.** A Σts violation whose premise match uses only *determined*
//! facts (facts whose nulls are all assigned) is permanent — later
//! assignments add facts and merge nothing that could remove the match, and
//! the conclusions range over the fixed `I`. The search therefore checks,
//! after each assignment, only premise matches anchored at newly determined
//! facts, and backtracks on any violation.
//!
//! The solver accepts *disjunctive* Σts dependencies (the §4 extension):
//! everything above goes through verbatim with "some disjunct extendable
//! into `I`" as the satisfaction test.

use crate::setting::PdeSetting;
use pde_chase::{chase_tgds_governed, null_gen_for, ChaseEngine, ChaseOutcome};
use pde_constraints::{DisjunctiveTgd, Orientation, Tgd};
use pde_relational::{
    exists_hom, for_each_hom, Assignment, FxBuildHasher, Instance, NullId, Peer, RelId, Schema,
    Term, Tuple, Value,
};
use pde_runtime::{Governor, StopReason};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

/// Why the assignment solver refused to run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AssignmentError {
    /// The setting has target constraints; use the generic search solver.
    HasTargetConstraints,
    /// The input instance contains labeled nulls.
    InputNotGround,
    /// The Σst chase exceeded its limits (cannot happen for valid
    /// settings; surfaced rather than swallowed).
    ChaseDidNotTerminate,
    /// A disjunctive dependency failed validation.
    InvalidDependency(String),
    /// The runtime governor stopped the chase or the search (deadline,
    /// memory budget, cancellation, or an injected fault). The question is
    /// *undecided*, not answered.
    Stopped(StopReason),
}

impl fmt::Display for AssignmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AssignmentError::HasTargetConstraints => {
                write!(
                    f,
                    "assignment solver requires a setting with no target constraints"
                )
            }
            AssignmentError::InputNotGround => write!(f, "input instance contains nulls"),
            AssignmentError::ChaseDidNotTerminate => write!(f, "chase resource limit exceeded"),
            AssignmentError::InvalidDependency(m) => write!(f, "invalid dependency: {m}"),
            AssignmentError::Stopped(reason) => write!(f, "search stopped: {reason}"),
        }
    }
}

impl std::error::Error for AssignmentError {}

/// Search statistics.
#[derive(Clone, Debug, Default)]
pub struct SearchStats {
    /// Search-tree nodes visited (assignments attempted).
    pub nodes: usize,
    /// Branches pruned by the determined-violation check.
    pub prunes: usize,
    /// Complete candidate solutions reached and handed to the sink.
    pub candidates_checked: usize,
    /// Nulls in `J_can` (the search depth).
    pub null_count: usize,
    /// Facts in `J_can`.
    pub jcan_facts: usize,
    /// Engine counters of the Σst chase that built `J_can` (absorbed so
    /// `solve --stats` reports real chase work for this solver too).
    pub chase_stats: pde_chase::ChaseStats,
}

impl SearchStats {
    /// Export the search counters into a [`pde_trace::MetricsRegistry`]
    /// under the `search.` prefix, plus the absorbed Σst chase counters
    /// under `chase.`.
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        let u = |x: usize| u64::try_from(x).unwrap_or(u64::MAX);
        reg.add("search.nodes", u(self.nodes));
        reg.add("search.prunes", u(self.prunes));
        reg.add("search.candidates_checked", u(self.candidates_checked));
        reg.set_max("search.null_count", u(self.null_count));
        reg.set_max("search.jcan_facts", u(self.jcan_facts));
        self.chase_stats.export_metrics(reg);
    }
}

/// Outcome of a solve call.
#[derive(Clone, Debug)]
pub struct AssignmentOutcome {
    /// Does a solution exist?
    pub exists: bool,
    /// When `exists`: a materialized solution (combined instance).
    pub witness: Option<Instance>,
    /// Search statistics.
    pub stats: SearchStats,
}

/// A PDE problem whose Σts may contain disjunctive tgds (the §4 boundary
/// extension). Plain settings lift via [`DisjunctiveProblem::from_setting`].
#[derive(Clone)]
pub struct DisjunctiveProblem {
    schema: Arc<Schema>,
    sigma_st: Vec<Tgd>,
    sigma_ts: Vec<DisjunctiveTgd>,
}

impl DisjunctiveProblem {
    /// Build and validate.
    pub fn new(
        schema: Arc<Schema>,
        sigma_st: Vec<Tgd>,
        sigma_ts: Vec<DisjunctiveTgd>,
    ) -> Result<DisjunctiveProblem, AssignmentError> {
        for t in &sigma_st {
            t.validate(&schema, Orientation::SourceToTarget)
                .map_err(|e| AssignmentError::InvalidDependency(e.to_string()))?;
        }
        for d in &sigma_ts {
            d.validate(&schema, Orientation::TargetToSource)
                .map_err(|e| AssignmentError::InvalidDependency(e.to_string()))?;
        }
        Ok(DisjunctiveProblem {
            schema,
            sigma_st,
            sigma_ts,
        })
    }

    /// Lift a plain setting (each Σts tgd becomes a single disjunct).
    ///
    /// Fails if the setting has target constraints.
    pub fn from_setting(setting: &PdeSetting) -> Result<DisjunctiveProblem, AssignmentError> {
        if !setting.has_no_target_constraints() {
            return Err(AssignmentError::HasTargetConstraints);
        }
        Ok(DisjunctiveProblem {
            schema: setting.schema().clone(),
            sigma_st: setting.sigma_st().to_vec(),
            sigma_ts: setting
                .sigma_ts()
                .iter()
                .map(DisjunctiveTgd::from_tgd)
                .collect(),
        })
    }

    /// The combined schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The source-to-target tgds.
    pub fn sigma_st(&self) -> &[Tgd] {
        &self.sigma_st
    }

    /// The (disjunctive) target-to-source dependencies.
    pub fn sigma_ts(&self) -> &[DisjunctiveTgd] {
        &self.sigma_ts
    }
}

/// Decide existence of a solution for `input` in `setting` (Σt must be
/// empty), returning a materialized witness when one exists.
pub fn solve(setting: &PdeSetting, input: &Instance) -> Result<AssignmentOutcome, AssignmentError> {
    let problem = DisjunctiveProblem::from_setting(setting)?;
    solve_disjunctive(&problem, input)
}

/// [`solve`] under an explicit chase engine (for the Σst chase) and
/// runtime governor, checked at every search node. A governor stop
/// surfaces as [`AssignmentError::Stopped`] — never as a yes/no answer.
pub fn solve_governed(
    setting: &PdeSetting,
    input: &Instance,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<AssignmentOutcome, AssignmentError> {
    let problem = DisjunctiveProblem::from_setting(setting)?;
    solve_disjunctive_governed(&problem, input, engine, governor)
}

/// [`solve`] for a disjunctive problem.
pub fn solve_disjunctive(
    problem: &DisjunctiveProblem,
    input: &Instance,
) -> Result<AssignmentOutcome, AssignmentError> {
    solve_disjunctive_governed(
        problem,
        input,
        pde_chase::default_chase_engine(),
        &Governor::unlimited(),
    )
}

/// [`solve_disjunctive`] under an explicit chase engine and runtime
/// governor.
pub fn solve_disjunctive_governed(
    problem: &DisjunctiveProblem,
    input: &Instance,
    engine: ChaseEngine,
    governor: &Governor,
) -> Result<AssignmentOutcome, AssignmentError> {
    let mut found = None;
    let stats = search(problem, input, engine, governor, |sol| {
        found = Some(sol.clone());
        ControlFlow::Break(())
    })?;
    Ok(AssignmentOutcome {
        exists: found.is_some(),
        witness: found,
        stats,
    })
}

/// Enumerate candidate solutions — the constant-preserving images of
/// `J_can` that are solutions. Every solution of the problem contains one
/// of the enumerated candidates, so for monotone queries the certain
/// answers are the intersection of the answers over this family.
pub fn for_each_solution(
    problem: &DisjunctiveProblem,
    input: &Instance,
    f: impl FnMut(&Instance) -> ControlFlow<()>,
) -> Result<SearchStats, AssignmentError> {
    search(
        problem,
        input,
        pde_chase::default_chase_engine(),
        &Governor::unlimited(),
        f,
    )
}

struct SearchCtx<'a, F> {
    problem: &'a DisjunctiveProblem,
    /// Nulls of `J_can` in assignment order.
    nulls: Vec<NullId>,
    /// Candidate constants: the source active domain of `I`.
    candidates: Vec<Value>,
    /// The target facts of `J_can`, with their null inventories.
    facts: Vec<FactState>,
    /// For each null, the facts it occurs in.
    occurrences: HashMap<NullId, Vec<usize>, FxBuildHasher>,
    /// Current assignment (`Keep` = maps to its own null value).
    assigned: HashMap<NullId, Value, FxBuildHasher>,
    /// The determined instance: `I` plus the images of determined facts.
    determined: Instance,
    /// Reference counts of determined target facts (merges).
    refcount: HashMap<(RelId, Tuple), usize, FxBuildHasher>,
    stats: SearchStats,
    sink: F,
    /// Resource governor, checked at every search node.
    governor: &'a Governor,
    /// Set when the governor stopped the search (distinguishes a governor
    /// stop from the sink breaking early).
    stopped: Option<StopReason>,
    /// The combined source instance (for conclusion checks the source part
    /// of `determined` is exactly `I`, so `determined` serves both roles).
    _input: &'a Instance,
}

enum NodeResult {
    Stop,
    Continue,
}

fn search(
    problem: &DisjunctiveProblem,
    input: &Instance,
    engine: ChaseEngine,
    governor: &Governor,
    f: impl FnMut(&Instance) -> ControlFlow<()>,
) -> Result<SearchStats, AssignmentError> {
    if !input.is_ground() {
        return Err(AssignmentError::InputNotGround);
    }
    let gen = null_gen_for(input);
    let st_res = chase_tgds_governed(input.clone(), &problem.sigma_st, &gen, engine, governor);
    if !st_res.is_success() {
        return Err(match st_res.outcome {
            ChaseOutcome::Stopped { reason } => AssignmentError::Stopped(reason),
            _ => AssignmentError::ChaseDidNotTerminate,
        });
    }
    let st_stats = st_res.stats;
    let jcan_combined = st_res.instance;

    // Collect target facts and their nulls.
    let mut facts: Vec<FactState> = Vec::new();
    let mut occurrences: HashMap<NullId, Vec<usize>, FxBuildHasher> = HashMap::default();
    let mut null_order: Vec<NullId> = Vec::new();
    let mut seen: BTreeSet<NullId> = BTreeSet::new();
    for (rel, t) in jcan_combined.facts_of(Peer::Target) {
        let nulls: Vec<NullId> = {
            let mut ns: Vec<NullId> = t.nulls().collect();
            ns.sort_unstable();
            ns.dedup();
            ns
        };
        let idx = facts.len();
        for n in &nulls {
            occurrences.entry(*n).or_default().push(idx);
            if seen.insert(*n) {
                null_order.push(*n);
            }
        }
        facts.push(FactState {
            rel,
            tuple: t,
            unassigned: nulls.len(),
        });
    }

    let candidates: Vec<Value> = input
        .active_domain_of(Peer::Source)
        .into_iter()
        .filter(Value::is_const)
        .collect();

    let mut ctx = SearchCtx {
        problem,
        nulls: null_order,
        candidates,
        facts,
        occurrences,
        assigned: HashMap::default(),
        determined: input.restrict(Peer::Source),
        refcount: HashMap::default(),
        stats: SearchStats::default(),
        sink: f,
        governor,
        stopped: None,
        _input: input,
    };
    ctx.stats.null_count = ctx.nulls.len();
    ctx.stats.jcan_facts = ctx.facts.len();
    ctx.stats.chase_stats.absorb(st_stats);

    // Seed the determined instance with the ground target facts of J_can
    // and check them; a violation here is unfixable (no nulls involved).
    let ground_facts: Vec<usize> = ctx
        .facts
        .iter()
        .enumerate()
        .filter(|(_, fs)| fs.unassigned == 0)
        .map(|(i, _)| i)
        .collect();
    let mut ok = true;
    for i in ground_facts {
        if !ctx.insert_determined(i) {
            ok = false;
            break;
        }
    }
    if ok {
        ctx.descend(0);
    }
    if let Some(reason) = ctx.stopped {
        return Err(AssignmentError::Stopped(reason));
    }
    Ok(ctx.stats)
}

struct FactState {
    rel: RelId,
    tuple: Tuple,
    unassigned: usize,
}

impl<F: FnMut(&Instance) -> ControlFlow<()>> SearchCtx<'_, F> {
    /// Image of fact `i` under the current assignment.
    fn image_of(&self, i: usize) -> (RelId, Tuple) {
        let fs = &self.facts[i];
        let t = fs.tuple.map(|v| match v {
            Value::Null(n) => self.assigned.get(&n).copied().unwrap_or(v),
            Value::Const(_) => v,
        });
        (fs.rel, t)
    }

    /// Insert the image of fact `i` into the determined instance and check
    /// for new Σts violations anchored at it. Returns `false` on violation
    /// (the fact stays inserted; the caller unwinds via
    /// [`SearchCtx::remove_determined`]).
    fn insert_determined(&mut self, i: usize) -> bool {
        let (rel, img) = self.image_of(i);
        let key = (rel, img.clone());
        let rc = self.refcount.entry(key).or_insert(0);
        *rc += 1;
        if *rc > 1 {
            return true; // already present: no new matches possible
        }
        self.determined.insert(rel, img.clone());
        self.check_anchor(rel, &img)
    }

    /// Undo [`SearchCtx::insert_determined`].
    fn remove_determined(&mut self, i: usize) {
        let (rel, img) = self.image_of(i);
        let key = (rel, img.clone());
        let rc = self
            .refcount
            .get_mut(&key)
            .expect("remove_determined only follows a matching insert_determined");
        *rc -= 1;
        if *rc == 0 {
            self.refcount.remove(&key);
            self.determined.remove(rel, &img);
        }
    }

    /// Check every Σts premise match that uses the new fact; `false` when
    /// a match has no extendable disjunct.
    fn check_anchor(&self, rel: RelId, img: &Tuple) -> bool {
        for d in &self.problem.sigma_ts {
            for (ai, atom) in d.premise.atoms.iter().enumerate() {
                if atom.rel != rel {
                    continue;
                }
                let Some(partial) = unify_atom_with_tuple(atom, img) else {
                    continue;
                };
                let rest: Vec<pde_relational::Atom> = d
                    .premise
                    .atoms
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| *j != ai)
                    .map(|(_, a)| a.clone())
                    .collect();
                let mut violated = false;
                let _ = for_each_hom(&rest, &self.determined, &partial, |h| {
                    let ok = d
                        .disjuncts
                        .iter()
                        .any(|dj| exists_hom(&dj.conjunction.atoms, &self.determined, h));
                    if ok {
                        ControlFlow::Continue(())
                    } else {
                        violated = true;
                        ControlFlow::Break(())
                    }
                });
                if violated {
                    return false;
                }
            }
        }
        true
    }

    /// DFS over nulls from `depth`.
    fn descend(&mut self, depth: usize) -> NodeResult {
        self.stats.nodes += 1;
        let _span = pde_trace::span("solver.branch")
            .field("solver", "assignment")
            .field("depth", depth)
            .field("node", self.stats.nodes);
        let bytes = if self.governor.tracks_memory() {
            self.determined.heap_bytes()
        } else {
            0
        };
        if let Err(reason) = self.governor.on_round(self.stats.nodes, bytes) {
            self.stopped = Some(reason);
            return NodeResult::Stop;
        }
        if depth == self.nulls.len() {
            // All facts determined and checked: the determined target part
            // plus `I` is a solution. Hand it to the sink.
            self.stats.candidates_checked += 1;
            let sol = self.determined.clone();
            debug_assert!(
                {
                    let st_ok = self
                        .problem
                        .sigma_st
                        .iter()
                        .all(|t| pde_chase::satisfies_tgd(&sol, t));
                    let ts_ok = self
                        .problem
                        .sigma_ts
                        .iter()
                        .all(|d| pde_chase::satisfies_disjunctive(&sol, d));
                    st_ok && ts_ok
                },
                "leaf must be a solution"
            );
            return match (self.sink)(&sol) {
                ControlFlow::Break(()) => NodeResult::Stop,
                ControlFlow::Continue(()) => NodeResult::Continue,
            };
        }
        let n = self.nulls[depth];
        // Candidate order: Keep first (smallest solutions first), then the
        // source constants.
        let mut options: Vec<Value> = Vec::with_capacity(self.candidates.len() + 1);
        options.push(Value::Null(n));
        options.extend(self.candidates.iter().copied());
        let occ = self.occurrences.get(&n).cloned().unwrap_or_default();
        for val in options {
            self.assigned.insert(n, val);
            let mut newly: Vec<usize> = Vec::new();
            for &fi in &occ {
                self.facts[fi].unassigned -= 1;
                if self.facts[fi].unassigned == 0 {
                    newly.push(fi);
                }
            }
            let mut ok = true;
            let mut inserted = 0usize;
            for &fi in &newly {
                inserted += 1;
                if !self.insert_determined(fi) {
                    ok = false;
                    break;
                }
            }
            let result = if ok {
                self.descend(depth + 1)
            } else {
                self.stats.prunes += 1;
                NodeResult::Continue
            };
            // Unwind.
            for &fi in newly.iter().take(inserted) {
                self.remove_determined(fi);
            }
            for &fi in &occ {
                self.facts[fi].unassigned += 1;
            }
            self.assigned.remove(&n);
            if matches!(result, NodeResult::Stop) {
                return NodeResult::Stop;
            }
        }
        NodeResult::Continue
    }
}

/// Unify an atom's terms with a concrete tuple, producing the induced
/// partial assignment; `None` when constants clash or a repeated variable
/// would need two values.
fn unify_atom_with_tuple(atom: &pde_relational::Atom, t: &Tuple) -> Option<Assignment> {
    let mut a = Assignment::new();
    for (i, term) in atom.terms.iter().enumerate() {
        let tv = t.get(i);
        match term {
            Term::Const(c) => {
                if Value::Const(*c) != tv {
                    return None;
                }
            }
            Term::Var(v) => match a.get(*v) {
                Some(prev) if prev != tv => return None,
                _ => a.bind(*v, tv),
            },
        }
    }
    Some(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_constraints::parse_disjunctive_tgd;
    use pde_relational::parse_instance;

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn example1_cases() {
        let p = example1();
        let no = parse_instance(p.schema(), "E(a, b). E(b, c).").unwrap();
        assert!(!solve(&p, &no).unwrap().exists);
        let yes = parse_instance(p.schema(), "E(a, a).").unwrap();
        let out = solve(&p, &yes).unwrap();
        assert!(out.exists);
        assert!(is_solution(&p, &yes, &out.witness.unwrap()));
        let tri = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let out = solve(&p, &tri).unwrap();
        assert!(out.exists);
        assert!(is_solution(&p, &tri, &out.witness.unwrap()));
    }

    #[test]
    fn agrees_with_tractable_solver_on_ctract_settings() {
        let p = example1();
        for src in [
            "E(a, b). E(b, c).",
            "E(a, a).",
            "E(a, b). E(b, c). E(a, c).",
            "E(a, b). E(b, a).",
            "E(a, b). E(b, c). E(c, a).",
            "",
        ] {
            let input = parse_instance(p.schema(), src).unwrap();
            let fast = crate::tractable::exists_solution(&p, &input)
                .unwrap()
                .exists;
            let slow = solve(&p, &input).unwrap().exists;
            assert_eq!(fast, slow, "disagreement on {src:?}");
        }
    }

    #[test]
    fn existential_st_requires_assignment() {
        // The paper's §4 marked-variable example:
        // Σst: S(x1, x2) -> exists y . T(x1, y)
        // Σts: T(x1, x2) -> exists w . S(w, x2)
        // T's null must map to some value v with S(w, v) in I.
        let p = PdeSetting::parse(
            "source S/2; target T/2;",
            "S(x1, x2) -> exists y . T(x1, y)",
            "T(x1, x2) -> exists w . S(w, x2)",
            "",
        )
        .unwrap();
        // S(a, b): T(a, ?n); need S(w, f(n)): assigning n := b works
        // (S(a, b) witnesses w = a, x2 = b); keeping the null fails.
        let input = parse_instance(p.schema(), "S(a, b).").unwrap();
        let out = solve(&p, &input).unwrap();
        assert!(out.exists);
        let w = out.witness.unwrap();
        assert!(is_solution(&p, &input, &w));
        assert!(w.is_ground(), "the null must be assigned to a constant");
    }

    #[test]
    fn keep_null_when_ts_ignores_it() {
        // Σts only constrains T's first column, so the null can stay.
        let p = PdeSetting::parse(
            "source S/1; source W/1; target T/2;",
            "S(x) -> exists y . T(x, y)",
            "T(x, y) -> W(x)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "S(a). W(a).").unwrap();
        let out = solve(&p, &input).unwrap();
        assert!(out.exists);
        let w = out.witness.unwrap();
        assert!(is_solution(&p, &input, &w));
        assert!(!w.is_ground(), "Keep branch found first (smallest witness)");
    }

    #[test]
    fn clique_reduction_tiny() {
        // Theorem 3 setting; I(G, k) for the triangle graph and k = 3:
        // solution exists iff G has a 3-clique. (The paper's printed Σts
        // omits the w-coordinate consistency tgd; without it any graph with
        // one edge admits a solution. We add it — see DESIGN.md.)
        let p = PdeSetting::parse(
            "source D/2; source S/2; source E/2; target P/4;",
            "D(x, y) -> exists z, w . P(x, z, y, w)",
            "P(x, z, y, w) -> E(z, w);
             P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2);
             P(x, z, y, w), P(y, z2, y2, w2) -> S(w, z2)",
            "",
        )
        .unwrap();
        // Triangle on {u, v, t}: D = inequality on {a1, a2, a3},
        // S = identity on V, E = symmetric edges.
        let tri = parse_instance(
            p.schema(),
            "D(a1, a2). D(a2, a1). D(a1, a3). D(a3, a1). D(a2, a3). D(a3, a2).
             S(u, u). S(v, v). S(t, t).
             E(u, v). E(v, u). E(u, t). E(t, u). E(v, t). E(t, v).",
        )
        .unwrap();
        let out = solve(&p, &tri).unwrap();
        assert!(out.exists, "triangle contains a 3-clique");
        // Path u - v - t has no 3-clique.
        let path = parse_instance(
            p.schema(),
            "D(a1, a2). D(a2, a1). D(a1, a3). D(a3, a1). D(a2, a3). D(a3, a2).
             S(u, u). S(v, v). S(t, t).
             E(u, v). E(v, u). E(v, t). E(t, v).",
        )
        .unwrap();
        assert!(!solve(&p, &path).unwrap().exists, "path has no 3-clique");
    }

    #[test]
    fn enumeration_yields_multiple_solutions() {
        let p = example1();
        let tri = parse_instance(p.schema(), "E(a, b). E(b, c). E(a, c).").unwrap();
        let problem = DisjunctiveProblem::from_setting(&p).unwrap();
        let mut count = 0usize;
        for_each_solution(&problem, &tri, |sol| {
            assert!(is_solution(&p, &tri, sol));
            count += 1;
            ControlFlow::Continue(())
        })
        .unwrap();
        // J_can = {H(a,c)} has no nulls: exactly one candidate solution.
        assert_eq!(count, 1);
    }

    #[test]
    fn disjunctive_ts_dependencies() {
        // C(x, u) -> R(u) | B(u): every "color" value used must be r or b.
        let schema = Arc::new(
            pde_relational::parse_schema("source V/1; source R/1; source B/1; target C/2;")
                .unwrap(),
        );
        let st =
            pde_constraints::parser::parse_tgds(&schema, "V(x) -> exists u . C(x, u)").unwrap();
        let ts = vec![parse_disjunctive_tgd(&schema, "C(x, u) -> R(u) | B(u)").unwrap()];
        let problem = DisjunctiveProblem::new(schema.clone(), st, ts).unwrap();
        let input = parse_instance(&schema, "V(n1). V(n2). R(r). B(b).").unwrap();
        let out = solve_disjunctive(&problem, &input).unwrap();
        assert!(out.exists);
        let w = out.witness.unwrap();
        assert!(w.is_ground(), "colors must be assigned");
        // Without any color constants there is no solution.
        let bad = parse_instance(&schema, "V(n1).").unwrap();
        assert!(!solve_disjunctive(&problem, &bad).unwrap().exists);
    }

    #[test]
    fn rejects_settings_with_target_constraints() {
        let p = PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, y) -> H(x, y)",
            "",
            "H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "E(a, b).").unwrap();
        assert_eq!(
            solve(&p, &input).unwrap_err(),
            AssignmentError::HasTargetConstraints
        );
    }

    #[test]
    fn governed_cancellation_is_undecided_not_answered() {
        use pde_runtime::{CancelToken, GovernorConfig};
        let p = example1();
        let input = parse_instance(p.schema(), "E(a, a).").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let governor = Governor::new(GovernorConfig {
            cancel: Some(token),
            ..GovernorConfig::default()
        });
        let err =
            solve_governed(&p, &input, pde_chase::default_chase_engine(), &governor).unwrap_err();
        assert!(matches!(
            err,
            AssignmentError::Stopped(StopReason::Cancelled)
        ));
    }

    #[test]
    fn stats_reflect_search() {
        let p = PdeSetting::parse(
            "source S/2; target T/2;",
            "S(x1, x2) -> exists y . T(x1, y)",
            "T(x1, x2) -> exists w . S(w, x2)",
            "",
        )
        .unwrap();
        let input = parse_instance(p.schema(), "S(a, b). S(b, c).").unwrap();
        let out = solve(&p, &input).unwrap();
        assert!(out.exists);
        assert_eq!(out.stats.null_count, 2);
        assert!(out.stats.nodes >= 2);
    }
}
