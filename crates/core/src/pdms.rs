//! The embedding of PDE settings into peer data management systems
//! (paper §2, "Relationship to PDMS").
//!
//! A PDMS in the sense of Halevy et al. has peers with visible schemas,
//! *storage descriptions* relating each peer's schema to its private local
//! sources (`R* = Q` equality, or `R* ⊆ Q` containment), and *peer
//! mappings* between peers. The paper shows every PDE setting `P` is the
//! PDMS `N(P)` with:
//!
//! * one local replica relation per peer relation;
//! * **equality** storage descriptions `S_i* = S_i` for the source peer —
//!   the source's data can never change;
//! * **containment** storage descriptions `T_j* ⊆ T_j` for the target
//!   peer — the target may be augmented;
//! * the dependencies of Σst ∪ Σts ∪ Σt as (inclusion) peer mappings.
//!
//! A *data instance* assigns the local replicas (here: the input `(I, J)`),
//! and a *consistent data instance* additionally assigns the visible peer
//! relations so that all storage descriptions and peer mappings hold. The
//! correspondence tested here is the paper's: `K` is a solution for
//! `(I, J)` in `P` iff assigning the visible relations from `K` yields a
//! consistent data instance of `N(P)` over locals `(I, J)`.

use crate::setting::PdeSetting;
use pde_chase::satisfies;
use pde_constraints::Dependency;
use pde_relational::{Instance, Peer, RelId};

/// A storage description relating a visible relation to its local replica.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StorageDescription {
    /// `R* = R`: the visible relation equals the local one.
    Equality(RelId),
    /// `R* ⊆ R`: the local relation is contained in the visible one.
    Containment(RelId),
}

impl StorageDescription {
    /// The relation this description governs.
    pub fn relation(&self) -> RelId {
        match self {
            StorageDescription::Equality(r) | StorageDescription::Containment(r) => *r,
        }
    }
}

/// A (two-peer) PDMS: storage descriptions plus peer mappings. The local
/// replicas share the visible schema, so local data and visible data are
/// both plain [`Instance`]s.
#[derive(Clone)]
pub struct Pdms {
    /// Storage descriptions, one per relation.
    pub storage: Vec<StorageDescription>,
    /// Peer mappings (inclusion mappings given as dependencies).
    pub peer_mappings: Vec<Dependency>,
}

impl Pdms {
    /// The §2 embedding `N(P)` of a PDE setting.
    pub fn embed(setting: &PdeSetting) -> Pdms {
        let schema = setting.schema();
        let storage = schema
            .rel_ids()
            .map(|r| match schema.peer(r) {
                Peer::Source => StorageDescription::Equality(r),
                Peer::Target => StorageDescription::Containment(r),
            })
            .collect();
        let peer_mappings = setting
            .sigma_st()
            .iter()
            .cloned()
            .map(Dependency::Tgd)
            .chain(setting.sigma_ts().iter().cloned().map(Dependency::Tgd))
            .chain(setting.sigma_t().iter().cloned())
            .collect();
        Pdms {
            storage,
            peer_mappings,
        }
    }

    /// Is `visible` a consistent data instance for local data `locals`?
    ///
    /// Checks every storage description (`=` or `⊆` per relation) and every
    /// peer mapping against the visible instance.
    pub fn is_consistent(&self, locals: &Instance, visible: &Instance) -> bool {
        for sd in &self.storage {
            let r = sd.relation();
            let local_rel = locals.relation(r);
            let vis_rel = visible.relation(r);
            match sd {
                StorageDescription::Equality(_) => {
                    if local_rel != vis_rel {
                        return false;
                    }
                }
                StorageDescription::Containment(_) => {
                    if !local_rel.iter().all(|t| vis_rel.contains(&t)) {
                        return false;
                    }
                }
            }
        }
        self.peer_mappings.iter().all(|d| satisfies(visible, d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solution::is_solution;
    use pde_relational::parse_instance;

    fn example1() -> PdeSetting {
        PdeSetting::parse(
            "source E/2; target H/2;",
            "E(x, z), E(z, y) -> H(x, y)",
            "H(x, y) -> E(x, y)",
            "",
        )
        .unwrap()
    }

    #[test]
    fn embedding_builds_expected_storage_descriptions() {
        let p = example1();
        let n = Pdms::embed(&p);
        let e = p.schema().rel_id("E").unwrap();
        let h = p.schema().rel_id("H").unwrap();
        assert!(n.storage.contains(&StorageDescription::Equality(e)));
        assert!(n.storage.contains(&StorageDescription::Containment(h)));
        assert_eq!(n.peer_mappings.len(), 2);
    }

    #[test]
    fn solutions_correspond_to_consistent_data_instances() {
        // The paper's correspondence, exercised over a small candidate
        // universe: K is a solution for (I, J) iff K is consistent for the
        // locals (I, J) in N(P).
        let p = example1();
        let n = Pdms::embed(&p);
        let input = parse_instance(p.schema(), "E(a, a). E(a, b).").unwrap();
        let h_universe = ["H(a, a).", "H(a, b).", "H(b, a)."];
        for mask in 0u8..8 {
            let mut src = String::from("E(a, a). E(a, b). ");
            for (i, f) in h_universe.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    src.push_str(f);
                }
            }
            let cand = parse_instance(p.schema(), &src).unwrap();
            assert_eq!(
                is_solution(&p, &input, &cand),
                n.is_consistent(&input, &cand),
                "mask {mask}"
            );
        }
    }

    #[test]
    fn source_equality_is_strict() {
        let p = example1();
        let n = Pdms::embed(&p);
        let locals = parse_instance(p.schema(), "E(a, a).").unwrap();
        // Growing the source violates the equality storage description —
        // this is exactly what distinguishes PDE from a containment-only
        // PDMS (the paper's explanation for the complexity jump).
        let grown = parse_instance(p.schema(), "E(a, a). E(b, b). H(a, a). H(b, b).").unwrap();
        assert!(!n.is_consistent(&locals, &grown));
        let ok = parse_instance(p.schema(), "E(a, a). H(a, a).").unwrap();
        assert!(n.is_consistent(&locals, &ok));
    }

    #[test]
    fn target_containment_allows_augmentation() {
        let p = example1();
        let n = Pdms::embed(&p);
        let locals = parse_instance(p.schema(), "E(a, a). H(a, a).").unwrap();
        // Dropping a local target fact from the visible instance violates
        // containment.
        let dropped = parse_instance(p.schema(), "E(a, a).").unwrap();
        assert!(!n.is_consistent(&locals, &dropped));
    }
}
