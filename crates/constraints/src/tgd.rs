//! Tuple-generating dependencies (tgds).
//!
//! A tgd is a formula `∀x̄ (φ(x̄) → ∃ȳ ψ(x̄, ȳ))` where `φ` and `ψ` are
//! conjunctions of atoms (paper §2). The three orientations used in a PDE
//! setting — source-to-target (Σst), target-to-source (Σts), and target
//! (Σt) — share this representation; [`Orientation`] records which schema
//! sides the premise and conclusion must live on, and
//! [`Tgd::validate`] enforces it.

use pde_relational::{Conjunction, Peer, Schema, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Which peer's relations the premise and conclusion of a tgd range over.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Orientation {
    /// Σst: premise over **S**, conclusion over **T**.
    SourceToTarget,
    /// Σts: premise over **T**, conclusion over **S**.
    TargetToSource,
    /// Σt (tgd part): premise and conclusion over **T**.
    TargetTarget,
}

impl Orientation {
    /// Peer of the premise.
    pub fn premise_peer(&self) -> Peer {
        match self {
            Orientation::SourceToTarget => Peer::Source,
            Orientation::TargetToSource | Orientation::TargetTarget => Peer::Target,
        }
    }

    /// Peer of the conclusion.
    pub fn conclusion_peer(&self) -> Peer {
        match self {
            Orientation::SourceToTarget | Orientation::TargetTarget => Peer::Target,
            Orientation::TargetToSource => Peer::Source,
        }
    }
}

impl fmt::Display for Orientation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Orientation::SourceToTarget => write!(f, "source-to-target"),
            Orientation::TargetToSource => write!(f, "target-to-source"),
            Orientation::TargetTarget => write!(f, "target"),
        }
    }
}

/// Errors raised by dependency validation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DependencyError {
    /// A conclusion variable is neither universal nor declared existential.
    UnboundConclusionVar(Var),
    /// A declared existential also occurs in the premise.
    ExistentialInPremise(Var),
    /// A declared existential does not occur in the conclusion.
    UnusedExistential(Var),
    /// An atom mentions a relation of the wrong peer for the orientation.
    WrongPeer {
        /// Name of the offending relation.
        relation: String,
        /// Peer the orientation requires.
        expected: Peer,
    },
    /// The premise is empty (tgds must have at least one premise atom).
    EmptyPremise,
    /// The conclusion is empty.
    EmptyConclusion,
    /// An egd equated variable does not occur in the premise.
    EgdVarNotInPremise(Var),
}

impl fmt::Display for DependencyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DependencyError::UnboundConclusionVar(v) => {
                write!(
                    f,
                    "conclusion variable {v} is neither universal nor existential"
                )
            }
            DependencyError::ExistentialInPremise(v) => {
                write!(f, "existential variable {v} also occurs in the premise")
            }
            DependencyError::UnusedExistential(v) => {
                write!(
                    f,
                    "declared existential {v} does not occur in the conclusion"
                )
            }
            DependencyError::WrongPeer { relation, expected } => {
                write!(f, "relation {relation} must belong to the {expected} peer")
            }
            DependencyError::EmptyPremise => write!(f, "empty premise"),
            DependencyError::EmptyConclusion => write!(f, "empty conclusion"),
            DependencyError::EgdVarNotInPremise(v) => {
                write!(f, "equated variable {v} does not occur in the premise")
            }
        }
    }
}

impl std::error::Error for DependencyError {}

/// A tuple-generating dependency `∀x̄ (premise → ∃ existentials . conclusion)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Tgd {
    /// The premise (left-hand side) conjunction.
    pub premise: Conjunction,
    /// The conclusion (right-hand side) conjunction.
    pub conclusion: Conjunction,
    /// The existentially quantified variables of the conclusion.
    pub existentials: BTreeSet<Var>,
}

impl Tgd {
    /// Build a tgd, deriving nothing: callers declare existentials
    /// explicitly (the parser does this from the `exists` clause).
    pub fn new(
        premise: Conjunction,
        existentials: impl IntoIterator<Item = Var>,
        conclusion: Conjunction,
    ) -> Tgd {
        Tgd {
            premise,
            conclusion,
            existentials: existentials.into_iter().collect(),
        }
    }

    /// Build a *full* tgd (no existentials).
    pub fn full(premise: Conjunction, conclusion: Conjunction) -> Tgd {
        Tgd::new(premise, [], conclusion)
    }

    /// The universal variables: premise variables (whether or not they
    /// reappear in the conclusion).
    pub fn universals(&self) -> BTreeSet<Var> {
        self.premise.variables()
    }

    /// The *frontier*: universal variables that occur in the conclusion.
    pub fn frontier(&self) -> BTreeSet<Var> {
        let prem = self.premise.variables();
        self.conclusion
            .variables()
            .into_iter()
            .filter(|v| prem.contains(v))
            .collect()
    }

    /// Is this a full tgd (no existential variables)?
    pub fn is_full(&self) -> bool {
        self.existentials.is_empty()
    }

    /// Is this a LAV dependency: exactly one premise atom with no repeated
    /// variables? (The class of Corollary 2 / condition 2.1 of `C_tract`.)
    pub fn is_lav(&self) -> bool {
        self.premise.len() == 1 && !self.premise.atoms[0].has_any_repeated_var()
    }

    /// Is this a GAV dependency: single conclusion atom, no existentials?
    pub fn is_gav(&self) -> bool {
        self.conclusion.len() == 1 && self.is_full()
    }

    /// Structural well-formedness + orientation check against `schema`.
    pub fn validate(
        &self,
        schema: &Schema,
        orientation: Orientation,
    ) -> Result<(), DependencyError> {
        if self.premise.is_empty() {
            return Err(DependencyError::EmptyPremise);
        }
        if self.conclusion.is_empty() {
            return Err(DependencyError::EmptyConclusion);
        }
        let prem_vars = self.premise.variables();
        for v in &self.existentials {
            if prem_vars.contains(v) {
                return Err(DependencyError::ExistentialInPremise(*v));
            }
            if !self.conclusion.variables().contains(v) {
                return Err(DependencyError::UnusedExistential(*v));
            }
        }
        for v in self.conclusion.variables() {
            if !prem_vars.contains(&v) && !self.existentials.contains(&v) {
                return Err(DependencyError::UnboundConclusionVar(v));
            }
        }
        for atom in &self.premise.atoms {
            if schema.peer(atom.rel) != orientation.premise_peer() {
                return Err(DependencyError::WrongPeer {
                    relation: schema.name(atom.rel).as_str(),
                    expected: orientation.premise_peer(),
                });
            }
        }
        for atom in &self.conclusion.atoms {
            if schema.peer(atom.rel) != orientation.conclusion_peer() {
                return Err(DependencyError::WrongPeer {
                    relation: schema.name(atom.rel).as_str(),
                    expected: orientation.conclusion_peer(),
                });
            }
        }
        Ok(())
    }

    /// Do any terms of this tgd contain constants? (The paper's theory is
    /// constant-free; solvers that rely on that assumption check this.)
    pub fn has_constants(&self) -> bool {
        self.premise
            .atoms
            .iter()
            .chain(self.conclusion.atoms.iter())
            .any(|a| a.terms.iter().any(|t| matches!(t, Term::Const(_))))
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Tgd, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} -> ", self.0.premise.display(self.1))?;
                if !self.0.existentials.is_empty() {
                    write!(f, "exists ")?;
                    for (i, v) in self.0.existentials.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    write!(f, " . ")?;
                }
                write!(f, "{}", self.0.conclusion.display(self.1))
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for Tgd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> ", self.premise)?;
        if !self.existentials.is_empty() {
            write!(f, "∃{:?} . ", self.existentials)?;
        }
        write!(f, "{:?}", self.conclusion)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_schema, Atom};

    fn schema() -> Schema {
        parse_schema("source E/2; source D/2; target H/2; target P/4;").unwrap()
    }

    fn conj(s: &Schema, atoms: &[(&str, &[&str])]) -> Conjunction {
        Conjunction::new(atoms.iter().map(|(r, vs)| Atom::vars(s, r, vs)).collect())
    }

    #[test]
    fn full_tgd_recognized() {
        let s = schema();
        let t = Tgd::full(
            conj(&s, &[("E", &["x", "z"]), ("E", &["z", "y"])]),
            conj(&s, &[("H", &["x", "y"])]),
        );
        assert!(t.is_full());
        assert!(t.is_gav());
        assert!(!t.is_lav());
        assert!(t.validate(&s, Orientation::SourceToTarget).is_ok());
    }

    #[test]
    fn lav_recognized() {
        let s = schema();
        let t = Tgd::new(
            conj(&s, &[("H", &["x", "y"])]),
            [Var::new("z")],
            conj(&s, &[("E", &["x", "z"]), ("E", &["z", "y"])]),
        );
        assert!(t.is_lav());
        assert!(!t.is_full());
        assert!(t.validate(&s, Orientation::TargetToSource).is_ok());
        // Repeated variables break LAV-ness.
        let t2 = Tgd::full(
            conj(&s, &[("H", &["x", "x"])]),
            conj(&s, &[("E", &["x", "x"])]),
        );
        assert!(!t2.is_lav());
    }

    #[test]
    fn frontier_and_universals() {
        let s = schema();
        let t = Tgd::new(
            conj(&s, &[("D", &["x", "y"])]),
            [Var::new("z"), Var::new("w")],
            conj(&s, &[("P", &["x", "z", "y", "w"])]),
        );
        assert_eq!(t.universals().len(), 2);
        assert_eq!(t.frontier().len(), 2);
        assert_eq!(t.existentials.len(), 2);
    }

    #[test]
    fn validate_rejects_unbound_conclusion_var() {
        let s = schema();
        let t = Tgd::full(
            conj(&s, &[("E", &["x", "y"])]),
            conj(&s, &[("H", &["x", "w"])]),
        );
        assert_eq!(
            t.validate(&s, Orientation::SourceToTarget),
            Err(DependencyError::UnboundConclusionVar(Var::new("w")))
        );
    }

    #[test]
    fn validate_rejects_existential_in_premise() {
        let s = schema();
        let t = Tgd::new(
            conj(&s, &[("E", &["x", "y"])]),
            [Var::new("y")],
            conj(&s, &[("H", &["x", "y"])]),
        );
        assert_eq!(
            t.validate(&s, Orientation::SourceToTarget),
            Err(DependencyError::ExistentialInPremise(Var::new("y")))
        );
    }

    #[test]
    fn validate_rejects_wrong_peer() {
        let s = schema();
        let t = Tgd::full(
            conj(&s, &[("H", &["x", "y"])]),
            conj(&s, &[("E", &["x", "y"])]),
        );
        assert!(matches!(
            t.validate(&s, Orientation::SourceToTarget),
            Err(DependencyError::WrongPeer { .. })
        ));
        assert!(t.validate(&s, Orientation::TargetToSource).is_ok());
    }

    #[test]
    fn validate_rejects_unused_existential() {
        let s = schema();
        let t = Tgd::new(
            conj(&s, &[("E", &["x", "y"])]),
            [Var::new("q")],
            conj(&s, &[("H", &["x", "y"])]),
        );
        assert_eq!(
            t.validate(&s, Orientation::SourceToTarget),
            Err(DependencyError::UnusedExistential(Var::new("q")))
        );
    }

    #[test]
    fn constants_detected() {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let h = s.rel_id("H").unwrap();
        let t = Tgd::full(
            Conjunction::new(vec![Atom::new(
                &s,
                e,
                vec![
                    Term::Const(pde_relational::Symbol::intern("a")),
                    Term::Var(Var::new("y")),
                ],
            )]),
            Conjunction::new(vec![Atom::vars(&s, "H", &["y", "y"])]),
        );
        let _ = h;
        assert!(t.has_constants());
    }
}
