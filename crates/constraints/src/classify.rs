//! The `C_tract` classifier (paper Def. 9).
//!
//! A PDE setting with no target constraints belongs to `C_tract` when
//!
//! 1. in every target-to-source tgd `D`, every marked variable of `D`
//!    occurs at most once in the left-hand side of `D`; **and**
//! 2. either
//!    * **(2.1)** the left-hand side of every tgd in Σts is a single
//!      literal, or
//!    * **(2.2)** for every tgd `D` in Σts and every pair of marked
//!      variables `x`, `y` occurring together in some conjunct of the
//!      right-hand side of `D`: `x` and `y` occur together in some conjunct
//!      of the left-hand side, or neither occurs in the left-hand side at
//!      all.
//!
//! Membership in `C_tract` guarantees that `ExistsSolution` (paper Fig. 3)
//! runs in polynomial time (Theorem 4); the classifier also produces the
//! diagnostics used by the boundary examples to explain *why* a setting
//! falls outside the class.

use crate::marking::Marking;
use crate::tgd::Tgd;
use pde_relational::{Schema, Term, Var};
use std::collections::BTreeSet;
use std::fmt;

/// Why a setting violates one of the `C_tract` conditions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtractViolation {
    /// Condition 1: a marked variable occurs more than once in the LHS of a
    /// ts-tgd.
    RepeatedMarkedVariable {
        /// Index of the offending tgd within Σts.
        tgd_index: usize,
        /// The repeated marked variable.
        var: Var,
        /// Number of LHS occurrences.
        occurrences: usize,
    },
    /// Condition 2.1: a ts-tgd has more than one LHS literal.
    MultiLiteralLhs {
        /// Index of the offending tgd within Σts.
        tgd_index: usize,
        /// Number of LHS literals.
        literals: usize,
    },
    /// Condition 2.2: two marked variables co-occur in an RHS conjunct but
    /// neither clause (a) nor (b) of condition 2.2 holds.
    BadMarkedPair {
        /// Index of the offending tgd within Σts.
        tgd_index: usize,
        /// First variable of the pair.
        x: Var,
        /// Second variable of the pair.
        y: Var,
    },
}

impl fmt::Display for CtractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtractViolation::RepeatedMarkedVariable {
                tgd_index,
                var,
                occurrences,
            } => write!(
                f,
                "ts-tgd #{tgd_index}: marked variable {var} occurs {occurrences} times in the LHS"
            ),
            CtractViolation::MultiLiteralLhs {
                tgd_index,
                literals,
            } => write!(
                f,
                "ts-tgd #{tgd_index}: LHS has {literals} literals (condition 2.1 needs exactly 1)"
            ),
            CtractViolation::BadMarkedPair { tgd_index, x, y } => write!(
                f,
                "ts-tgd #{tgd_index}: marked variables {x}, {y} co-occur in an RHS conjunct \
                 but neither co-occur in an LHS conjunct nor are both absent from the LHS"
            ),
        }
    }
}

/// Outcome of classifying a pair (Σst, Σts).
#[derive(Clone, Debug)]
pub struct CtractReport {
    /// Violations of condition 1 (empty = condition 1 holds).
    pub condition1: Vec<CtractViolation>,
    /// Violations of condition 2.1 (empty = condition 2.1 holds).
    pub condition2_1: Vec<CtractViolation>,
    /// Violations of condition 2.2 (empty = condition 2.2 holds).
    pub condition2_2: Vec<CtractViolation>,
    /// Is every source-to-target tgd full? (Sufficient for 2.2; Corollary 1.)
    pub st_all_full: bool,
    /// Is every target-to-source tgd LAV? (Implies 1 and 2.1; Corollary 2.)
    pub ts_all_lav: bool,
}

impl CtractReport {
    /// Does condition 1 hold?
    pub fn holds1(&self) -> bool {
        self.condition1.is_empty()
    }

    /// Does condition 2.1 hold?
    pub fn holds2_1(&self) -> bool {
        self.condition2_1.is_empty()
    }

    /// Does condition 2.2 hold?
    pub fn holds2_2(&self) -> bool {
        self.condition2_2.is_empty()
    }

    /// Is the setting in `C_tract`: condition 1 and (2.1 or 2.2)?
    pub fn in_ctract(&self) -> bool {
        self.holds1() && (self.holds2_1() || self.holds2_2())
    }

    /// Every violation, for diagnostics.
    pub fn violations(&self) -> impl Iterator<Item = &CtractViolation> {
        self.condition1
            .iter()
            .chain(&self.condition2_1)
            .chain(&self.condition2_2)
    }
}

/// Classify the constraints of a PDE setting with no target constraints.
pub fn classify(schema: &Schema, sigma_st: &[Tgd], sigma_ts: &[Tgd]) -> CtractReport {
    let _ = schema; // names only needed for diagnostics rendered elsewhere
    let marking = Marking::of_st_tgds(sigma_st);
    let mut condition1 = Vec::new();
    let mut condition2_1 = Vec::new();
    let mut condition2_2 = Vec::new();

    for (i, d) in sigma_ts.iter().enumerate() {
        let marked = marking.marked_variables(d);

        // Condition 1: marked variables occur at most once in the LHS.
        for v in &marked {
            let occ = d.premise.occurrences_of(*v);
            if occ > 1 {
                condition1.push(CtractViolation::RepeatedMarkedVariable {
                    tgd_index: i,
                    var: *v,
                    occurrences: occ,
                });
            }
        }

        // Condition 2.1: single-literal LHS.
        if d.premise.len() != 1 {
            condition2_1.push(CtractViolation::MultiLiteralLhs {
                tgd_index: i,
                literals: d.premise.len(),
            });
        }

        // Condition 2.2: co-occurring marked RHS pairs must co-occur in an
        // LHS conjunct or both be absent from the LHS.
        let lhs_vars = d.premise.variables();
        for atom in &d.conclusion.atoms {
            let atom_marked: Vec<Var> = atom
                .terms
                .iter()
                .filter_map(|t| match t {
                    Term::Var(v) if marked.contains(v) => Some(*v),
                    _ => None,
                })
                .collect();
            let distinct: BTreeSet<Var> = atom_marked.iter().copied().collect();
            let distinct: Vec<Var> = distinct.into_iter().collect();
            for a in 0..distinct.len() {
                for b in (a + 1)..distinct.len() {
                    let (x, y) = (distinct[a], distinct[b]);
                    let both_absent = !lhs_vars.contains(&x) && !lhs_vars.contains(&y);
                    let co_occur_lhs = d.premise.atoms.iter().any(|p| {
                        let vs = p.variables();
                        vs.contains(&x) && vs.contains(&y)
                    });
                    if !both_absent && !co_occur_lhs {
                        let viol = CtractViolation::BadMarkedPair { tgd_index: i, x, y };
                        if !condition2_2.contains(&viol) {
                            condition2_2.push(viol);
                        }
                    }
                }
            }
        }
    }

    CtractReport {
        condition1,
        condition2_1,
        condition2_2,
        st_all_full: sigma_st.iter().all(Tgd::is_full),
        ts_all_lav: sigma_ts.iter().all(Tgd::is_lav),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_tgds;
    use pde_relational::parse_schema;

    fn clique_schema() -> Schema {
        parse_schema("source D/2; source S/2; source E/2; target P/4;").unwrap()
    }

    #[test]
    fn clique_setting_is_not_tractable() {
        // Theorem 3's setting violates both 2.1 and 2.2 (minimally).
        let s = clique_schema();
        let st = parse_tgds(&s, "D(x, y) -> exists z, w . P(x, z, y, w)").unwrap();
        let ts = parse_tgds(
            &s,
            "P(x, z, y, w) -> E(z, w);
             P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
        )
        .unwrap();
        let r = classify(&s, &st, &ts);
        assert!(r.holds1(), "condition 1 holds for the clique setting");
        assert!(!r.holds2_1(), "second ts-tgd has two LHS literals");
        assert!(
            !r.holds2_2(),
            "z and z2 co-occur in RHS but not in an LHS conjunct"
        );
        assert!(!r.in_ctract());
        // The 2.2 violation is exactly the pair the paper names (z, z').
        assert!(r.condition2_2.iter().any(|v| matches!(
            v,
            CtractViolation::BadMarkedPair { x, y, .. }
            if (*x == Var::new("z") && *y == Var::new("z2"))
                || (*x == Var::new("z2") && *y == Var::new("z"))
        )));
    }

    #[test]
    fn lav_ts_is_tractable() {
        // Corollary 2: LAV Σts ⇒ conditions 1 and 2.1 hold.
        let s = parse_schema("source E/2; target H/2;").unwrap();
        let st = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let ts = parse_tgds(&s, "H(x, y) -> exists z . E(x, z), E(z, y)").unwrap();
        let r = classify(&s, &st, &ts);
        assert!(r.ts_all_lav);
        assert!(r.in_ctract());
        assert!(r.holds1() && r.holds2_1());
    }

    #[test]
    fn full_st_is_tractable() {
        // Corollary 1: full Σst ⇒ only existentials are marked, and any two
        // existentials co-occurring in the RHS are both absent from the LHS.
        let s = parse_schema("source E/2; source F/2; target H/2; target K/2;").unwrap();
        let st = parse_tgds(&s, "E(x, y) -> H(x, y); E(x, y) -> K(y, x)").unwrap();
        let ts = parse_tgds(&s, "H(x, y), K(y, z) -> exists u, v . F(u, v), E(x, u)").unwrap();
        let r = classify(&s, &st, &ts);
        assert!(r.st_all_full);
        assert!(r.holds1());
        assert!(!r.holds2_1(), "two LHS literals");
        assert!(r.holds2_2(), "full st-tgds satisfy 2.2");
        assert!(r.in_ctract());
    }

    #[test]
    fn repeated_marked_variable_violates_condition1() {
        // Marked variable x (at the marked position T.1 twice) in the LHS.
        let s = parse_schema("source A/1; source B/2; target T/2;").unwrap();
        let st = parse_tgds(&s, "A(x) -> exists y . T(x, y)").unwrap();
        let ts = parse_tgds(&s, "T(u, m), T(v, m) -> B(u, v)").unwrap();
        let r = classify(&s, &st, &ts);
        assert!(!r.holds1());
        assert!(matches!(
            r.condition1[0],
            CtractViolation::RepeatedMarkedVariable {
                var, occurrences: 2, ..
            } if var == Var::new("m")
        ));
        assert!(!r.in_ctract());
    }

    #[test]
    fn unmarked_repetition_is_allowed() {
        // Repeating an UNMARKED variable in the LHS does not violate 1.
        let s = parse_schema("source A/1; source B/2; target T/2;").unwrap();
        let st = parse_tgds(&s, "A(x) -> exists y . T(x, y)").unwrap();
        // u is at unmarked position T.0 twice.
        let ts = parse_tgds(&s, "T(u, m), T(u, m2) -> B(m, m2)").unwrap();
        let r = classify(&s, &st, &ts);
        assert!(r.holds1());
        // But m, m2 co-occur in the RHS without co-occurring in an LHS
        // conjunct → 2.2 fails; and LHS has 2 literals → 2.1 fails.
        assert!(!r.holds2_2());
        assert!(!r.in_ctract());
    }

    #[test]
    fn marked_pair_cooccurring_in_lhs_satisfies_2_2() {
        let s = parse_schema("source A/1; source B/2; target T/2;").unwrap();
        let st = parse_tgds(&s, "A(x) -> exists y, z . T(y, z)").unwrap();
        // y, z marked (both positions marked); they co-occur in the single
        // LHS conjunct, so (a) of 2.2 holds.
        let ts = parse_tgds(&s, "T(u, v) -> B(u, v)").unwrap();
        let r = classify(&s, &st, &ts);
        assert!(r.in_ctract());
        assert!(r.holds2_1() && r.holds2_2());
    }

    #[test]
    fn empty_ts_is_trivially_tractable() {
        let s = parse_schema("source E/2; target H/2;").unwrap();
        let st = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let r = classify(&s, &st, &[]);
        assert!(r.in_ctract());
    }

    #[test]
    fn boundary_distance_two_pair_fails() {
        // The paper's point that "connected via a path of length two" is
        // not enough: z and z2 are connected through x in the LHS but do
        // not co-occur in one conjunct.
        let s = clique_schema();
        let st = parse_tgds(&s, "D(x, y) -> exists z, w . P(x, z, y, w)").unwrap();
        let ts = parse_tgds(&s, "P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)").unwrap();
        let r = classify(&s, &st, &ts);
        assert!(!r.holds2_2());
    }
}
