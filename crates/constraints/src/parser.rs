//! Text syntax for dependencies.
//!
//! ```text
//! tgd  :  E(x, z), E(z, y) -> H(x, y)
//! tgd  :  H(x, y) -> exists z . E(x, z), E(z, y)
//! egd  :  P(x, z, y, w), P(x, z2, y2, w2) -> z = z2
//! dtgd :  C(x, u) -> R(u) | B(u) | exists v . G(u), G(v)
//! ```
//!
//! Multiple dependencies are separated by `;`. Bare identifiers are
//! variables; quoted strings are constants (see `pde_relational::parser`).

use crate::disjunctive::{Disjunct, DisjunctiveTgd};
use crate::egd::Egd;
use crate::tgd::Tgd;
use crate::Dependency;
use pde_relational::parser::{parse_atom_list, parse_term, Lexer, ParseError, Span, Token};
use pde_relational::{Atom, Conjunction, Schema, Term, Var};
use std::collections::BTreeSet;

/// Parse the `exists v1, v2 .` prefix if present; returns the declared
/// existential variables (empty when absent).
fn parse_exists_prefix(lex: &mut Lexer<'_>) -> Result<BTreeSet<Var>, ParseError> {
    let mut vars = BTreeSet::new();
    if let Some(Token::Ident(id)) = lex.peek()? {
        if id == "exists" {
            lex.next()?;
            loop {
                let (name, span) = lex.expect_ident()?;
                if name.starts_with("__pde") {
                    return Err(ParseError::at(
                        "identifiers starting with __pde are reserved",
                        span,
                    ));
                }
                vars.insert(Var::new(name.as_str()));
                match lex.peek()? {
                    Some(Token::Comma) => {
                        lex.next()?;
                    }
                    _ => break,
                }
            }
            lex.expect(&Token::Period)?;
        }
    }
    Ok(vars)
}

/// Parse the right-hand side of a dependency whose premise and arrow have
/// been consumed. Distinguishes egds (`x = y`) from tgd conclusions.
fn parse_rhs(
    schema: &Schema,
    lex: &mut Lexer<'_>,
    premise: Conjunction,
) -> Result<Dependency, ParseError> {
    // `exists` unambiguously starts a tgd conclusion.
    let existentials = parse_exists_prefix(lex)?;
    if !existentials.is_empty() {
        let conclusion = Conjunction::new(parse_atom_list(schema, lex)?);
        return Ok(Dependency::Tgd(Tgd::new(premise, existentials, conclusion)));
    }
    // Otherwise: an identifier followed by `=` means an egd; followed by
    // `(` it is the first conclusion atom.
    let (name, name_span) = lex.expect_ident()?;
    match lex.peek()? {
        Some(Token::Eq) => {
            lex.next()?;
            let rhs_span = lex.peek_span()?;
            let rhs = match parse_term(lex)? {
                Term::Var(v) => v,
                Term::Const(_) => {
                    return Err(ParseError::at(
                        "egds equate variables, not constants",
                        rhs_span,
                    ))
                }
            };
            Ok(Dependency::Egd(Egd::new(
                premise,
                Var::new(name.as_str()),
                rhs,
            )))
        }
        Some(Token::LParen) => {
            let first = parse_rest_of_atom(schema, lex, &name, name_span)?;
            let mut atoms = vec![first];
            while let Some(Token::Comma | Token::Amp) = lex.peek()? {
                lex.next()?;
                atoms.push(pde_relational::parser::parse_atom(schema, lex)?);
            }
            Ok(Dependency::Tgd(Tgd::new(
                premise,
                [],
                Conjunction::new(atoms),
            )))
        }
        other => Err(ParseError::at(
            format!(
                "expected '=' or '(' after {name}, found {}",
                other.map_or("end of input".to_owned(), std::string::ToString::to_string)
            ),
            name_span,
        )),
    }
}

/// Parse an atom whose relation name has already been consumed.
fn parse_rest_of_atom(
    schema: &Schema,
    lex: &mut Lexer<'_>,
    name: &str,
    name_span: Span,
) -> Result<Atom, ParseError> {
    let rel = schema
        .rel_id(name)
        .ok_or_else(|| ParseError::at(format!("unknown relation {name}"), name_span))?;
    lex.expect(&Token::LParen)?;
    let mut terms = Vec::new();
    if !matches!(lex.peek()?, Some(Token::RParen)) {
        loop {
            terms.push(parse_term(lex)?);
            match lex.peek()? {
                Some(Token::Comma) => {
                    lex.next()?;
                }
                _ => break,
            }
        }
    }
    lex.expect(&Token::RParen)?;
    if terms.len() != schema.arity(rel) as usize {
        return Err(ParseError::at(
            format!(
                "relation {name} has arity {}, got {} terms",
                schema.arity(rel),
                terms.len()
            ),
            Span::new(name_span.start, lex.last_end()),
        ));
    }
    Ok(Atom { rel, terms })
}

/// Parse one dependency (tgd or egd) from a lexer; stops at `;` or EOF.
pub fn parse_dependency_from(
    schema: &Schema,
    lex: &mut Lexer<'_>,
) -> Result<Dependency, ParseError> {
    Ok(parse_dependency_spanned_from(schema, lex)?.0)
}

/// Like [`parse_dependency_from`], also returning the span of the
/// dependency's text (first premise token through last conclusion token,
/// excluding any trailing `;`).
pub fn parse_dependency_spanned_from(
    schema: &Schema,
    lex: &mut Lexer<'_>,
) -> Result<(Dependency, Span), ParseError> {
    let start = lex.peek_span()?.start;
    let premise = Conjunction::new(parse_atom_list(schema, lex)?);
    lex.expect(&Token::Arrow)?;
    let d = parse_rhs(schema, lex, premise)?;
    Ok((d, Span::new(start, lex.last_end())))
}

/// Parse a single dependency from a string (must consume all input).
pub fn parse_dependency(schema: &Schema, src: &str) -> Result<Dependency, ParseError> {
    let mut lex = Lexer::new(src);
    let d = parse_dependency_from(schema, &mut lex)?;
    if matches!(lex.peek()?, Some(Token::Semi)) {
        lex.next()?;
    }
    if !lex.at_end()? {
        return Err(ParseError::at(
            "trailing input after dependency",
            lex.peek_span()?,
        ));
    }
    Ok(d)
}

/// Parse a `;`-separated list of dependencies.
pub fn parse_dependencies(schema: &Schema, src: &str) -> Result<Vec<Dependency>, ParseError> {
    Ok(parse_dependencies_spanned(schema, src)?
        .into_iter()
        .map(|(d, _)| d)
        .collect())
}

/// Parse a `;`-separated list of dependencies, returning each with the
/// span of its text within `src`. This is the entry point for analyses
/// that want to point diagnostics at the offending constraint.
pub fn parse_dependencies_spanned(
    schema: &Schema,
    src: &str,
) -> Result<Vec<(Dependency, Span)>, ParseError> {
    let mut lex = Lexer::new(src);
    let mut out = Vec::new();
    while !lex.at_end()? {
        out.push(parse_dependency_spanned_from(schema, &mut lex)?);
        if matches!(lex.peek()?, Some(Token::Semi)) {
            lex.next()?;
        }
    }
    Ok(out)
}

/// Parse a `;`-separated list of dependencies, requiring every one to be a
/// tgd.
pub fn parse_tgds(schema: &Schema, src: &str) -> Result<Vec<Tgd>, ParseError> {
    parse_dependencies_spanned(schema, src)?
        .into_iter()
        .map(|(d, span)| match d {
            Dependency::Tgd(t) => Ok(t),
            Dependency::Egd(_) => Err(ParseError::at("expected a tgd, found an egd", span)),
        })
        .collect()
}

/// Parse a single tgd.
pub fn parse_tgd(schema: &Schema, src: &str) -> Result<Tgd, ParseError> {
    match parse_dependency(schema, src)? {
        Dependency::Tgd(t) => Ok(t),
        Dependency::Egd(_) => Err(ParseError::new("expected a tgd, found an egd", 0)),
    }
}

/// Parse a single egd.
pub fn parse_egd(schema: &Schema, src: &str) -> Result<Egd, ParseError> {
    match parse_dependency(schema, src)? {
        Dependency::Egd(e) => Ok(e),
        Dependency::Tgd(_) => Err(ParseError::new("expected an egd, found a tgd", 0)),
    }
}

/// Parse one disjunctive tgd: `premise -> D1 | D2 | …` where each disjunct
/// is `[exists vars .] atoms`.
pub fn parse_disjunctive_tgd(schema: &Schema, src: &str) -> Result<DisjunctiveTgd, ParseError> {
    let mut lex = Lexer::new(src);
    let premise = Conjunction::new(parse_atom_list(schema, &mut lex)?);
    lex.expect(&Token::Arrow)?;
    let mut disjuncts = Vec::new();
    loop {
        let existentials = parse_exists_prefix(&mut lex)?;
        let conjunction = Conjunction::new(parse_atom_list(schema, &mut lex)?);
        disjuncts.push(Disjunct {
            existentials,
            conjunction,
        });
        match lex.peek()? {
            Some(Token::Pipe) => {
                lex.next()?;
            }
            _ => break,
        }
    }
    if !lex.at_end()? {
        return Err(ParseError::at(
            "trailing input after disjunctive tgd",
            lex.peek_span()?,
        ));
    }
    Ok(DisjunctiveTgd::new(premise, disjuncts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tgd::Orientation;
    use pde_relational::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            "source E/2; source D/2; source S/2; target H/2; target P/4; \
             source R/1; source B/1; source G/1; target C/2;",
        )
        .unwrap()
    }

    #[test]
    fn parse_full_tgd() {
        let s = schema();
        let t = parse_tgd(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        assert!(t.is_full());
        assert_eq!(t.premise.len(), 2);
        assert!(t.validate(&s, Orientation::SourceToTarget).is_ok());
    }

    #[test]
    fn parse_existential_tgd() {
        let s = schema();
        let t = parse_tgd(&s, "H(x, y) -> exists z . E(x, z), E(z, y)").unwrap();
        assert_eq!(t.existentials.len(), 1);
        assert!(t.validate(&s, Orientation::TargetToSource).is_ok());
        let t2 = parse_tgd(&s, "D(x, y) -> exists z, w . P(x, z, y, w)").unwrap();
        assert_eq!(t2.existentials.len(), 2);
    }

    #[test]
    fn parse_egd_form() {
        let s = schema();
        let e = parse_egd(&s, "P(x, z, y, w), P(x, z2, y2, w2) -> z = z2").unwrap();
        assert!(e.validate(&s).is_ok());
        assert_eq!(e.lhs, Var::new("z"));
        assert_eq!(e.rhs, Var::new("z2"));
    }

    #[test]
    fn kind_mismatch_reported() {
        let s = schema();
        assert!(parse_tgd(&s, "H(x, y), H(x, z) -> y = z").is_err());
        assert!(parse_egd(&s, "E(x, y) -> H(x, y)").is_err());
    }

    #[test]
    fn parse_many_dependencies() {
        let s = schema();
        let ds = parse_dependencies(
            &s,
            "D(x, y) -> exists z, w . P(x, z, y, w);
             P(x, z, y, w) -> E(z, w);
             P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
        )
        .unwrap();
        assert_eq!(ds.len(), 3);
        assert!(matches!(ds[0], Dependency::Tgd(_)));
        assert!(matches!(ds[2], Dependency::Tgd(_)));
    }

    #[test]
    fn parse_disjunctive() {
        let s = schema();
        let d = parse_disjunctive_tgd(
            &s,
            "C(x, u), C(y, v) -> R(u), B(v) | B(u), G(v) | G(u), R(v)",
        )
        .unwrap();
        assert_eq!(d.disjuncts.len(), 3);
        assert_eq!(d.disjuncts[0].conjunction.len(), 2);
        assert!(d.validate(&s, Orientation::TargetToSource).is_ok());
    }

    #[test]
    fn disjunct_with_exists() {
        let s = schema();
        let d = parse_disjunctive_tgd(&s, "H(x, y) -> exists z . E(x, z) | E(x, y)").unwrap();
        assert_eq!(d.disjuncts.len(), 2);
        assert_eq!(d.disjuncts[0].existentials.len(), 1);
        assert!(d.disjuncts[1].existentials.is_empty());
    }

    #[test]
    fn errors_have_positions() {
        let s = schema();
        let err = parse_tgd(&s, "E(x, y) -> Q(x, y)").unwrap_err();
        assert!(err.message.contains("unknown relation"));
        let err2 = parse_dependency(&s, "E(x, y) -> x = 'c'").unwrap_err();
        assert!(err2.message.contains("constants"));
    }

    #[test]
    fn trailing_semicolon_ok() {
        let s = schema();
        let ds = parse_dependencies(&s, "E(x, y) -> H(x, y);").unwrap();
        assert_eq!(ds.len(), 1);
        let d = parse_dependency(&s, "E(x, y) -> H(x, y);").unwrap();
        assert!(matches!(d, Dependency::Tgd(_)));
    }
}
