//! Dependencies and their static analysis for peer data exchange.
//!
//! * [`tgd`] / [`egd`]: tuple- and equality-generating dependencies with
//!   orientation-aware validation (Σst, Σts, Σt);
//! * [`disjunctive`]: disjunctive tgds (the §4 boundary extension);
//! * [`parser`]: text syntax for all dependency forms;
//! * [`depgraph`]: the position dependency graph and weak acyclicity
//!   (paper Def. 5);
//! * [`marking`]: marked positions and marked variables (Def. 8);
//! * [`mod@classify`]: the `C_tract` membership test with diagnostics (Def. 9).

pub mod classify;
pub mod depgraph;
pub mod disjunctive;
pub mod egd;
pub mod marking;
pub mod parser;
pub mod tgd;

pub use classify::{classify, CtractReport, CtractViolation};
pub use depgraph::{chase_bound, is_weakly_acyclic, ChaseBound, DependencyGraph, Edge};
pub use disjunctive::{Disjunct, DisjunctiveTgd};
pub use egd::{functional_dependency, Egd};
pub use marking::Marking;
pub use parser::{
    parse_dependencies, parse_dependencies_spanned, parse_dependency,
    parse_dependency_spanned_from, parse_disjunctive_tgd, parse_egd, parse_tgd, parse_tgds,
};
pub use tgd::{DependencyError, Orientation, Tgd};

use pde_relational::Schema;
use std::fmt;

/// A dependency: tgd or egd.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Dependency {
    /// A tuple-generating dependency.
    Tgd(Tgd),
    /// An equality-generating dependency.
    Egd(Egd),
}

impl Dependency {
    /// View as a tgd.
    pub fn as_tgd(&self) -> Option<&Tgd> {
        match self {
            Dependency::Tgd(t) => Some(t),
            Dependency::Egd(_) => None,
        }
    }

    /// View as an egd.
    pub fn as_egd(&self) -> Option<&Egd> {
        match self {
            Dependency::Egd(e) => Some(e),
            Dependency::Tgd(_) => None,
        }
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Dependency, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                match self.0 {
                    Dependency::Tgd(t) => write!(f, "{}", t.display(self.1)),
                    Dependency::Egd(e) => write!(f, "{}", e.display(self.1)),
                }
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for Dependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dependency::Tgd(t) => write!(f, "{t:?}"),
            Dependency::Egd(e) => write!(f, "{e:?}"),
        }
    }
}

impl From<Tgd> for Dependency {
    fn from(t: Tgd) -> Dependency {
        Dependency::Tgd(t)
    }
}

impl From<Egd> for Dependency {
    fn from(e: Egd) -> Dependency {
        Dependency::Egd(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::parse_schema;

    #[test]
    fn dependency_views() {
        let s = parse_schema("source E/2; target H/2;").unwrap();
        let d = parse_dependency(&s, "E(x, y) -> H(x, y)").unwrap();
        assert!(d.as_tgd().is_some());
        assert!(d.as_egd().is_none());
        let e = parse_dependency(&s, "H(x, y), H(x, z) -> y = z").unwrap();
        assert!(e.as_egd().is_some());
        assert!(e.as_tgd().is_none());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let s = parse_schema("source E/2; target H/2;").unwrap();
        for src in [
            "E(x, y) -> H(x, y)",
            "H(x, y) -> exists z . E(x, z), E(z, y)",
            "H(x, y), H(x, z) -> y = z",
        ] {
            let d = parse_dependency(&s, src).unwrap();
            let rendered = format!("{}", d.display(&s));
            let reparsed = parse_dependency(&s, &rendered).unwrap();
            assert_eq!(d, reparsed, "{src} → {rendered}");
        }
    }
}
