//! Marked positions and marked variables (paper Def. 8).
//!
//! *Marked positions* are target positions that can receive a labeled null
//! during the chase of Σst: position `i` of target relation `T` is marked
//! when some source-to-target tgd has a conclusion conjunct
//! `T(z1, …, zi, …, zn)` with `zi` existentially quantified.
//!
//! A variable `z` of a target-to-source tgd is *marked* when it can bind a
//! null at chase time: either it appears at a marked position of a premise
//! conjunct, or it is itself existentially quantified. (The two cases are
//! mutually exclusive: existentials never occur in the premise.)

use crate::tgd::Tgd;
use pde_relational::{Position, Term, Var};
use std::collections::{BTreeSet, HashSet};

/// The marked target positions induced by a set of source-to-target tgds.
#[derive(Clone, Debug, Default)]
pub struct Marking {
    marked: HashSet<Position>,
}

impl Marking {
    /// Compute the marking for `sigma_st`.
    pub fn of_st_tgds<'a>(sigma_st: impl IntoIterator<Item = &'a Tgd>) -> Marking {
        let mut marked = HashSet::new();
        for tgd in sigma_st {
            for atom in &tgd.conclusion.atoms {
                for (i, t) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        if tgd.existentials.contains(v) {
                            marked.insert(Position::at(atom.rel, i));
                        }
                    }
                }
            }
        }
        Marking { marked }
    }

    /// Is `pos` marked?
    pub fn is_marked(&self, pos: Position) -> bool {
        self.marked.contains(&pos)
    }

    /// All marked positions.
    pub fn positions(&self) -> impl Iterator<Item = Position> + '_ {
        self.marked.iter().copied()
    }

    /// Number of marked positions.
    pub fn len(&self) -> usize {
        self.marked.len()
    }

    /// Is nothing marked?
    pub fn is_empty(&self) -> bool {
        self.marked.is_empty()
    }

    /// The marked variables of a target-to-source tgd `d` (paper Def. 8):
    /// variables at marked premise positions, plus the existentials of `d`.
    pub fn marked_variables(&self, d: &Tgd) -> BTreeSet<Var> {
        let mut out: BTreeSet<Var> = d.existentials.iter().copied().collect();
        for atom in &d.premise.atoms {
            for (i, t) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = t {
                    if self.is_marked(Position::at(atom.rel, i)) {
                        out.insert(*v);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_tgds;
    use pde_relational::{parse_schema, Schema};

    fn paper_example_schema() -> Schema {
        parse_schema("source S/2; target T/2;").unwrap()
    }

    #[test]
    fn paper_marked_position_example() {
        // Σst: S(x1, x2) -> exists y . T(x1, y)
        // Σts: T(x1, x2) -> exists w . S(w, x2)
        // Marked position: T.1 (second of T); marked variables of the ts
        // tgd: x2 and w (paper §4 example).
        let s = paper_example_schema();
        let st = parse_tgds(&s, "S(x1, x2) -> exists y . T(x1, y)").unwrap();
        let ts = parse_tgds(&s, "T(x1, x2) -> exists w . S(w, x2)").unwrap();
        let m = Marking::of_st_tgds(&st);
        let t = s.rel_id("T").unwrap();
        assert_eq!(m.len(), 1);
        assert!(m.is_marked(Position { rel: t, attr: 1 }));
        assert!(!m.is_marked(Position { rel: t, attr: 0 }));
        let mv = m.marked_variables(&ts[0]);
        assert_eq!(mv, [Var::new("x2"), Var::new("w")].into_iter().collect());
    }

    #[test]
    fn clique_reduction_marking() {
        // The Theorem 3 setting: D(x,y) -> exists z,w . P(x,z,y,w).
        // Marked positions: P.1 and P.3; marked variables of the ts tgds:
        // {z,w} and {z,w,z',w'}.
        let s = parse_schema("source D/2; source S/2; source E/2; target P/4;").unwrap();
        let st = parse_tgds(&s, "D(x, y) -> exists z, w . P(x, z, y, w)").unwrap();
        let ts = parse_tgds(
            &s,
            "P(x, z, y, w) -> E(z, w);
             P(x, z, y, w), P(x, z2, y2, w2) -> S(z, z2)",
        )
        .unwrap();
        let m = Marking::of_st_tgds(&st);
        let p = s.rel_id("P").unwrap();
        assert!(m.is_marked(Position { rel: p, attr: 1 }));
        assert!(m.is_marked(Position { rel: p, attr: 3 }));
        assert!(!m.is_marked(Position { rel: p, attr: 0 }));
        assert!(!m.is_marked(Position { rel: p, attr: 2 }));
        let mv1 = m.marked_variables(&ts[0]);
        assert_eq!(mv1, [Var::new("z"), Var::new("w")].into_iter().collect());
        let mv2 = m.marked_variables(&ts[1]);
        assert_eq!(
            mv2,
            [Var::new("z"), Var::new("w"), Var::new("z2"), Var::new("w2")]
                .into_iter()
                .collect()
        );
    }

    #[test]
    fn full_st_tgds_mark_nothing() {
        let s = paper_example_schema();
        let st = parse_tgds(&s, "S(x, y) -> T(x, y)").unwrap();
        let m = Marking::of_st_tgds(&st);
        assert!(m.is_empty());
        // Marked variables of a ts tgd are then exactly its existentials.
        let ts = parse_tgds(&s, "T(x, y) -> exists w . S(x, w)").unwrap();
        assert_eq!(
            m.marked_variables(&ts[0]),
            [Var::new("w")].into_iter().collect()
        );
    }

    #[test]
    fn marking_unions_over_tgds() {
        let s = parse_schema("source A/1; source B/1; target T/2;").unwrap();
        let st = parse_tgds(&s, "A(x) -> exists y . T(x, y); B(x) -> exists y . T(y, x)").unwrap();
        let m = Marking::of_st_tgds(&st);
        assert_eq!(m.len(), 2);
        assert_eq!(m.positions().count(), 2);
    }
}
