//! Equality-generating dependencies (egds).
//!
//! An egd is a formula `∀x̄ (φ(x̄) → z1 = z2)` with `z1, z2` among `x̄`
//! (paper §2). In PDE settings egds appear only among the target
//! constraints Σt; functional dependencies are the standard special case.

use crate::tgd::DependencyError;
use pde_relational::{Conjunction, Peer, Schema, Var};
use std::fmt;

/// An equality-generating dependency `∀x̄ (premise → lhs = rhs)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Egd {
    /// The premise conjunction (over the target schema).
    pub premise: Conjunction,
    /// Left side of the equated pair.
    pub lhs: Var,
    /// Right side of the equated pair.
    pub rhs: Var,
}

impl Egd {
    /// Build an egd.
    pub fn new(premise: Conjunction, lhs: Var, rhs: Var) -> Egd {
        Egd { premise, lhs, rhs }
    }

    /// Structural well-formedness: equated variables must occur in the
    /// premise, and every premise atom must be a target relation.
    pub fn validate(&self, schema: &Schema) -> Result<(), DependencyError> {
        if self.premise.is_empty() {
            return Err(DependencyError::EmptyPremise);
        }
        let vars = self.premise.variables();
        for v in [self.lhs, self.rhs] {
            if !vars.contains(&v) {
                return Err(DependencyError::EgdVarNotInPremise(v));
            }
        }
        for atom in &self.premise.atoms {
            if schema.peer(atom.rel) != Peer::Target {
                return Err(DependencyError::WrongPeer {
                    relation: schema.name(atom.rel).as_str(),
                    expected: Peer::Target,
                });
            }
        }
        Ok(())
    }

    /// Is this egd trivial (`x = x`)?
    pub fn is_trivial(&self) -> bool {
        self.lhs == self.rhs
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Egd, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(
                    f,
                    "{} -> {} = {}",
                    self.0.premise.display(self.1),
                    self.0.lhs,
                    self.0.rhs
                )
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for Egd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?} -> {} = {}", self.premise, self.lhs, self.rhs)
    }
}

/// Build the functional dependency `R: determinant → dependent` as an egd.
///
/// Example: `functional_dependency(&schema, "P", &[0], 1)` states that the
/// first attribute of `P` determines the second.
///
/// # Panics
/// Panics if the relation is unknown or an attribute index is out of range.
pub fn functional_dependency(
    schema: &Schema,
    rel: &str,
    determinant: &[u16],
    dependent: u16,
) -> Egd {
    use pde_relational::{Atom, Term};
    let id = schema
        .rel_id(rel)
        .unwrap_or_else(|| panic!("unknown relation {rel}"));
    let arity = schema.arity(id);
    assert!(dependent < arity, "dependent attribute out of range");
    for d in determinant {
        assert!(*d < arity, "determinant attribute out of range");
    }
    // Two copies of R sharing the determinant attributes; all other
    // attributes get distinct variables, and the two copies of the
    // dependent attribute are equated.
    let var_for = |copy: usize, attr: u16| -> Var {
        if determinant.contains(&attr) {
            Var::new(format!("k{attr}"))
        } else {
            Var::new(format!("v{copy}_{attr}"))
        }
    };
    let atom = |copy: usize| -> Atom {
        Atom::new(
            schema,
            id,
            (0..arity).map(|a| Term::Var(var_for(copy, a))).collect(),
        )
    };
    Egd::new(
        Conjunction::new(vec![atom(0), atom(1)]),
        var_for(0, dependent),
        var_for(1, dependent),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_schema, Atom};

    fn schema() -> Schema {
        parse_schema("source E/2; target P/4; target H/2;").unwrap()
    }

    #[test]
    fn valid_egd() {
        let s = schema();
        let e = Egd::new(
            Conjunction::new(vec![
                Atom::vars(&s, "P", &["x", "z", "y", "w"]),
                Atom::vars(&s, "P", &["x", "z2", "y2", "w2"]),
            ]),
            Var::new("z"),
            Var::new("z2"),
        );
        assert!(e.validate(&s).is_ok());
        assert!(!e.is_trivial());
    }

    #[test]
    fn egd_var_must_be_in_premise() {
        let s = schema();
        let e = Egd::new(
            Conjunction::new(vec![Atom::vars(&s, "H", &["x", "y"])]),
            Var::new("x"),
            Var::new("q"),
        );
        assert_eq!(
            e.validate(&s),
            Err(DependencyError::EgdVarNotInPremise(Var::new("q")))
        );
    }

    #[test]
    fn egd_premise_must_be_target() {
        let s = schema();
        let e = Egd::new(
            Conjunction::new(vec![Atom::vars(&s, "E", &["x", "y"])]),
            Var::new("x"),
            Var::new("y"),
        );
        assert!(matches!(
            e.validate(&s),
            Err(DependencyError::WrongPeer { .. })
        ));
    }

    #[test]
    fn functional_dependency_builder() {
        let s = schema();
        let fd = functional_dependency(&s, "H", &[0], 1);
        assert!(fd.validate(&s).is_ok());
        assert_eq!(fd.premise.len(), 2);
        assert_ne!(fd.lhs, fd.rhs);
        // Key attribute shared between the two atoms.
        let a0 = &fd.premise.atoms[0];
        let a1 = &fd.premise.atoms[1];
        assert_eq!(a0.terms[0], a1.terms[0]);
        assert_ne!(a0.terms[1], a1.terms[1]);
    }

    #[test]
    fn trivial_egd_detected() {
        let s = schema();
        let e = Egd::new(
            Conjunction::new(vec![Atom::vars(&s, "H", &["x", "y"])]),
            Var::new("x"),
            Var::new("x"),
        );
        assert!(e.is_trivial());
        assert!(e.validate(&s).is_ok());
    }
}
