//! Disjunctive tgds: the §4 extension that crosses the tractability line.
//!
//! The paper's last boundary example allows a *disjunction* of conjunctions
//! on the right-hand side of a target-to-source dependency and shows that
//! 3-COLORABILITY then reduces to the existence-of-solutions problem even
//! when conditions (1) and (2.2) of `C_tract` hold. We support these
//! dependencies as an explicit extension type so the reduction is executable
//! (experiment E9); they are *not* members of the plain tgd sets a PDE
//! setting is defined over.

use crate::tgd::{DependencyError, Orientation, Tgd};
use pde_relational::{Conjunction, Schema, Var};
use std::collections::BTreeSet;
use std::fmt;

/// One disjunct of a disjunctive tgd's right-hand side: an optionally
/// existentially quantified conjunction.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Disjunct {
    /// Existential variables local to this disjunct.
    pub existentials: BTreeSet<Var>,
    /// The disjunct's conjunction.
    pub conjunction: Conjunction,
}

/// A disjunctive tgd `∀x̄ (premise → D1 ∨ … ∨ Dk)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct DisjunctiveTgd {
    /// The premise conjunction.
    pub premise: Conjunction,
    /// The disjuncts of the conclusion (at least one).
    pub disjuncts: Vec<Disjunct>,
}

impl DisjunctiveTgd {
    /// Build a disjunctive tgd.
    pub fn new(premise: Conjunction, disjuncts: Vec<Disjunct>) -> DisjunctiveTgd {
        DisjunctiveTgd { premise, disjuncts }
    }

    /// A plain tgd viewed as the single-disjunct case.
    pub fn from_tgd(t: &Tgd) -> DisjunctiveTgd {
        DisjunctiveTgd {
            premise: t.premise.clone(),
            disjuncts: vec![Disjunct {
                existentials: t.existentials.clone(),
                conjunction: t.conclusion.clone(),
            }],
        }
    }

    /// If this dependency has exactly one disjunct, view it as a plain tgd.
    pub fn as_tgd(&self) -> Option<Tgd> {
        if self.disjuncts.len() == 1 {
            let d = &self.disjuncts[0];
            Some(Tgd::new(
                self.premise.clone(),
                d.existentials.iter().copied(),
                d.conjunction.clone(),
            ))
        } else {
            None
        }
    }

    /// Validate every disjunct as if it were a tgd of the given orientation.
    pub fn validate(
        &self,
        schema: &Schema,
        orientation: Orientation,
    ) -> Result<(), DependencyError> {
        if self.disjuncts.is_empty() {
            return Err(DependencyError::EmptyConclusion);
        }
        for d in &self.disjuncts {
            let t = Tgd::new(
                self.premise.clone(),
                d.existentials.iter().copied(),
                d.conjunction.clone(),
            );
            t.validate(schema, orientation)?;
        }
        Ok(())
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a DisjunctiveTgd, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{} -> ", self.0.premise.display(self.1))?;
                for (i, d) in self.0.disjuncts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " | ")?;
                    }
                    if !d.existentials.is_empty() {
                        write!(f, "exists ")?;
                        for (j, v) in d.existentials.iter().enumerate() {
                            if j > 0 {
                                write!(f, ", ")?;
                            }
                            write!(f, "{v}")?;
                        }
                        write!(f, " . ")?;
                    }
                    write!(f, "{}", d.conjunction.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_schema, Atom};

    fn schema() -> Schema {
        parse_schema("source R/1; source B/1; target C/2;").unwrap()
    }

    #[test]
    fn roundtrip_single_disjunct() {
        let s = schema();
        let t = Tgd::new(
            Conjunction::new(vec![Atom::vars(&s, "C", &["x", "u"])]),
            [],
            Conjunction::new(vec![Atom::vars(&s, "R", &["u"])]),
        );
        let d = DisjunctiveTgd::from_tgd(&t);
        assert_eq!(d.as_tgd().unwrap(), t);
        assert!(d.validate(&s, Orientation::TargetToSource).is_ok());
    }

    #[test]
    fn multi_disjunct_has_no_tgd_view() {
        let s = schema();
        let prem = Conjunction::new(vec![Atom::vars(&s, "C", &["x", "u"])]);
        let d = DisjunctiveTgd::new(
            prem,
            vec![
                Disjunct {
                    existentials: BTreeSet::new(),
                    conjunction: Conjunction::new(vec![Atom::vars(&s, "R", &["u"])]),
                },
                Disjunct {
                    existentials: BTreeSet::new(),
                    conjunction: Conjunction::new(vec![Atom::vars(&s, "B", &["u"])]),
                },
            ],
        );
        assert!(d.as_tgd().is_none());
        assert!(d.validate(&s, Orientation::TargetToSource).is_ok());
    }

    #[test]
    fn validation_checks_each_disjunct() {
        let s = schema();
        let prem = Conjunction::new(vec![Atom::vars(&s, "C", &["x", "u"])]);
        let d = DisjunctiveTgd::new(
            prem,
            vec![Disjunct {
                existentials: BTreeSet::new(),
                // `w` is unbound.
                conjunction: Conjunction::new(vec![Atom::vars(&s, "R", &["w"])]),
            }],
        );
        assert!(d.validate(&s, Orientation::TargetToSource).is_err());
    }

    #[test]
    fn empty_disjunction_rejected() {
        let s = schema();
        let prem = Conjunction::new(vec![Atom::vars(&s, "C", &["x", "u"])]);
        let d = DisjunctiveTgd::new(prem, vec![]);
        assert_eq!(
            d.validate(&s, Orientation::TargetToSource),
            Err(DependencyError::EmptyConclusion)
        );
    }
}
