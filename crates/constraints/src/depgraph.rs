//! The position dependency graph and weak acyclicity (paper Def. 5).
//!
//! Weak acyclicity of a set of tgds guarantees that every chase sequence
//! terminates after polynomially many steps (\[FKMP\], used by Lemma 1 of the
//! paper for the solution-aware chase as well). The graph has one node per
//! position `(R, i)`; a tgd `φ(x̄) → ∃ȳ ψ(x̄, ȳ)` contributes, for every
//! universal variable `x` occurring in `ψ` and every premise occurrence of
//! `x` at position `p`:
//!
//! * an **ordinary edge** `p → q` for every conclusion occurrence of `x` at
//!   position `q`, and
//! * a **special edge** `p → r` for every conclusion occurrence of an
//!   existential variable at position `r`.
//!
//! The set is weakly acyclic iff no cycle goes through a special edge —
//! equivalently, no special edge has both endpoints in one strongly
//! connected component.

use crate::tgd::Tgd;
use pde_relational::{Position, Schema, Term};
use std::collections::{HashMap, HashSet};

/// An edge of the dependency graph.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Edge {
    /// Source position.
    pub from: Position,
    /// Destination position.
    pub to: Position,
    /// Is this a special (existential-creating) edge?
    pub special: bool,
}

/// The dependency graph of a set of tgds over `schema`.
#[derive(Clone, Debug)]
pub struct DependencyGraph {
    nodes: Vec<Position>,
    node_index: HashMap<Position, usize>,
    edges: HashSet<Edge>,
}

impl DependencyGraph {
    /// Build the graph for `tgds` over `schema`.
    pub fn new<'a>(schema: &Schema, tgds: impl IntoIterator<Item = &'a Tgd>) -> DependencyGraph {
        let nodes: Vec<Position> = schema.positions().collect();
        let node_index: HashMap<Position, usize> =
            nodes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let mut edges = HashSet::new();
        for tgd in tgds {
            // Premise occurrences of each universal variable.
            let mut premise_positions: HashMap<pde_relational::Var, Vec<Position>> = HashMap::new();
            for atom in &tgd.premise.atoms {
                for (i, t) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        premise_positions
                            .entry(*v)
                            .or_default()
                            .push(Position::at(atom.rel, i));
                    }
                }
            }
            // Conclusion occurrences, split universal vs existential.
            let mut concl_universal: HashMap<pde_relational::Var, Vec<Position>> = HashMap::new();
            let mut concl_existential: Vec<Position> = Vec::new();
            for atom in &tgd.conclusion.atoms {
                for (i, t) in atom.terms.iter().enumerate() {
                    if let Term::Var(v) = t {
                        let pos = Position::at(atom.rel, i);
                        if tgd.existentials.contains(v) {
                            concl_existential.push(pos);
                        } else {
                            concl_universal.entry(*v).or_default().push(pos);
                        }
                    }
                }
            }
            for (v, concl_occ) in &concl_universal {
                let Some(prem_occ) = premise_positions.get(v) else {
                    continue; // unsafe tgd; validation reports it elsewhere
                };
                for p in prem_occ {
                    for q in concl_occ {
                        edges.insert(Edge {
                            from: *p,
                            to: *q,
                            special: false,
                        });
                    }
                    for r in &concl_existential {
                        edges.insert(Edge {
                            from: *p,
                            to: *r,
                            special: true,
                        });
                    }
                }
            }
        }
        DependencyGraph {
            nodes,
            node_index,
            edges,
        }
    }

    /// The edges of the graph.
    pub fn edges(&self) -> impl Iterator<Item = &Edge> {
        self.edges.iter()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Strongly connected components (Tarjan); returns the component id of
    /// every node, indexed like `self.nodes`.
    fn sccs(&self) -> Vec<usize> {
        let n = self.nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for e in &self.edges {
            adj[self.node_index[&e.from]].push(self.node_index[&e.to]);
        }
        // Iterative Tarjan.
        let mut index_counter = 0usize;
        let mut comp_counter = 0usize;
        let mut index = vec![usize::MAX; n];
        let mut lowlink = vec![0usize; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<usize> = Vec::new();
        let mut comp = vec![usize::MAX; n];
        // Explicit DFS stack of (node, child cursor).
        for start in 0..n {
            if index[start] != usize::MAX {
                continue;
            }
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            while let Some(&(v, cursor)) = dfs.last() {
                if cursor == 0 {
                    index[v] = index_counter;
                    lowlink[v] = index_counter;
                    index_counter += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                if cursor < adj[v].len() {
                    let w = adj[v][cursor];
                    dfs.last_mut().expect("nonempty").1 += 1;
                    if index[w] == usize::MAX {
                        dfs.push((w, 0));
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                } else {
                    if lowlink[v] == index[v] {
                        loop {
                            let w = stack.pop().expect("scc stack underflow");
                            on_stack[w] = false;
                            comp[w] = comp_counter;
                            if w == v {
                                break;
                            }
                        }
                        comp_counter += 1;
                    }
                    dfs.pop();
                    if let Some(&(u, _)) = dfs.last() {
                        lowlink[u] = lowlink[u].min(lowlink[v]);
                    }
                }
            }
        }
        comp
    }

    /// The smallest special edge whose endpoints share a component, given
    /// the component assignment — the weak-acyclicity witness.
    fn special_in_scc(&self, comp: &[usize]) -> Option<Edge> {
        let mut witnesses: Vec<&Edge> = self
            .edges
            .iter()
            .filter(|e| e.special && comp[self.node_index[&e.from]] == comp[self.node_index[&e.to]])
            .collect();
        // Deterministic pick (HashSet iteration order varies run to run).
        witnesses.sort_by_key(|e| (e.from, e.to));
        witnesses.first().copied().copied()
    }

    /// Is the underlying tgd set weakly acyclic?
    pub fn is_weakly_acyclic(&self) -> bool {
        self.find_special_cycle_edge().is_none()
    }

    /// A special edge lying on a cycle, if any (diagnostic for error
    /// messages).
    pub fn find_special_cycle_edge(&self) -> Option<Edge> {
        self.special_in_scc(&self.sccs())
    }

    /// A full cycle through a special edge, if one exists: the edges of a
    /// closed walk `e, e₁, …, eₖ` where `e` is special, each edge's `to`
    /// is the next one's `from`, and the last returns to `e.from`. This is
    /// the witness a weak-acyclicity diagnostic can print. Returns `None`
    /// iff the set is weakly acyclic.
    pub fn find_special_cycle(&self) -> Option<Vec<Edge>> {
        let comp = self.sccs();
        let e = self.special_in_scc(&comp)?;
        if e.to == e.from {
            return Some(vec![e]);
        }
        // Shortest path e.to → e.from staying inside the shared SCC (BFS
        // over sorted adjacency for determinism).
        let scc = comp[self.node_index[&e.from]];
        let mut adj: HashMap<Position, Vec<Edge>> = HashMap::new();
        for edge in &self.edges {
            if comp[self.node_index[&edge.from]] == scc && comp[self.node_index[&edge.to]] == scc {
                adj.entry(edge.from).or_default().push(*edge);
            }
        }
        for out in adj.values_mut() {
            out.sort_by_key(|e| (e.to, e.special));
        }
        let mut prev: HashMap<Position, Edge> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([e.to]);
        while let Some(p) = queue.pop_front() {
            if p == e.from {
                break;
            }
            for edge in adj.get(&p).into_iter().flatten() {
                if edge.to != e.to && !prev.contains_key(&edge.to) {
                    prev.insert(edge.to, *edge);
                    queue.push_back(edge.to);
                }
            }
        }
        let mut path = vec![e];
        let mut at = e.from;
        while at != e.to {
            let step = prev[&at];
            path.push(step);
            at = step.from;
        }
        path[1..].reverse();
        Some(path)
    }

    /// The *rank* of every position: the maximum number of special edges on
    /// any path ending at the position. Finite for weakly acyclic sets;
    /// `None` if the set is not weakly acyclic. The maximum rank bounds how
    /// many "generations" of nulls the chase can create at a position
    /// (\[FKMP\] Thm. 3.9), which is what makes Lemma 1's polynomial bound
    /// work.
    pub fn ranks(&self) -> Option<HashMap<Position, usize>> {
        // One traversal serves both questions: the component assignment
        // decides weak acyclicity (special edge inside an SCC?) and then
        // feeds the rank DP, instead of running Tarjan twice.
        let comp = self.sccs();
        if self.special_in_scc(&comp).is_some() {
            return None;
        }
        // Longest-path DP over the condensation. Since special cycles are
        // excluded and ordinary cycles contribute 0, iterate to fixpoint
        // over SCCs in topological order; within an SCC all ranks agree.
        let ncomp = comp.iter().copied().max().map_or(0, |m| m + 1);
        // Component DAG edges with weights (special = 1).
        let mut cedges: HashSet<(usize, usize, usize)> = HashSet::new();
        for e in &self.edges {
            let a = comp[self.node_index[&e.from]];
            let b = comp[self.node_index[&e.to]];
            if a != b || e.special {
                cedges.insert((a, b, usize::from(e.special)));
            }
        }
        // Bellman-Ford style relaxation; the DAG has ≤ ncomp layers.
        let mut rank = vec![0usize; ncomp];
        for _ in 0..ncomp.max(1) {
            let mut changed = false;
            for (a, b, w) in &cedges {
                if rank[*a] + w > rank[*b] {
                    rank[*b] = rank[*a] + w;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Some(
            self.nodes
                .iter()
                .map(|p| (*p, rank[comp[self.node_index[p]]]))
                .collect(),
        )
    }

    /// Maximum rank over all positions (0 for rank-free graphs).
    pub fn max_rank(&self) -> Option<usize> {
        self.ranks().map(|r| r.values().copied().max().unwrap_or(0))
    }
}

/// Is `tgds` weakly acyclic over `schema`?
pub fn is_weakly_acyclic<'a>(schema: &Schema, tgds: impl IntoIterator<Item = &'a Tgd>) -> bool {
    DependencyGraph::new(schema, tgds).is_weakly_acyclic()
}

/// A constructive form of Lemma 1's polynomial: explicit bounds on the
/// values, facts, and steps any chase sequence over a weakly acyclic tgd
/// set can produce, as a function of the input's active-domain size.
///
/// The derivation follows \[FKMP\] Theorem 3.9: values first appearing at
/// rank-`i` positions are either input values or nulls created by a
/// trigger whose premise binds only values of rank < `i`; with `d`
/// dependencies, at most `v` premise variables each, and `e` existentials
/// each, each rank layer multiplies the value count by at most
/// `d · e · G^v`. All arithmetic saturates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ChaseBound {
    /// Upper bound on distinct values in any chase result.
    pub value_bound: usize,
    /// Upper bound on facts in any chase result.
    pub fact_bound: usize,
    /// Upper bound on the length of any chase sequence (tgd steps each add
    /// a fact; egd steps each eliminate a value).
    pub step_bound: usize,
}

/// Compute the Lemma 1 bound for `tgds` over `schema` on inputs with
/// `adom_size` active-domain values. Returns `None` when the set is not
/// weakly acyclic (no finite bound exists in general).
pub fn chase_bound<'a>(
    schema: &Schema,
    tgds: impl IntoIterator<Item = &'a Tgd> + Clone,
    adom_size: usize,
) -> Option<ChaseBound> {
    let graph = DependencyGraph::new(schema, tgds.clone());
    let max_rank = graph.max_rank()?;
    let mut d = 0usize; // number of tgds
    let mut v = 1usize; // max premise variables
    let mut e = 1usize; // max existentials
    for t in tgds {
        d += 1;
        v = v.max(t.premise.variables().len().max(1));
        e = e.max(t.existentials.len().max(1));
    }
    let mut g = adom_size.max(1);
    for _ in 0..=max_rank {
        // New nulls this layer: one per (dependency, premise binding,
        // existential), saturating.
        let bindings = g.saturating_pow(u32::try_from(v).unwrap_or(u32::MAX));
        let fresh = d.saturating_mul(bindings).saturating_mul(e);
        g = g.saturating_add(fresh);
    }
    let max_arity = schema
        .rel_ids()
        .map(|r| schema.arity(r) as usize)
        .max()
        .unwrap_or(0);
    let fact_bound = (schema.len().max(1))
        .saturating_mul(g.saturating_pow(u32::try_from(max_arity).unwrap_or(u32::MAX)));
    Some(ChaseBound {
        value_bound: g,
        fact_bound,
        step_bound: fact_bound.saturating_add(g),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_tgds;
    use pde_relational::parse_schema;

    #[test]
    fn full_tgds_are_weakly_acyclic() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        let tgds = parse_tgds(&s, "A(x, y) -> B(x, y); B(x, y) -> A(y, x)").unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        assert!(g.is_weakly_acyclic());
        assert_eq!(g.max_rank(), Some(0));
    }

    #[test]
    fn self_feeding_existential_is_rejected() {
        let s = parse_schema("target A/2;").unwrap();
        // Classic non-terminating chase: A(x,y) -> exists z . A(y,z).
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        assert!(!g.is_weakly_acyclic());
        assert!(g.find_special_cycle_edge().is_some());
        assert!(g.ranks().is_none());
    }

    #[test]
    fn acyclic_inclusion_dependencies_are_weakly_acyclic() {
        let s = parse_schema("target A/2; target B/2; target C/2;").unwrap();
        let tgds = parse_tgds(
            &s,
            "A(x, y) -> exists z . B(y, z); B(x, y) -> exists z . C(y, z)",
        )
        .unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        assert!(g.is_weakly_acyclic());
        // B.1 has rank 1 (one special edge in); C.1 has rank 2 because the
        // null created at B.1 flows into the premise that creates C's null.
        let ranks = g.ranks().unwrap();
        let b = s.rel_id("B").unwrap();
        let c = s.rel_id("C").unwrap();
        assert_eq!(ranks[&Position { rel: b, attr: 1 }], 1);
        assert_eq!(ranks[&Position { rel: c, attr: 1 }], 2);
        assert_eq!(g.max_rank(), Some(2));
    }

    #[test]
    fn ordinary_cycles_are_fine() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        // Cycle A -> B -> A with no existentials: weakly acyclic.
        let tgds = parse_tgds(&s, "A(x, y) -> B(x, y); B(x, y) -> A(x, y)").unwrap();
        assert!(is_weakly_acyclic(&s, &tgds));
    }

    #[test]
    fn special_edge_into_ordinary_cycle_is_rejected() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        // B -> A ordinary both ways on attr 0; A(x,y) -> exists z . B(x,z)
        // sends attr 0 ordinarily and creates special edge into B.1; then
        // B(u,v) -> A(v,u) sends B.1 to A.0, and A.0 feeds the special edge
        // source again? Build a genuine special cycle:
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . B(y, z); B(x, y) -> A(x, y)").unwrap();
        // Path: A.1 -(special)-> B.1 -(ordinary)-> A.1 : special cycle.
        let g = DependencyGraph::new(&s, &tgds);
        assert!(!g.is_weakly_acyclic());
    }

    #[test]
    fn special_cycle_witness_is_a_closed_walk() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        // A.1 -(special)-> B.1 -(ordinary)-> A.1 is the witness cycle.
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . B(y, z); B(x, y) -> A(x, y)").unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        let cycle = g.find_special_cycle().expect("not weakly acyclic");
        assert!(cycle[0].special);
        assert!(cycle.len() >= 2);
        for (e, f) in cycle.iter().zip(cycle.iter().cycle().skip(1)) {
            assert_eq!(e.to, f.from, "consecutive edges must chain");
        }
    }

    #[test]
    fn self_loop_special_cycle_witness() {
        let s = parse_schema("target A/2;").unwrap();
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(x, z)").unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        // A.0 -(special)-> A.1? No: special edge is A.0 -> A.1, and A.0 -> A.0
        // ordinary. The cycle is A.0's self-loop via the ordinary edge? A.1
        // never flows back, so this IS weakly acyclic. Use the classic one:
        assert!(g.is_weakly_acyclic());
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        let cycle = g.find_special_cycle().expect("not weakly acyclic");
        // A.1 -(special)-> A.1 is a one-edge cycle.
        assert_eq!(cycle.len(), 1);
        assert!(cycle[0].special);
        assert_eq!(cycle[0].from, cycle[0].to);
    }

    #[test]
    fn weakly_acyclic_sets_have_no_cycle_witness() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . B(y, z)").unwrap();
        assert!(DependencyGraph::new(&s, &tgds)
            .find_special_cycle()
            .is_none());
    }

    #[test]
    fn chase_bound_exists_iff_weakly_acyclic() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        let good = parse_tgds(&s, "A(x, y) -> exists z . B(y, z)").unwrap();
        let b = chase_bound(&s, &good, 10).unwrap();
        assert!(b.value_bound >= 10);
        assert!(b.fact_bound >= b.value_bound);
        assert!(b.step_bound >= b.fact_bound);
        let bad = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        assert!(chase_bound(&s, &bad, 10).is_none());
    }

    #[test]
    fn chase_bound_grows_polynomially_in_adom() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        let tgds = parse_tgds(&s, "A(x, y) -> B(x, y)").unwrap();
        let b10 = chase_bound(&s, &tgds, 10).unwrap();
        let b20 = chase_bound(&s, &tgds, 20).unwrap();
        assert!(b20.step_bound > b10.step_bound);
        // Full tgds, rank 0: one layer, v = 2 ⇒ value bound n + n².
        assert_eq!(b10.value_bound, 10 + 100);
    }

    #[test]
    fn chase_bound_saturates_instead_of_overflowing() {
        let s = parse_schema("target A/4;").unwrap();
        let tgds = parse_tgds(&s, "A(x, y, z, w) -> exists u . A(y, z, w, u)").unwrap();
        // Not weakly acyclic: no bound.
        assert!(chase_bound(&s, &tgds, usize::MAX / 2).is_none());
        // A weakly acyclic set with a huge adom must not panic.
        let ok = parse_tgds(&s, "A(x, y, z, w) -> A(w, z, y, x)").unwrap();
        let b = chase_bound(&s, &ok, usize::MAX / 2).unwrap();
        assert_eq!(b.step_bound, usize::MAX);
    }

    #[test]
    fn empty_set_is_weakly_acyclic() {
        let s = parse_schema("target A/2;").unwrap();
        let g = DependencyGraph::new(&s, []);
        assert!(g.is_weakly_acyclic());
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn edge_construction_matches_definition() {
        let s = parse_schema("target A/2; target B/2;").unwrap();
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . B(x, z)").unwrap();
        let g = DependencyGraph::new(&s, &tgds);
        let a = s.rel_id("A").unwrap();
        let b = s.rel_id("B").unwrap();
        let edges: Vec<Edge> = g.edges().copied().collect();
        // x: A.0 -> B.0 ordinary; A.0 -> B.1 special. y occurs nowhere in
        // the conclusion, so contributes nothing.
        assert_eq!(edges.len(), 2);
        assert!(edges.contains(&Edge {
            from: Position { rel: a, attr: 0 },
            to: Position { rel: b, attr: 0 },
            special: false
        }));
        assert!(edges.contains(&Edge {
            from: Position { rel: a, attr: 0 },
            to: Position { rel: b, attr: 1 },
            special: true
        }));
    }
}
