//! Resource governance for the PDE execution layer.
//!
//! The paper's decision procedures only terminate unconditionally for
//! weakly acyclic Σt (Lemma 1); outside that fragment the chase can
//! diverge, and even inside it an adversarial instance can exhaust memory
//! long before a step counter trips. This crate supplies the runtime
//! guards that `ChaseLimits`' raw counters cannot express:
//!
//! * a [`Governor`] carrying a wall-clock deadline, a byte-accounted
//!   memory budget, and a cooperative [`CancelToken`], checked by the
//!   engines at chase-round and solver-branch granularity;
//! * structured [`StopReason`]s — a governed run that exhausts a budget
//!   reports *why* it stopped, never a wrong answer;
//! * panic isolation ([`isolate`]) turning engine panics into
//!   [`EngineError`] values instead of process aborts;
//! * a deterministic fault-injection harness ([`FaultPlan`], behind the
//!   `fault-injection` cargo feature) that fires allocation failures,
//!   cancellations, trigger panics, and clock skips at exact points so
//!   tests can prove every failure surfaces as a clean structured outcome.
//!
//! See `docs/ROBUSTNESS.md` for the design and the degradation ladder.

mod fault;
mod governor;

pub use fault::FaultPlan;
pub use governor::{CancelToken, Governor, GovernorConfig, GovernorReport, StopReason};

use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A failure of an engine itself (as opposed to a budget stop): the engine
/// panicked and the panic was contained by [`isolate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// The engine panicked; `message` is the panic payload when it was a
    /// string, or a placeholder otherwise.
    Panicked {
        /// Panic payload rendered as text.
        message: String,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Panicked { message } => write!(f, "engine panicked: {message}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// Run `f`, containing any panic as an [`EngineError`] instead of letting
/// it unwind into the caller.
///
/// The closure is wrapped in [`AssertUnwindSafe`]: callers must not reuse
/// state the closure mutated in place after a panic. The PDE solvers
/// satisfy this by construction — engines consume *clones* of the input
/// instance, so a contained panic can never poison the caller's data.
pub fn isolate<T>(f: impl FnOnce() -> T) -> Result<T, EngineError> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_owned()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "non-string panic payload".to_owned()
        };
        EngineError::Panicked { message }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_passes_values_through() {
        assert_eq!(isolate(|| 41 + 1), Ok(42));
    }

    #[test]
    fn isolate_contains_str_panics() {
        let err = isolate(|| -> u32 { panic!("boom") }).unwrap_err();
        assert_eq!(
            err,
            EngineError::Panicked {
                message: "boom".to_owned()
            }
        );
        assert!(err.to_string().contains("boom"));
    }

    #[test]
    fn isolate_contains_formatted_panics() {
        let err = isolate(|| -> u32 { panic!("step {}", 7) }).unwrap_err();
        assert_eq!(
            err,
            EngineError::Panicked {
                message: "step 7".to_owned()
            }
        );
    }
}
