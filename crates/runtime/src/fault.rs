//! Deterministic fault plans for the `fault-injection` feature.

use std::time::Duration;

/// A deterministic schedule of injected faults.
///
/// Each point is **one-shot**: it disarms as it fires, so a solver that
/// retries on the fallback engine after a fault sees a clean second run —
/// exactly the degradation ladder the fault is meant to exercise. The
/// type is always available (it is plain data), but only a governor built
/// with `Governor::with_faults` — which exists only under the
/// `fault-injection` cargo feature — ever fires one.
///
/// Step-indexed points (`fail_alloc_at_step`, `panic_in_trigger_at_step`)
/// fire at the first checkpoint whose chase step is `>= k`; round-indexed
/// points fire at the first checkpoint whose round/branch ordinal is
/// `>= r`. The `>=` makes every plan reachable even when an engine's step
/// counter skips values.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Fail the allocation checkpoint at chase step `k` (surfaces as
    /// `StopReason::FaultInjected { point: "alloc" }`).
    pub fail_alloc_at_step: Option<usize>,
    /// Trip the shared cancel token at round `r` (surfaces as
    /// `StopReason::Cancelled`).
    pub cancel_at_round: Option<usize>,
    /// Panic inside trigger application at chase step `k` (contained as
    /// an `EngineError` by `isolate` at the solver boundary).
    pub panic_in_trigger_at_step: Option<usize>,
    /// At round `r`, skew the governor's clock forward by the given
    /// duration (surfaces as `StopReason::DeadlineExceeded` when a
    /// deadline is set).
    pub clock_skip_at_round: Option<(usize, Duration)>,
}

impl FaultPlan {
    /// Is any fault still armed?
    pub fn is_armed(&self) -> bool {
        self.fail_alloc_at_step.is_some()
            || self.cancel_at_round.is_some()
            || self.panic_in_trigger_at_step.is_some()
            || self.clock_skip_at_round.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_disarmed() {
        assert!(!FaultPlan::default().is_armed());
        assert!(FaultPlan {
            cancel_at_round: Some(0),
            ..FaultPlan::default()
        }
        .is_armed());
    }
}
