//! The [`Governor`]: cooperative deadlines, memory budgets, cancellation.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared flag for cooperatively cancelling a running solve.
///
/// Clones share the flag: hand one clone to the engine (inside a
/// [`GovernorConfig`]) and keep another to call [`CancelToken::cancel`]
/// from a different thread. Engines observe the flag at their next
/// round/branch checkpoint and stop with [`StopReason::Cancelled`].
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// Request cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Why a governed run stopped before reaching an answer.
///
/// Every variant is a *refusal to keep spending*, never a claim about the
/// instance: callers surface it as `Undecided`, not as a SOL/certain
/// answer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The wall-clock deadline elapsed.
    DeadlineExceeded {
        /// The configured deadline.
        budget: Duration,
    },
    /// The observed instance footprint exceeded the byte budget.
    MemoryExhausted {
        /// Estimated heap bytes observed at the tripping checkpoint.
        observed_bytes: usize,
        /// The configured budget.
        budget_bytes: usize,
    },
    /// The [`CancelToken`] was triggered.
    Cancelled,
    /// A deterministic fault-injection point fired (only with the
    /// `fault-injection` feature; named so tests can tell injected stops
    /// from genuine ones).
    FaultInjected {
        /// The fault point that fired (e.g. `"alloc"`).
        point: &'static str,
    },
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::DeadlineExceeded { budget } => {
                write!(f, "deadline exceeded ({budget:?} budget)")
            }
            StopReason::MemoryExhausted {
                observed_bytes,
                budget_bytes,
            } => write!(
                f,
                "memory budget exhausted ({observed_bytes} bytes observed, {budget_bytes} budget)"
            ),
            StopReason::Cancelled => write!(f, "cancelled"),
            StopReason::FaultInjected { point } => write!(f, "injected fault at {point:?}"),
        }
    }
}

/// Budgets for a governed run. `Default` is fully unlimited.
#[derive(Clone, Debug, Default)]
pub struct GovernorConfig {
    /// Wall-clock budget, measured from [`Governor::new`].
    pub deadline: Option<Duration>,
    /// Memory budget in heap bytes as accounted by the columnar storage
    /// (see `Instance::heap_bytes`).
    pub memory_budget_bytes: Option<usize>,
    /// External cancellation handle; a fresh token is created when absent.
    pub cancel: Option<CancelToken>,
}

/// Counters a [`Governor`] accumulated over a run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct GovernorReport {
    /// Budget checkpoints evaluated.
    pub checks: usize,
    /// Largest byte estimate observed at any checkpoint.
    pub peak_bytes: usize,
    /// Checkpoints that observed the cancel flag set.
    pub cancellations_observed: usize,
    /// Checkpoints that stopped the run (0 or 1 per engine attempt).
    pub stops: usize,
    /// Fault-injection points that fired (always 0 without the
    /// `fault-injection` feature).
    pub faults_fired: usize,
    /// Wall-clock budget left, if a deadline was configured (saturates at
    /// zero once exceeded).
    pub deadline_remaining: Option<Duration>,
}

impl GovernorReport {
    /// Did the governor stop the run at any checkpoint? Serve's access-log
    /// and flight-recorder layers key degraded-outcome handling off this.
    pub fn stopped(&self) -> bool {
        self.stops > 0
    }

    /// Export every counter into a [`pde_trace::MetricsRegistry`] under
    /// the `governor.` prefix. The registry is the canonical report-layer
    /// home for these numbers (see the deprecation notes on the
    /// governor-derived `ChaseStats` fields).
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        let u = |x: usize| u64::try_from(x).unwrap_or(u64::MAX);
        reg.add("governor.checks", u(self.checks));
        reg.set_max("governor.peak_bytes", u(self.peak_bytes));
        reg.add(
            "governor.cancellations_observed",
            u(self.cancellations_observed),
        );
        reg.add("governor.stops", u(self.stops));
        reg.add("governor.faults_fired", u(self.faults_fired));
        if let Some(d) = self.deadline_remaining {
            reg.set(
                "governor.deadline_remaining_ns",
                u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            );
        }
    }
}

/// Cooperative resource governor threaded through chase engines and
/// solvers.
///
/// Engines call [`Governor::on_round`] at every chase round / solver
/// branch with their current byte estimate; a `Err(StopReason)` means
/// "stop now and report `Undecided`". All counters are atomics, so one
/// governor may be shared across the threads of a parallel solve.
#[derive(Debug)]
pub struct Governor {
    started: Instant,
    deadline: Option<Duration>,
    memory_budget: Option<usize>,
    cancel: CancelToken,
    /// Artificial addition to elapsed time, injected by the clock-skip
    /// fault (nanoseconds).
    skew_nanos: AtomicU64,
    checks: AtomicUsize,
    peak_bytes: AtomicUsize,
    cancellations_observed: AtomicUsize,
    stops: AtomicUsize,
    faults_fired: AtomicUsize,
    #[cfg(feature = "fault-injection")]
    faults: std::sync::Mutex<crate::FaultPlan>,
}

impl Governor {
    /// A governor with the given budgets.
    pub fn new(config: GovernorConfig) -> Governor {
        Governor {
            started: Instant::now(),
            deadline: config.deadline,
            memory_budget: config.memory_budget_bytes,
            cancel: config.cancel.unwrap_or_default(),
            skew_nanos: AtomicU64::new(0),
            checks: AtomicUsize::new(0),
            peak_bytes: AtomicUsize::new(0),
            cancellations_observed: AtomicUsize::new(0),
            stops: AtomicUsize::new(0),
            faults_fired: AtomicUsize::new(0),
            #[cfg(feature = "fault-injection")]
            faults: std::sync::Mutex::new(crate::FaultPlan::default()),
        }
    }

    /// A governor with no budgets: every check passes (unless a fault
    /// plan is armed). This is what the ungoverned public entry points
    /// use, so the ungoverned fast path stays allocation-free.
    pub fn unlimited() -> Governor {
        Governor::new(GovernorConfig::default())
    }

    /// A governor with an armed fault plan (deterministic fault
    /// injection; test-only feature).
    #[cfg(feature = "fault-injection")]
    pub fn with_faults(config: GovernorConfig, plan: crate::FaultPlan) -> Governor {
        let g = Governor::new(config);
        *g.faults.lock().expect("fault plan lock never poisoned") = plan;
        g
    }

    /// A clone of the cancel token governing this run.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Does this governor enforce a memory budget? Engines may skip
    /// computing byte estimates when it does not.
    pub fn tracks_memory(&self) -> bool {
        self.memory_budget.is_some()
    }

    /// Elapsed wall-clock time, including injected skew.
    fn elapsed(&self) -> Duration {
        self.started.elapsed() + Duration::from_nanos(self.skew_nanos.load(Ordering::Relaxed))
    }

    /// Wall-clock budget left, if a deadline was configured.
    pub fn deadline_remaining(&self) -> Option<Duration> {
        self.deadline.map(|d| d.saturating_sub(self.elapsed()))
    }

    /// Evaluate every budget against the caller's current byte estimate.
    ///
    /// Order: cancellation, then deadline, then memory — a cancelled run
    /// reports `Cancelled` even if it also blew its deadline.
    pub fn check(&self, observed_bytes: usize) -> Result<(), StopReason> {
        let _span = pde_trace::span("governor.check").field("bytes", observed_bytes);
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.peak_bytes.fetch_max(observed_bytes, Ordering::Relaxed);
        if self.cancel.is_cancelled() {
            self.cancellations_observed.fetch_add(1, Ordering::Relaxed);
            return self.stop(StopReason::Cancelled);
        }
        if let Some(budget) = self.deadline {
            if self.elapsed() > budget {
                return self.stop(StopReason::DeadlineExceeded { budget });
            }
        }
        if let Some(budget_bytes) = self.memory_budget {
            if observed_bytes > budget_bytes {
                return self.stop(StopReason::MemoryExhausted {
                    observed_bytes,
                    budget_bytes,
                });
            }
        }
        Ok(())
    }

    fn stop(&self, reason: StopReason) -> Result<(), StopReason> {
        self.stops.fetch_add(1, Ordering::Relaxed);
        Err(reason)
    }

    /// Round/branch checkpoint: fires any round-indexed faults, then
    /// evaluates the budgets. `index` is the 1-based chase round or the
    /// solver's branch/node ordinal; `observed_bytes` may be 0 when
    /// [`Governor::tracks_memory`] is false.
    pub fn on_round(&self, index: usize, observed_bytes: usize) -> Result<(), StopReason> {
        #[cfg(feature = "fault-injection")]
        self.fire_round_faults(index);
        #[cfg(not(feature = "fault-injection"))]
        let _ = index;
        self.check(observed_bytes)
    }

    /// Allocation checkpoint, called before an engine materializes new
    /// facts at chase step `step`. Only the injected allocation-failure
    /// fault can trip it; it exists so tests can prove a failed
    /// allocation surfaces as a structured stop.
    pub fn on_alloc(&self, step: usize) -> Result<(), StopReason> {
        #[cfg(feature = "fault-injection")]
        if self.take_fault(|p| match p.fail_alloc_at_step {
            Some(k) if step >= k => {
                p.fail_alloc_at_step = None;
                true
            }
            _ => false,
        }) {
            self.stops.fetch_add(1, Ordering::Relaxed);
            return Err(StopReason::FaultInjected { point: "alloc" });
        }
        #[cfg(not(feature = "fault-injection"))]
        let _ = step;
        Ok(())
    }

    /// Trigger checkpoint, called as an engine fires a trigger at chase
    /// step `step`. Panics when the panic-in-trigger fault is armed for
    /// this step — the panic is meant to be contained by [`crate::isolate`]
    /// at the solver boundary.
    pub fn on_trigger(&self, step: usize) {
        #[cfg(feature = "fault-injection")]
        if self.take_fault(|p| match p.panic_in_trigger_at_step {
            Some(k) if step >= k => {
                p.panic_in_trigger_at_step = None;
                true
            }
            _ => false,
        }) {
            panic!("injected panic in trigger (fault-injection, step {step})");
        }
        #[cfg(not(feature = "fault-injection"))]
        let _ = step;
    }

    /// Snapshot the run counters.
    pub fn report(&self) -> GovernorReport {
        GovernorReport {
            checks: self.checks.load(Ordering::Relaxed),
            peak_bytes: self.peak_bytes.load(Ordering::Relaxed),
            cancellations_observed: self.cancellations_observed.load(Ordering::Relaxed),
            stops: self.stops.load(Ordering::Relaxed),
            faults_fired: self.faults_fired.load(Ordering::Relaxed),
            deadline_remaining: self.deadline_remaining(),
        }
    }

    /// Fire round-indexed faults (cancel-at-round, clock-skip). Each is
    /// one-shot: it disarms as it fires.
    #[cfg(feature = "fault-injection")]
    fn fire_round_faults(&self, round: usize) {
        if self.take_fault(|p| match p.cancel_at_round {
            Some(r) if round >= r => {
                p.cancel_at_round = None;
                true
            }
            _ => false,
        }) {
            self.cancel.cancel();
        }
        let skip = {
            let mut plan = self.faults.lock().expect("fault plan lock never poisoned");
            match plan.clock_skip_at_round {
                Some((r, skip)) if round >= r => {
                    plan.clock_skip_at_round = None;
                    Some(skip)
                }
                _ => None,
            }
        };
        if let Some(skip) = skip {
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
            let nanos = u64::try_from(skip.as_nanos()).unwrap_or(u64::MAX);
            self.skew_nanos.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    /// Run `f` on the fault plan; when it reports a fault fired, count it.
    #[cfg(feature = "fault-injection")]
    fn take_fault(&self, f: impl FnOnce(&mut crate::FaultPlan) -> bool) -> bool {
        let fired = f(&mut self.faults.lock().expect("fault plan lock never poisoned"));
        if fired {
            self.faults_fired.fetch_add(1, Ordering::Relaxed);
        }
        fired
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_always_passes() {
        let g = Governor::unlimited();
        for i in 0..100 {
            assert_eq!(g.on_round(i, i * 1024), Ok(()));
            assert_eq!(g.on_alloc(i), Ok(()));
            g.on_trigger(i);
        }
        let r = g.report();
        assert_eq!(r.checks, 100);
        assert_eq!(r.peak_bytes, 99 * 1024);
        assert_eq!(r.stops, 0);
        assert_eq!(r.deadline_remaining, None);
    }

    #[test]
    fn zero_deadline_trips_immediately() {
        let g = Governor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        });
        assert_eq!(
            g.check(0),
            Err(StopReason::DeadlineExceeded {
                budget: Duration::ZERO
            })
        );
        assert_eq!(g.report().stops, 1);
        assert_eq!(g.deadline_remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn memory_budget_trips_on_excess() {
        let g = Governor::new(GovernorConfig {
            memory_budget_bytes: Some(1000),
            ..GovernorConfig::default()
        });
        assert!(g.tracks_memory());
        assert_eq!(g.check(1000), Ok(()));
        assert_eq!(
            g.check(1001),
            Err(StopReason::MemoryExhausted {
                observed_bytes: 1001,
                budget_bytes: 1000
            })
        );
        assert_eq!(g.report().peak_bytes, 1001);
    }

    #[test]
    fn cancellation_wins_over_other_budgets() {
        let token = CancelToken::new();
        let g = Governor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            memory_budget_bytes: Some(0),
            cancel: Some(token.clone()),
        });
        token.cancel();
        assert_eq!(g.check(usize::MAX), Err(StopReason::Cancelled));
        assert_eq!(g.report().cancellations_observed, 1);
    }

    #[test]
    fn cancel_token_is_shared_between_clones() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[cfg(feature = "fault-injection")]
    mod faults {
        use super::*;
        use crate::FaultPlan;

        #[test]
        fn alloc_fault_fires_once_at_step() {
            let g = Governor::with_faults(
                GovernorConfig::default(),
                FaultPlan {
                    fail_alloc_at_step: Some(3),
                    ..FaultPlan::default()
                },
            );
            assert_eq!(g.on_alloc(2), Ok(()));
            assert_eq!(
                g.on_alloc(3),
                Err(StopReason::FaultInjected { point: "alloc" })
            );
            // One-shot: a retry on the fallback engine passes.
            assert_eq!(g.on_alloc(3), Ok(()));
            assert_eq!(g.report().faults_fired, 1);
        }

        #[test]
        fn cancel_at_round_cancels_via_the_token() {
            let g = Governor::with_faults(
                GovernorConfig::default(),
                FaultPlan {
                    cancel_at_round: Some(2),
                    ..FaultPlan::default()
                },
            );
            assert_eq!(g.on_round(1, 0), Ok(()));
            assert_eq!(g.on_round(2, 0), Err(StopReason::Cancelled));
        }

        #[test]
        fn panic_in_trigger_panics_exactly_once() {
            let g = Governor::with_faults(
                GovernorConfig::default(),
                FaultPlan {
                    panic_in_trigger_at_step: Some(1),
                    ..FaultPlan::default()
                },
            );
            g.on_trigger(0);
            let err = crate::isolate(|| g.on_trigger(1)).unwrap_err();
            let crate::EngineError::Panicked { message } = err;
            assert!(message.contains("injected panic"));
            g.on_trigger(1); // disarmed
        }

        #[test]
        fn clock_skip_fast_forwards_the_deadline() {
            let g = Governor::with_faults(
                GovernorConfig {
                    deadline: Some(Duration::from_secs(3600)),
                    ..GovernorConfig::default()
                },
                FaultPlan {
                    clock_skip_at_round: Some((2, Duration::from_secs(7200))),
                    ..FaultPlan::default()
                },
            );
            assert_eq!(g.on_round(1, 0), Ok(()));
            assert_eq!(
                g.on_round(2, 0),
                Err(StopReason::DeadlineExceeded {
                    budget: Duration::from_secs(3600)
                })
            );
            assert_eq!(g.deadline_remaining(), Some(Duration::ZERO));
        }
    }
}
