//! Chase engines for peer data exchange.
//!
//! * [`satisfy`]: dependency satisfaction checks (`K ⊨ d`);
//! * [`engine`]: the standard chase with fresh nulls and the paper's
//!   solution-aware chase (Definitions 6–7), each in a semi-naive
//!   delta-driven implementation (default) and a naive oracle
//!   implementation (see `docs/CHASE.md`);
//! * [`result`]: outcomes (success / egd failure / resource limits) and
//!   step statistics.
//!
//! The solution-aware chase is the tool behind the paper's NP upper bound
//! (Lemmas 1–2): chasing `(I, J)` while drawing existential witnesses from
//! a known solution `J'` yields a solution of polynomial size contained in
//! `J'`.

pub mod engine;
pub mod result;
pub mod satisfy;

pub use engine::{
    chase, chase_governed_scheduled, chase_governed_with, chase_incremental_governed, chase_naive,
    chase_naive_with, chase_seminaive_with, chase_tgds, chase_tgds_governed, chase_with,
    default_chase_engine, null_gen_for, set_default_chase_engine, solution_aware_chase,
    ChaseEngine, DepSchedule, WitnessMode,
};
pub use result::{ChaseLimits, ChaseOutcome, ChaseResult, ChaseStats, StepRecord};
pub use satisfy::{
    find_egd_violation, find_tgd_violation, satisfies, satisfies_all, satisfies_all_tgds,
    satisfies_disjunctive, satisfies_egd, satisfies_tgd,
};
