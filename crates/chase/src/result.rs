//! Chase outcomes, limits, and step statistics.

use pde_relational::Instance;
use pde_runtime::StopReason;
use std::fmt;

/// Resource limits guarding against non-terminating chases.
///
/// Weakly acyclic sets terminate within a polynomial bound, but the engine
/// also accepts arbitrary tgd sets (e.g. in tests demonstrating
/// divergence), so hard caps are always enforced.
#[derive(Clone, Copy, Debug)]
pub struct ChaseLimits {
    /// Maximum number of applied chase steps.
    pub max_steps: usize,
    /// Maximum total number of facts in the chased instance.
    pub max_facts: usize,
}

impl Default for ChaseLimits {
    fn default() -> Self {
        ChaseLimits {
            max_steps: 1_000_000,
            max_facts: 10_000_000,
        }
    }
}

impl ChaseLimits {
    /// Small limits for tests that expect divergence.
    ///
    /// The fact cap is derived from the step cap rather than left
    /// unlimited: a tgd step inserts at most its conclusion's atom count
    /// in facts, so `16` facts per step (plus slack for the seed
    /// instance) dominates any realistic dependency — a divergent chase
    /// trips the step limit first, and a buggy engine that loops without
    /// counting steps still cannot balloon memory.
    pub fn tight(max_steps: usize) -> ChaseLimits {
        ChaseLimits {
            max_steps,
            max_facts: max_steps.saturating_mul(16).saturating_add(1024),
        }
    }

    /// Limits derived from the constructive Lemma 1 bound
    /// ([`pde_constraints::chase_bound`]): a chase within these limits is
    /// guaranteed to run to completion on weakly acyclic sets, and the
    /// limits still guard against bugs.
    pub fn from_bound(bound: pde_constraints::ChaseBound) -> ChaseLimits {
        ChaseLimits {
            max_steps: bound.step_bound,
            max_facts: bound.fact_bound,
        }
    }
}

/// Why a chase ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ChaseOutcome {
    /// No dependency is applicable: the result satisfies them all.
    Success,
    /// An egd equated two distinct constants — the chase *fails*
    /// (paper Def. 6, egd case); no instance containing the input can
    /// satisfy the dependencies.
    Failure {
        /// Index (into the chased dependency list) of the failing egd.
        dep_index: usize,
    },
    /// A resource limit was hit before a fixpoint was reached.
    ResourceExceeded,
    /// The runtime governor stopped the run (deadline, memory budget,
    /// cancellation, or an injected fault) before a fixpoint was reached.
    /// Like `ResourceExceeded` this is a refusal to keep spending, not a
    /// claim about the instance.
    Stopped {
        /// Why the governor stopped the run.
        reason: StopReason,
    },
}

/// What one chase step did (lightweight provenance for debugging and for
/// the block-lemma tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StepRecord {
    /// A tgd fired: index into the chased dependency list, and the number
    /// of new facts its conclusion contributed.
    Tgd {
        /// Dependency index.
        dep_index: usize,
        /// Facts newly inserted by this step.
        new_facts: usize,
    },
    /// An egd merged two values.
    Egd {
        /// Dependency index.
        dep_index: usize,
        /// The value that was replaced.
        from: pde_relational::Value,
        /// The value it was replaced with.
        to: pde_relational::Value,
    },
}

/// Aggregate engine counters for one chase run — what `pde solve --stats`
/// prints. All counters are filled by both engines except
/// `skipped_by_delta`, which is inherently semi-naive (the naive engine
/// reports 0 there: it skips nothing).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChaseStats {
    /// Number of rounds (sweeps over the dependency list) until fixpoint,
    /// failure, or a limit.
    pub rounds: usize,
    /// Premise matches examined as potential triggers.
    pub triggers_found: usize,
    /// Triggers actually applied (equals the tgd step count).
    pub triggers_fired: usize,
    /// Triggers whose conclusion already had an extension when (re)checked.
    pub triggers_satisfied: usize,
    /// Premise matches the naive engine would have re-enumerated in later
    /// rounds but the delta windows never revisited (cumulative
    /// previously-seen matches, summed over rounds after their discovery).
    pub skipped_by_delta: usize,
    /// Egd merges applied (equals the egd step count).
    pub egd_merges: usize,
    /// Largest estimated instance footprint observed at any governor
    /// checkpoint, in bytes (0 for ungoverned runs that never checked).
    ///
    /// **Deprecation note:** governor-derived; engines no longer populate
    /// it. Read [`pde_runtime::GovernorReport::peak_bytes`] (or the run
    /// report's `governor.peak_bytes` metric) instead. The field stays so
    /// the public shape is unchanged; it will be removed in a future
    /// revision.
    pub peak_bytes: usize,
    /// Governor checkpoints that observed the cancel token set.
    ///
    /// **Deprecation note:** governor-derived; engines no longer populate
    /// it — read [`pde_runtime::GovernorReport::cancellations_observed`].
    pub cancellations_observed: usize,
    /// Wall-clock budget left when the run finished, in nanoseconds
    /// (`None` when no deadline was configured; saturates at `u64::MAX`).
    ///
    /// **Deprecation note:** governor-derived; engines no longer populate
    /// it — read [`pde_runtime::GovernorReport::deadline_remaining`].
    pub deadline_remaining_nanos: Option<u64>,
    /// Latency distribution of completed rounds, in nanoseconds. Rounds
    /// cut short by a governor stop or a resource limit are not recorded
    /// (their partial timing would skew the buckets), so `round_ns.count`
    /// can trail `rounds` by one on stopped runs.
    pub round_ns: pde_trace::Histogram,
}

impl ChaseStats {
    /// Fold another run's counters into this one, for callers that run
    /// several chases and report one aggregate. Work counters sum; the
    /// governor-derived fields combine so that chases sharing one
    /// governor (whose reports are cumulative) are not double-counted:
    /// peak bytes and cancellations take the max, deadline remaining
    /// takes the min.
    pub fn absorb(&mut self, other: ChaseStats) {
        self.rounds += other.rounds;
        self.triggers_found += other.triggers_found;
        self.triggers_fired += other.triggers_fired;
        self.triggers_satisfied += other.triggers_satisfied;
        self.skipped_by_delta += other.skipped_by_delta;
        self.egd_merges += other.egd_merges;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
        self.cancellations_observed = self
            .cancellations_observed
            .max(other.cancellations_observed);
        self.deadline_remaining_nanos = match (
            self.deadline_remaining_nanos,
            other.deadline_remaining_nanos,
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.round_ns.merge(&other.round_ns);
    }

    /// Export the engine work counters into a
    /// [`pde_trace::MetricsRegistry`] under the `chase.` prefix.
    ///
    /// Only engine-owned counters are exported; the deprecated
    /// governor-derived fields are deliberately omitted — the report layer
    /// sources those from [`pde_runtime::GovernorReport::export_metrics`]
    /// so they are counted exactly once.
    pub fn export_metrics(&self, reg: &mut pde_trace::MetricsRegistry) {
        let u = |x: usize| u64::try_from(x).unwrap_or(u64::MAX);
        reg.add("chase.rounds", u(self.rounds));
        reg.add("chase.triggers_found", u(self.triggers_found));
        reg.add("chase.triggers_fired", u(self.triggers_fired));
        reg.add("chase.triggers_satisfied", u(self.triggers_satisfied));
        reg.add("chase.skipped_by_delta", u(self.skipped_by_delta));
        reg.add("chase.egd_merges", u(self.egd_merges));
        reg.merge_histogram("chase.round_ns", &self.round_ns);
    }
}

/// The result of a chase run.
#[derive(Clone, Debug)]
pub struct ChaseResult {
    /// How the run ended.
    pub outcome: ChaseOutcome,
    /// The instance at the end of the run (meaningful for `Success`;
    /// best-effort snapshot otherwise).
    pub instance: Instance,
    /// Number of applied chase steps (tgd applications + egd merges).
    pub steps: usize,
    /// Number of tgd steps among `steps`.
    pub tgd_steps: usize,
    /// Number of egd steps among `steps`.
    pub egd_steps: usize,
    /// Per-step provenance, in application order.
    pub log: Vec<StepRecord>,
    /// Engine counters (rounds, trigger bookkeeping, merges).
    pub stats: ChaseStats,
}

impl ChaseResult {
    /// The successfully chased instance, or `None` on failure/limits.
    pub fn into_success(self) -> Option<Instance> {
        match self.outcome {
            ChaseOutcome::Success => Some(self.instance),
            _ => None,
        }
    }

    /// Did the chase succeed?
    pub fn is_success(&self) -> bool {
        self.outcome == ChaseOutcome::Success
    }

    /// Did the chase fail on an egd?
    pub fn is_failure(&self) -> bool {
        matches!(self.outcome, ChaseOutcome::Failure { .. })
    }
}

impl fmt::Display for ChaseOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChaseOutcome::Success => write!(f, "success"),
            ChaseOutcome::Failure { dep_index } => {
                write!(f, "failure (egd #{dep_index} merged two constants)")
            }
            ChaseOutcome::ResourceExceeded => write!(f, "resource limit exceeded"),
            ChaseOutcome::Stopped { reason } => write!(f, "stopped: {reason}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_relational::{parse_schema, Instance};
    use std::sync::Arc;

    #[test]
    fn outcome_predicates() {
        let s = Arc::new(parse_schema("target A/1;").unwrap());
        let inst = Instance::new(s);
        let ok = ChaseResult {
            outcome: ChaseOutcome::Success,
            instance: inst.clone(),
            steps: 0,
            tgd_steps: 0,
            egd_steps: 0,
            log: Vec::new(),
            stats: ChaseStats::default(),
        };
        assert!(ok.is_success());
        assert!(ok.into_success().is_some());
        let bad = ChaseResult {
            outcome: ChaseOutcome::Failure { dep_index: 2 },
            instance: inst,
            steps: 1,
            tgd_steps: 0,
            egd_steps: 1,
            log: Vec::new(),
            stats: ChaseStats::default(),
        };
        assert!(bad.is_failure());
        assert!(!bad.is_success());
        assert!(format!("{}", bad.outcome).contains("#2"));
    }

    #[test]
    fn default_limits_are_generous() {
        let l = ChaseLimits::default();
        assert!(l.max_steps >= 1_000_000);
        let t = ChaseLimits::tight(10);
        assert_eq!(t.max_steps, 10);
    }

    #[test]
    fn tight_limits_cap_facts_too() {
        // Regression: `tight` used to leave `max_facts: usize::MAX`, so a
        // divergence test against an engine that forgot to count steps
        // could OOM before any limit tripped.
        let t = ChaseLimits::tight(50);
        assert!(t.max_facts < usize::MAX);
        assert!(t.max_facts >= 50, "cap must not fire before the step cap");
        // Saturates instead of overflowing for huge step caps.
        assert_eq!(ChaseLimits::tight(usize::MAX).max_facts, usize::MAX);
    }

    #[test]
    fn absorb_combines_governor_fields_without_double_counting() {
        let mut a = ChaseStats {
            rounds: 2,
            peak_bytes: 100,
            cancellations_observed: 1,
            deadline_remaining_nanos: Some(500),
            ..ChaseStats::default()
        };
        // A second chase on the same governor: cumulative counters.
        let b = ChaseStats {
            rounds: 3,
            peak_bytes: 80,
            cancellations_observed: 1,
            deadline_remaining_nanos: Some(200),
            ..ChaseStats::default()
        };
        a.absorb(b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.peak_bytes, 100);
        assert_eq!(a.cancellations_observed, 1);
        assert_eq!(a.deadline_remaining_nanos, Some(200));
    }

    #[test]
    fn stopped_outcome_displays_its_reason() {
        let o = ChaseOutcome::Stopped {
            reason: StopReason::Cancelled,
        };
        assert!(o.to_string().contains("cancelled"));
    }
}
