//! Dependency satisfaction checks.
//!
//! `(I, J) ⊨ Σ` questions reduce to homomorphism searches: a tgd is
//! satisfied when every premise homomorphism extends to a conclusion
//! homomorphism; an egd when no premise homomorphism separates the equated
//! variables. These checks are used to verify solutions (paper Def. 2) and
//! as the chase's trigger tests.

use pde_constraints::{Dependency, DisjunctiveTgd, Egd, Tgd};
use pde_relational::{exists_hom, for_each_hom, Assignment, Instance};
use std::ops::ControlFlow;

/// Does `inst` satisfy the tgd?
pub fn satisfies_tgd(inst: &Instance, tgd: &Tgd) -> bool {
    find_tgd_violation(inst, tgd).is_none()
}

/// A premise homomorphism with no conclusion extension, if one exists.
pub fn find_tgd_violation(inst: &Instance, tgd: &Tgd) -> Option<Assignment> {
    let mut violation = None;
    let _ = for_each_hom(&tgd.premise.atoms, inst, &Assignment::new(), |h| {
        if exists_hom(&tgd.conclusion.atoms, inst, h) {
            ControlFlow::Continue(())
        } else {
            violation = Some(h.clone());
            ControlFlow::Break(())
        }
    });
    violation
}

/// Does `inst` satisfy the egd?
pub fn satisfies_egd(inst: &Instance, egd: &Egd) -> bool {
    find_egd_violation(inst, egd).is_none()
}

/// A premise homomorphism separating the equated variables, if one exists.
pub fn find_egd_violation(inst: &Instance, egd: &Egd) -> Option<Assignment> {
    let mut violation = None;
    let _ = for_each_hom(&egd.premise.atoms, inst, &Assignment::new(), |h| {
        let l = h.get(egd.lhs).expect("egd lhs bound by premise");
        let r = h.get(egd.rhs).expect("egd rhs bound by premise");
        if l == r {
            ControlFlow::Continue(())
        } else {
            violation = Some(h.clone());
            ControlFlow::Break(())
        }
    });
    violation
}

/// Does `inst` satisfy the dependency?
pub fn satisfies(inst: &Instance, dep: &Dependency) -> bool {
    match dep {
        Dependency::Tgd(t) => satisfies_tgd(inst, t),
        Dependency::Egd(e) => satisfies_egd(inst, e),
    }
}

/// Does `inst` satisfy every dependency of `deps`?
pub fn satisfies_all<'a>(inst: &Instance, deps: impl IntoIterator<Item = &'a Dependency>) -> bool {
    deps.into_iter().all(|d| satisfies(inst, d))
}

/// Does `inst` satisfy every tgd of `tgds`?
pub fn satisfies_all_tgds<'a>(inst: &Instance, tgds: impl IntoIterator<Item = &'a Tgd>) -> bool {
    tgds.into_iter().all(|t| satisfies_tgd(inst, t))
}

/// Does `inst` satisfy the disjunctive tgd (some disjunct extendable for
/// every premise homomorphism)?
pub fn satisfies_disjunctive(inst: &Instance, d: &DisjunctiveTgd) -> bool {
    let mut ok = true;
    let _ = for_each_hom(&d.premise.atoms, inst, &Assignment::new(), |h| {
        if d.disjuncts
            .iter()
            .any(|dj| exists_hom(&dj.conjunction.atoms, inst, h))
        {
            ControlFlow::Continue(())
        } else {
            ok = false;
            ControlFlow::Break(())
        }
    });
    ok
}

#[cfg(test)]
mod tests {
    use super::*;
    use pde_constraints::{parse_disjunctive_tgd, parse_egd, parse_tgd};
    use pde_relational::{parse_instance, parse_schema, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2; target H/2; source R/1; source B/1;").unwrap())
    }

    #[test]
    fn tgd_satisfaction() {
        let s = schema();
        let tgd = parse_tgd(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let sat = parse_instance(&s, "E(a, b). E(b, c). H(a, c).").unwrap();
        assert!(satisfies_tgd(&sat, &tgd));
        let unsat = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
        assert!(!satisfies_tgd(&unsat, &tgd));
        let v = find_tgd_violation(&unsat, &tgd).unwrap();
        assert_eq!(
            v.get("x".into()),
            Some(pde_relational::Value::constant("a"))
        );
    }

    #[test]
    fn tgd_with_existential() {
        let s = schema();
        let tgd = parse_tgd(&s, "H(x, y) -> exists z . E(x, z), E(z, y)").unwrap();
        let sat = parse_instance(&s, "H(a, c). E(a, b). E(b, c).").unwrap();
        assert!(satisfies_tgd(&sat, &tgd));
        let unsat = parse_instance(&s, "H(a, c). E(a, b).").unwrap();
        assert!(!satisfies_tgd(&unsat, &tgd));
    }

    #[test]
    fn egd_satisfaction() {
        let s = schema();
        let egd = parse_egd(&s, "H(x, y), H(x, z) -> y = z").unwrap();
        let sat = parse_instance(&s, "H(a, b). H(c, b).").unwrap();
        assert!(satisfies_egd(&sat, &egd));
        let unsat = parse_instance(&s, "H(a, b). H(a, c).").unwrap();
        assert!(!satisfies_egd(&unsat, &egd));
        assert!(find_egd_violation(&unsat, &egd).is_some());
    }

    #[test]
    fn vacuous_satisfaction() {
        let s = schema();
        let tgd = parse_tgd(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let empty = pde_relational::Instance::new(s.clone());
        assert!(satisfies_tgd(&empty, &tgd));
    }

    #[test]
    fn satisfies_all_mixed() {
        let s = schema();
        let deps = pde_constraints::parse_dependencies(
            &s,
            "E(x, y) -> H(x, y); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let good = parse_instance(&s, "E(a, b). H(a, b).").unwrap();
        assert!(satisfies_all(&good, &deps));
        let bad = parse_instance(&s, "E(a, b). H(a, b). H(a, c).").unwrap();
        assert!(!satisfies_all(&bad, &deps));
    }

    #[test]
    fn disjunctive_satisfaction() {
        let s = schema();
        let d = parse_disjunctive_tgd(&s, "H(x, y) -> R(x) | B(x)").unwrap();
        let sat = parse_instance(&s, "H(a, b). B(a).").unwrap();
        assert!(satisfies_disjunctive(&sat, &d));
        let unsat = parse_instance(&s, "H(a, b). R(c).").unwrap();
        assert!(!satisfies_disjunctive(&unsat, &d));
    }
}
