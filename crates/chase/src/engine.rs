//! The chase engines: standard chase and the solution-aware chase of the
//! paper (Definitions 6–7), each available in two implementations.
//!
//! Both share the restricted-chase semantics: repeatedly find an *active
//! trigger* — a premise homomorphism with no conclusion extension (tgd), or
//! one separating the equated variables (egd) — and apply the corresponding
//! step. Where a tgd step's existential witnesses come from is orthogonal:
//!
//! * **standard** ([`WitnessMode::FreshNulls`]): mint a fresh labeled null
//!   per existential variable — the \[FKMP\] chase; results are universal.
//! * **solution-aware** ([`WitnessMode::FromSolution`]): pick witnesses
//!   from a supplied instance `K'` that contains the chased instance and
//!   satisfies the tgds (paper Def. 6). The chase then stays inside `K'`,
//!   which is how Lemma 2 extracts a polynomial-size sub-solution.
//!
//! Two engines implement the loop (see `docs/CHASE.md` for the full
//! design):
//!
//! * [`ChaseEngine::Seminaive`] (the default behind [`chase_with`]): rows
//!   carry insertion epochs; each round only enumerates premise
//!   homomorphisms touching the previous round's delta
//!   ([`pde_relational::for_each_hom_seminaive`]), feeding a per-dependency
//!   trigger worklist. The seed round fires everything once. Egd
//!   violations of a round are batched in a
//!   [`pde_relational::ValueUnionFind`] and applied as one targeted
//!   rewrite per round.
//! * [`ChaseEngine::Naive`] ([`chase_naive_with`]): re-enumerates every
//!   trigger over the entire instance each round and rewrites the instance
//!   once per egd merge. Kept as the differential-testing oracle and as the
//!   `--chase naive` CLI escape hatch.
//!
//! Both produce the same `StepRecord` provenance shape, respect the same
//! [`ChaseLimits`] semantics, and agree up to null renaming (enforced by
//! the `naive_and_seminaive_chase_agree` property test).

use crate::result::{ChaseLimits, ChaseOutcome, ChaseResult, ChaseStats, StepRecord};
use crate::satisfy;
use pde_constraints::{Dependency, Egd, Tgd};
use pde_relational::{
    exists_hom, find_hom, for_each_hom, for_each_hom_seminaive, Assignment, HomConfig, Instance,
    NullGen, Tuple, Value, ValueUnionFind,
};
use pde_runtime::{Governor, StopReason};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::Instant;

/// Where tgd steps obtain witnesses for existential variables.
#[derive(Clone, Copy)]
pub enum WitnessMode<'a> {
    /// Mint fresh labeled nulls from the generator.
    FreshNulls(&'a NullGen),
    /// Draw witnesses from a given instance that contains the chased
    /// instance and satisfies the tgds (solution-aware chase, Def. 6).
    FromSolution(&'a Instance),
}

/// Which implementation the [`chase_with`] entry point dispatches to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChaseEngine {
    /// Re-enumerate every trigger over the full instance each round;
    /// rewrite the whole instance per egd merge.
    Naive,
    /// Delta-driven trigger discovery over insertion epochs with
    /// union-find egd batching (the default).
    Seminaive,
}

/// A stratified execution order over a dependency list, as produced by
/// the optimizer's interference analysis (`pde-analysis`'s
/// `forward_schedule`). Indices refer to positions in the `deps` slice
/// handed to the chase; each stratum is run to its own semi-naive
/// fixpoint before the next stratum starts. Soundness rests on the
/// producer guaranteeing that no dependency in a later stratum writes a
/// relation position read by an earlier stratum — then the per-stratum
/// fixpoints compose to the global fixpoint, and the later strata never
/// reopen earlier ones (these strata are the planned parallel shards of
/// the parallel-chase roadmap item).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepSchedule {
    /// Strata of dependency indices, executed in order.
    pub strata: Vec<Vec<usize>>,
}

impl DepSchedule {
    /// The trivial schedule: one stratum containing every index in order.
    /// Chasing under it is identical to chasing unscheduled.
    pub fn single(n: usize) -> DepSchedule {
        DepSchedule {
            strata: vec![(0..n).collect()],
        }
    }

    /// Number of strata.
    pub fn strata_count(&self) -> usize {
        self.strata.len()
    }

    /// Does this schedule cover each of `0..n` exactly once?
    pub fn is_partition_of(&self, n: usize) -> bool {
        let mut hit = vec![false; n];
        let mut count = 0usize;
        for &i in self.strata.iter().flatten() {
            if i >= n || hit[i] {
                return false;
            }
            hit[i] = true;
            count += 1;
        }
        count == n
    }
}

const ENGINE_NAIVE: u8 = 0;
const ENGINE_SEMINAIVE: u8 = 1;

/// Process-wide default engine; the CLI's `--chase naive|seminaive` flag
/// sets it once at startup.
static DEFAULT_ENGINE: AtomicU8 = AtomicU8::new(ENGINE_SEMINAIVE);

/// Set the engine that [`chase_with`] (and everything built on it:
/// [`chase`], [`chase_tgds`], [`solution_aware_chase`], the solvers in
/// `pde-core`) will use from now on.
pub fn set_default_chase_engine(engine: ChaseEngine) {
    let v = match engine {
        ChaseEngine::Naive => ENGINE_NAIVE,
        ChaseEngine::Seminaive => ENGINE_SEMINAIVE,
    };
    DEFAULT_ENGINE.store(v, Ordering::Relaxed);
}

/// The engine [`chase_with`] currently dispatches to.
pub fn default_chase_engine() -> ChaseEngine {
    match DEFAULT_ENGINE.load(Ordering::Relaxed) {
        ENGINE_NAIVE => ChaseEngine::Naive,
        _ => ChaseEngine::Seminaive,
    }
}

/// Chase `instance` with `deps` under the given witness mode and limits,
/// using the process-default engine (semi-naive unless overridden through
/// [`set_default_chase_engine`]).
pub fn chase_with(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
) -> ChaseResult {
    chase_governed_with(
        instance,
        deps,
        mode,
        limits,
        default_chase_engine(),
        &Governor::unlimited(),
    )
}

/// Chase under an explicit engine and runtime [`Governor`].
///
/// The governor is consulted at every round (deadline / memory budget /
/// cancellation) and at every tgd application (fault-injection points);
/// a tripped budget ends the run with [`ChaseOutcome::Stopped`] carrying
/// the [`StopReason`]. The input `instance` is consumed — a stopped
/// result's `instance` field is a best-effort snapshot, and callers that
/// must not observe partial work simply keep their own copy (the solvers
/// pass clones).
pub fn chase_governed_with(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    engine: ChaseEngine,
    governor: &Governor,
) -> ChaseResult {
    chase_governed_scheduled(instance, deps, mode, limits, engine, governor, None)
    // Governor-derived numbers (peak bytes, cancellations, deadline
    // remaining) are no longer copied into `ChaseStats`: they live in the
    // report layer (`Governor::report` / the run-report metrics registry),
    // which cannot double-count when several chases share one governor.
}

/// [`chase_governed_with`] with an optional stratified execution
/// [`DepSchedule`]. Only the semi-naive engine consumes the schedule; the
/// naive engine is the differential-testing oracle and deliberately runs
/// unscheduled (its full re-enumeration reaches the same fixpoint either
/// way). `None` behaves exactly like the unscheduled entry points.
pub fn chase_governed_scheduled(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    engine: ChaseEngine,
    governor: &Governor,
    schedule: Option<&DepSchedule>,
) -> ChaseResult {
    match engine {
        ChaseEngine::Naive => chase_naive_governed(instance, deps, mode, limits, governor),
        ChaseEngine::Seminaive => {
            chase_seminaive_scheduled_governed(instance, deps, mode, limits, governor, schedule)
        }
    }
}

/// The semi-naive, delta-driven chase.
///
/// Each round opens a new insertion epoch; trigger discovery for round *k*
/// only enumerates premise homomorphisms with at least one atom matched
/// against a fact inserted in round *k−1* (the seed round's "delta" is the
/// whole input, so every trigger fires once). Discovered triggers join a
/// per-dependency worklist and are re-validated against the full instance
/// before application, exactly like the naive engine's batch round. Egd
/// violations are accumulated in a union-find and applied as a single
/// targeted rewrite per dependency per round; rewritten facts re-enter the
/// next round's delta.
pub fn chase_seminaive_with(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
) -> ChaseResult {
    chase_seminaive_scheduled_governed(instance, deps, mode, limits, &Governor::unlimited(), None)
}

/// [`chase_seminaive_with`] under an explicit [`Governor`] (the
/// [`chase_governed_with`] worker; callers normally go through that
/// entry point).
fn chase_seminaive_scheduled_governed(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    governor: &Governor,
    schedule: Option<&DepSchedule>,
) -> ChaseResult {
    chase_seminaive_incremental(instance, deps, mode, limits, governor, schedule, 0)
}

/// Semi-naive chase that resumes from an epoch watermark instead of the
/// seed round.
///
/// `initial_since` is the epoch the first delta window opens at: trigger
/// discovery only enumerates premise homomorphisms touching at least one
/// fact inserted at or after it. `0` is the ordinary full chase.
///
/// # Precondition
/// A non-zero watermark asserts that the sub-instance of facts older than
/// `initial_since` already satisfies **every** dependency in `deps` (it is
/// the fixpoint of a previous chase). Under that precondition the skipped
/// all-old triggers are exactly the already-satisfied ones, so the
/// incremental run reaches the same fixpoint as a fresh chase of the whole
/// instance — this is what `pde serve` relies on to re-chase inserts off
/// epoch deltas instead of from scratch. Violating the precondition
/// (e.g. after a retraction, which can *un*-satisfy old triggers'
/// conclusions) silently under-chases: retracts must fall back to a full
/// re-chase.
///
/// With [`WitnessMode::FreshNulls`], pass a generator seeded above the
/// instance's existing nulls ([`null_gen_for`]) or witnesses may collide
/// with recovered ones.
pub fn chase_incremental_governed(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    governor: &Governor,
    schedule: Option<&DepSchedule>,
    initial_since: u64,
) -> ChaseResult {
    if let Some(s) = schedule {
        // An incremental window is only sound on top of a full-deps
        // fixpoint; a schedule still partitions the same deps, so each
        // stratum may open at the watermark too.
        assert!(
            s.is_partition_of(deps.len()),
            "schedule must partition the dependency indices 0..{}",
            deps.len()
        );
    }
    chase_seminaive_incremental(
        instance,
        deps,
        mode,
        limits,
        governor,
        schedule,
        initial_since,
    )
}

#[allow(clippy::too_many_arguments)]
fn chase_seminaive_incremental(
    mut instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    governor: &Governor,
    schedule: Option<&DepSchedule>,
    initial_since: u64,
) -> ChaseResult {
    if let Some(s) = schedule {
        assert!(
            s.is_partition_of(deps.len()),
            "schedule must partition the dependency indices 0..{}",
            deps.len()
        );
    }
    let single;
    let strata: &[Vec<usize>] = match schedule {
        Some(s) => &s.strata,
        None => {
            single = DepSchedule::single(deps.len());
            &single.strata
        }
    };
    let config = HomConfig::default();
    let mut steps = 0usize;
    let mut tgd_steps = 0usize;
    let mut egd_steps = 0usize;
    let mut log: Vec<StepRecord> = Vec::new();
    let mut stats = ChaseStats::default();
    // Premise matches seen so far per dependency: what the naive engine
    // would re-enumerate every subsequent round.
    let mut seen: Vec<usize> = vec![0; deps.len()];

    for stratum in strata {
        // Each stratum re-seeds its delta window at the watermark: its
        // first round enumerates everything at or after it (for a full
        // chase, the whole instance — exactly like the seed round of an
        // unscheduled chase), picking up everything earlier strata
        // produced.
        let mut since: u64 = initial_since;
        'outer: loop {
            if steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
                return ChaseResult {
                    outcome: ChaseOutcome::ResourceExceeded,
                    instance,
                    steps,
                    tgd_steps,
                    egd_steps,
                    log,
                    stats,
                };
            }
            if let Err(reason) = governor.on_round(stats.rounds + 1, instance.heap_bytes()) {
                return ChaseResult {
                    outcome: ChaseOutcome::Stopped { reason },
                    instance,
                    steps,
                    tgd_steps,
                    egd_steps,
                    log,
                    stats,
                };
            }
            let cur = instance.bump_epoch();
            stats.rounds += 1;
            let round_start = Instant::now();
            let _round_span = pde_trace::span("chase.round")
                .field("engine", "seminaive")
                .field("round", stats.rounds)
                .field("facts", instance.fact_count());
            let mut progressed = false;
            for &i in stratum {
                let dep = &deps[i];
                stats.skipped_by_delta += seen[i];
                match dep {
                    Dependency::Tgd(tgd) => {
                        let mut dep_span = pde_trace::span("chase.trigger")
                            .field("engine", "seminaive")
                            .field("dep", i)
                            .field("round", stats.rounds);
                        let fired_before = stats.triggers_fired;
                        let mut work: Vec<Assignment> = Vec::new();
                        let mut found_now = 0usize;
                        if tgd.premise.atoms.is_empty() {
                            // The empty homomorphism touches no fact, so the
                            // delta search would never surface it; check it on
                            // the seed round, where everything fires once.
                            if since == 0 {
                                found_now += 1;
                                if exists_hom(&tgd.conclusion.atoms, &instance, &Assignment::new())
                                {
                                    stats.triggers_satisfied += 1;
                                } else {
                                    work.push(Assignment::new());
                                }
                            }
                        } else {
                            let _ = for_each_hom_seminaive(
                                &tgd.premise.atoms,
                                &instance,
                                &Assignment::new(),
                                config,
                                since,
                                cur,
                                |h| {
                                    found_now += 1;
                                    if exists_hom(&tgd.conclusion.atoms, &instance, h) {
                                        stats.triggers_satisfied += 1;
                                    } else {
                                        work.push(h.clone());
                                    }
                                    ControlFlow::Continue(())
                                },
                            );
                        }
                        stats.triggers_found += found_now;
                        seen[i] += found_now;
                        dep_span.record_field("found", found_now);
                        for h in work {
                            if steps >= limits.max_steps
                                || instance.fact_count() >= limits.max_facts
                            {
                                continue 'outer; // limit check at loop head
                            }
                            // Re-check: an earlier application may have
                            // satisfied this trigger.
                            if exists_hom(&tgd.conclusion.atoms, &instance, &h) {
                                stats.triggers_satisfied += 1;
                                continue;
                            }
                            governor.on_trigger(steps);
                            if let Err(reason) = governor.on_alloc(steps) {
                                return ChaseResult {
                                    outcome: ChaseOutcome::Stopped { reason },
                                    instance,
                                    steps,
                                    tgd_steps,
                                    egd_steps,
                                    log,
                                    stats,
                                };
                            }
                            let new_facts = apply_tgd_step(&mut instance, tgd, &h, mode);
                            log.push(StepRecord::Tgd {
                                dep_index: i,
                                new_facts,
                            });
                            steps += 1;
                            tgd_steps += 1;
                            stats.triggers_fired += 1;
                            progressed = true;
                        }
                        dep_span.record_field("fired", stats.triggers_fired - fired_before);
                    }
                    Dependency::Egd(egd) => {
                        let mut egd_span = pde_trace::span("egd.merge")
                            .field("engine", "seminaive")
                            .field("dep", i)
                            .field("round", stats.rounds);
                        let merges_before = stats.egd_merges;
                        let mut uf = ValueUnionFind::new();
                        let mut conflict = false;
                        let mut found_now = 0usize;
                        let _ = for_each_hom_seminaive(
                            &egd.premise.atoms,
                            &instance,
                            &Assignment::new(),
                            config,
                            since,
                            cur,
                            |h| {
                                found_now += 1;
                                let l = h.get(egd.lhs).expect("egd lhs bound by premise");
                                let r = h.get(egd.rhs).expect("egd rhs bound by premise");
                                match uf.union(l, r) {
                                    Ok(Some((from, to))) => {
                                        log.push(StepRecord::Egd {
                                            dep_index: i,
                                            from,
                                            to,
                                        });
                                        steps += 1;
                                        egd_steps += 1;
                                        stats.egd_merges += 1;
                                        progressed = true;
                                        if steps >= limits.max_steps {
                                            return ControlFlow::Break(());
                                        }
                                        ControlFlow::Continue(())
                                    }
                                    Ok(None) => ControlFlow::Continue(()),
                                    Err(_) => {
                                        conflict = true;
                                        ControlFlow::Break(())
                                    }
                                }
                            },
                        );
                        stats.triggers_found += found_now;
                        seen[i] += found_now;
                        egd_span.record_field("found", found_now);
                        egd_span.record_field("merges", stats.egd_merges - merges_before);
                        if conflict {
                            return ChaseResult {
                                outcome: ChaseOutcome::Failure { dep_index: i },
                                instance,
                                steps: steps + 1,
                                tgd_steps,
                                egd_steps: egd_steps + 1,
                                log,
                                stats,
                            };
                        }
                        // One targeted rewrite applies every merge of this
                        // round; rewritten facts land in the next delta.
                        instance.apply_merges(&uf);
                        if steps >= limits.max_steps {
                            continue 'outer;
                        }
                    }
                }
            }
            stats
                .round_ns
                .record(u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if !progressed {
                // Stratum fixpoint reached; move on to the next stratum.
                break;
            }
            since = cur;
        }
    }
    ChaseResult {
        outcome: ChaseOutcome::Success,
        instance,
        steps,
        tgd_steps,
        egd_steps,
        log,
        stats,
    }
}

/// The naive chase: every round re-enumerates every premise homomorphism
/// over the entire instance, and each egd merge rewrites the instance
/// immediately. Retained as the differential-testing oracle for
/// [`chase_seminaive_with`] and as the CLI's `--chase naive` escape hatch.
pub fn chase_naive_with(
    instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
) -> ChaseResult {
    chase_naive_governed(instance, deps, mode, limits, &Governor::unlimited())
}

/// [`chase_naive_with`] under an explicit [`Governor`] (the
/// [`chase_governed_with`] worker).
fn chase_naive_governed(
    mut instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    governor: &Governor,
) -> ChaseResult {
    let mut steps = 0usize;
    let mut tgd_steps = 0usize;
    let mut egd_steps = 0usize;
    let mut log: Vec<StepRecord> = Vec::new();
    let mut stats = ChaseStats::default();
    let mut stopped: Option<StopReason> = None;

    'outer: loop {
        // A mid-round governor stop takes precedence over the counter
        // limits: both are honest "undecided" endings, but the stop
        // carries the reason the caller asked for.
        if stopped.is_none() {
            if let Err(reason) = governor.on_round(stats.rounds + 1, instance.heap_bytes()) {
                stopped = Some(reason);
            }
        }
        if let Some(reason) = stopped.take() {
            return ChaseResult {
                outcome: ChaseOutcome::Stopped { reason },
                instance,
                steps,
                tgd_steps,
                egd_steps,
                log,
                stats,
            };
        }
        if steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
            return ChaseResult {
                outcome: ChaseOutcome::ResourceExceeded,
                instance,
                steps,
                tgd_steps,
                egd_steps,
                log,
                stats,
            };
        }
        stats.rounds += 1;
        let round_start = Instant::now();
        let _round_span = pde_trace::span("chase.round")
            .field("engine", "naive")
            .field("round", stats.rounds)
            .field("facts", instance.fact_count());
        let mut progressed = false;
        for (i, dep) in deps.iter().enumerate() {
            match dep {
                Dependency::Tgd(tgd) => {
                    let applied = apply_tgd_round(
                        &mut instance,
                        i,
                        tgd,
                        mode,
                        limits,
                        governor,
                        &mut stopped,
                        &mut steps,
                        &mut log,
                        &mut stats,
                    );
                    if applied > 0 {
                        tgd_steps += applied;
                        progressed = true;
                    }
                    if stopped.is_some() {
                        continue 'outer; // surfaced by the loop-head check
                    }
                    if steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
                        continue 'outer; // limit check at loop head
                    }
                }
                Dependency::Egd(egd) => {
                    let mut egd_span = pde_trace::span("egd.merge")
                        .field("engine", "naive")
                        .field("dep", i)
                        .field("round", stats.rounds);
                    let merges_before = stats.egd_merges;
                    loop {
                        match apply_one_egd(&mut instance, egd) {
                            EgdStep::None => break,
                            EgdStep::Merged { from, to } => {
                                steps += 1;
                                egd_steps += 1;
                                stats.egd_merges += 1;
                                stats.triggers_found += 1;
                                progressed = true;
                                log.push(StepRecord::Egd {
                                    dep_index: i,
                                    from,
                                    to,
                                });
                                if steps >= limits.max_steps {
                                    continue 'outer;
                                }
                            }
                            EgdStep::Failure => {
                                return ChaseResult {
                                    outcome: ChaseOutcome::Failure { dep_index: i },
                                    instance,
                                    steps: steps + 1,
                                    tgd_steps,
                                    egd_steps: egd_steps + 1,
                                    log,
                                    stats,
                                };
                            }
                        }
                    }
                    egd_span.record_field("merges", stats.egd_merges - merges_before);
                }
            }
        }
        stats
            .round_ns
            .record(u64::try_from(round_start.elapsed().as_nanos()).unwrap_or(u64::MAX));
        if !progressed {
            return ChaseResult {
                outcome: ChaseOutcome::Success,
                instance,
                steps,
                tgd_steps,
                egd_steps,
                log,
                stats,
            };
        }
    }
}

/// Apply every *currently active* trigger of `tgd` once (re-validating each
/// before application, since earlier applications may have satisfied it).
/// Returns the number of steps applied; a governor stop is reported
/// through `stopped` and ends the batch early. (Naive engine only.)
#[allow(clippy::too_many_arguments)]
fn apply_tgd_round(
    instance: &mut Instance,
    dep_index: usize,
    tgd: &Tgd,
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    governor: &Governor,
    stopped: &mut Option<StopReason>,
    steps: &mut usize,
    log: &mut Vec<StepRecord>,
    stats: &mut ChaseStats,
) -> usize {
    let mut dep_span = pde_trace::span("chase.trigger")
        .field("engine", "naive")
        .field("dep", dep_index)
        .field("round", stats.rounds);
    // Collect the active triggers against the current instance. Triggers
    // stay valid under insertions (homomorphisms are monotone), so batch
    // collection is sound in a round without egd steps.
    let mut triggers: Vec<Assignment> = Vec::new();
    let found_before = stats.triggers_found;
    let _ = for_each_hom(&tgd.premise.atoms, instance, &Assignment::new(), |h| {
        stats.triggers_found += 1;
        if exists_hom(&tgd.conclusion.atoms, instance, h) {
            stats.triggers_satisfied += 1;
        } else {
            triggers.push(h.clone());
        }
        ControlFlow::Continue(())
    });
    dep_span.record_field("found", stats.triggers_found - found_before);
    let mut applied = 0usize;
    for h in triggers {
        if *steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
            break;
        }
        // Re-check: a previous application may have satisfied this trigger.
        if exists_hom(&tgd.conclusion.atoms, instance, &h) {
            stats.triggers_satisfied += 1;
            continue;
        }
        governor.on_trigger(*steps);
        if let Err(reason) = governor.on_alloc(*steps) {
            *stopped = Some(reason);
            break;
        }
        let new_facts = apply_tgd_step(instance, tgd, &h, mode);
        log.push(StepRecord::Tgd {
            dep_index,
            new_facts,
        });
        *steps += 1;
        applied += 1;
        stats.triggers_fired += 1;
    }
    dep_span.record_field("fired", applied);
    applied
}

/// Apply one tgd step for trigger `h`; returns the number of new facts.
fn apply_tgd_step(
    instance: &mut Instance,
    tgd: &Tgd,
    h: &Assignment,
    mode: WitnessMode<'_>,
) -> usize {
    let mut ext = h.clone();
    match mode {
        WitnessMode::FreshNulls(gen) => {
            for v in &tgd.existentials {
                ext.bind(*v, Value::Null(gen.fresh()));
            }
        }
        WitnessMode::FromSolution(solution) => {
            // The premise image lies inside `solution` (it contains the
            // chased instance), and `solution` satisfies the tgd, so an
            // extension into `solution` exists; use its witnesses.
            let w = find_hom(&tgd.conclusion.atoms, solution, h).expect(
                "solution-aware chase: supplied instance does not satisfy the tgd \
                 (violates Def. 6's precondition)",
            );
            for v in &tgd.existentials {
                ext.bind(*v, w.get(*v).expect("extension binds existentials"));
            }
        }
    }
    let mut new_facts = 0usize;
    for atom in &tgd.conclusion.atoms {
        let vals = atom
            .ground(&|v| ext.get(v))
            .expect("conclusion fully bound after extension");
        if instance.insert(atom.rel, Tuple::new(vals)) {
            new_facts += 1;
        }
    }
    new_facts
}

enum EgdStep {
    None,
    Merged { from: Value, to: Value },
    Failure,
}

/// Find and apply one egd violation; substitutions invalidate other
/// outstanding homomorphisms, so egds are applied one at a time.
/// (Naive engine only.)
fn apply_one_egd(instance: &mut Instance, egd: &Egd) -> EgdStep {
    let Some(h) = satisfy::find_egd_violation(instance, egd) else {
        return EgdStep::None;
    };
    let l = h
        .get(egd.lhs)
        .expect("egd lhs bound: violation hom covers the premise");
    let r = h
        .get(egd.rhs)
        .expect("egd rhs bound: violation hom covers the premise");
    match (l, r) {
        (Value::Const(_), Value::Const(_)) => EgdStep::Failure,
        (Value::Null(_), _) => {
            instance.substitute(l, r);
            EgdStep::Merged { from: l, to: r }
        }
        (_, Value::Null(_)) => {
            instance.substitute(r, l);
            EgdStep::Merged { from: r, to: l }
        }
    }
}

/// Standard chase with fresh nulls and default limits (default engine).
pub fn chase(instance: Instance, deps: &[Dependency], gen: &NullGen) -> ChaseResult {
    chase_with(
        instance,
        deps,
        WitnessMode::FreshNulls(gen),
        ChaseLimits::default(),
    )
}

/// [`chase`] forced onto the naive engine — the differential-testing
/// entry point.
pub fn chase_naive(instance: Instance, deps: &[Dependency], gen: &NullGen) -> ChaseResult {
    chase_naive_with(
        instance,
        deps,
        WitnessMode::FreshNulls(gen),
        ChaseLimits::default(),
    )
}

/// Chase with tgds only (no failure possible; outcome is success or
/// resource-exceeded).
pub fn chase_tgds(instance: Instance, tgds: &[Tgd], gen: &NullGen) -> ChaseResult {
    let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
    chase(instance, &deps, gen)
}

/// [`chase_tgds`] under an explicit engine and runtime governor (default
/// limits). Solvers route their internal chases through this so a single
/// governor bounds a whole solve.
pub fn chase_tgds_governed(
    instance: Instance,
    tgds: &[Tgd],
    gen: &NullGen,
    engine: ChaseEngine,
    governor: &Governor,
) -> ChaseResult {
    let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
    chase_governed_with(
        instance,
        &deps,
        WitnessMode::FreshNulls(gen),
        ChaseLimits::default(),
        engine,
        governor,
    )
}

/// Solution-aware chase (paper Def. 7): chase `instance` with `deps`
/// drawing tgd witnesses from `solution`. The caller must ensure `solution`
/// contains `instance` and satisfies the tgds in `deps`.
pub fn solution_aware_chase(
    instance: Instance,
    deps: &[Dependency],
    solution: &Instance,
    limits: ChaseLimits,
) -> ChaseResult {
    chase_with(instance, deps, WitnessMode::FromSolution(solution), limits)
}

/// Seed a null generator safely above every null already in `instance`.
pub fn null_gen_for(instance: &Instance) -> NullGen {
    NullGen::starting_at(instance.max_null_id().map_or(0, |m| m + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfy::{satisfies_all, satisfies_all_tgds};
    use pde_constraints::{parse_dependencies, parse_tgds};
    use pde_relational::{instances_isomorphic, parse_instance, parse_schema, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2; target H/2; target K/2;").unwrap())
    }

    #[test]
    fn full_tgd_chase_reaches_fixpoint() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let inst = parse_instance(&s, "E(a, b). E(b, c). E(c, d).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.is_success());
        let out = res.instance;
        let h = s.rel_id("H").unwrap();
        assert_eq!(out.relation(h).len(), 2); // (a,c), (b,d)
        assert!(satisfies_all_tgds(&out, &tgds));
        assert!(out.is_ground());
    }

    #[test]
    fn existential_tgd_creates_nulls() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z), K(z, y)").unwrap();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.is_success());
        let out = res.instance;
        assert_eq!(out.fact_count(), 3);
        assert_eq!(out.nulls().len(), 1);
        assert!(satisfies_all_tgds(&out, &tgds));
    }

    #[test]
    fn restricted_chase_skips_satisfied_triggers() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        // H(a, q) already witnesses E(a, b): no step needed.
        let inst = parse_instance(&s, "E(a, b). H(a, q).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.is_success());
        assert_eq!(res.steps, 0);
        assert_eq!(res.instance.nulls().len(), 0);
    }

    #[test]
    fn egd_merges_null_with_constant() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, y) -> exists z . H(x, z); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let inst = parse_instance(&s, "E(a, b). H(a, c).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_success());
        let out = res.instance;
        let h = s.rel_id("H").unwrap();
        // Either zero steps (restricted chase sees H(a,c) as witness) or
        // the created null merges into c — both leave exactly H(a, c).
        assert_eq!(out.relation(h).len(), 1);
        assert!(out.is_ground());
        assert!(satisfies_all(&out, &deps));
    }

    #[test]
    fn egd_on_two_constants_fails() {
        let s = schema();
        let deps = parse_dependencies(&s, "H(x, y), H(x, z) -> y = z").unwrap();
        let inst = parse_instance(&s, "H(a, b). H(a, c).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_failure());
        assert_eq!(res.outcome, ChaseOutcome::Failure { dep_index: 0 });
    }

    #[test]
    fn egd_merges_two_nulls() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, y) -> exists z . H(x, z); E(x, y) -> exists w . K(x, w); \
             H(x, y), K(x, z) -> y = z",
        )
        .unwrap();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_success());
        let out = res.instance;
        assert_eq!(out.nulls().len(), 1, "the two nulls merged");
        assert!(satisfies_all(&out, &deps));
    }

    #[test]
    fn divergent_chase_hits_limit() {
        let s = Arc::new(parse_schema("target A/2;").unwrap());
        let mut a = Instance::new(s.clone());
        a.insert_consts("A", ["x", "y"]);
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let gen = NullGen::new();
        let res = chase_with(
            a,
            &deps,
            WitnessMode::FreshNulls(&gen),
            ChaseLimits::tight(50),
        );
        assert_eq!(res.outcome, ChaseOutcome::ResourceExceeded);
        assert!(res.steps >= 50);
    }

    #[test]
    fn solution_aware_chase_stays_inside_solution() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        // A "solution" containing inst and satisfying the tgd.
        let solution = parse_instance(&s, "E(a, b). H(a, w1). H(a, w2).").unwrap();
        let res = solution_aware_chase(inst, &deps, &solution, ChaseLimits::default());
        assert!(res.is_success());
        let out = res.instance;
        assert!(out.contained_in(&solution), "chase stayed inside K'");
        assert!(out.is_ground(), "witnesses come from K', not fresh nulls");
        assert!(satisfies_all_tgds(&out, &tgds));
        // Exactly one witness used, not both (minimality of the chase).
        let h = s.rel_id("H").unwrap();
        assert_eq!(out.relation(h).len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not satisfy the tgd")]
    fn solution_aware_chase_validates_precondition() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        let bogus = parse_instance(&s, "E(a, b).").unwrap(); // no H witness
        let _ = solution_aware_chase(inst, &deps, &bogus, ChaseLimits::default());
    }

    #[test]
    fn provenance_log_records_every_step() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, y) -> exists z . H(x, z); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let inst = parse_instance(&s, "E(a, b). E(a, c). H(a, q).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_success());
        assert_eq!(res.log.len(), res.steps);
        let tgd_recs = res
            .log
            .iter()
            .filter(|r| matches!(r, crate::result::StepRecord::Tgd { .. }))
            .count();
        let egd_recs = res.log.len() - tgd_recs;
        assert_eq!(tgd_recs, res.tgd_steps);
        assert_eq!(egd_recs, res.egd_steps);
        // Dependency indexes point into the chased list.
        for r in &res.log {
            match r {
                crate::result::StepRecord::Tgd {
                    dep_index,
                    new_facts,
                } => {
                    assert_eq!(*dep_index, 0);
                    assert!(*new_facts <= 1);
                }
                crate::result::StepRecord::Egd {
                    dep_index,
                    from,
                    to,
                } => {
                    assert_eq!(*dep_index, 1);
                    assert!(from.is_null() || to.is_null());
                }
            }
        }
    }

    #[test]
    fn chase_without_steps_has_empty_log() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let inst = parse_instance(&s, "E(a, b). H(a, w).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.log.is_empty());
    }

    #[test]
    fn null_gen_for_avoids_collisions() {
        let s = schema();
        let inst = parse_instance(&s, "H(?5, a).").unwrap();
        let gen = null_gen_for(&inst);
        assert_eq!(gen.fresh().0, 6);
    }

    #[test]
    fn chase_is_idempotent_on_satisfied_instances() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let inst = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
        let gen = NullGen::new();
        let once = chase_tgds(inst, &tgds, &gen).into_success().unwrap();
        let twice = chase_tgds(once.clone(), &tgds, &gen)
            .into_success()
            .unwrap();
        assert!(once.same_facts(&twice));
    }

    #[test]
    fn engines_agree_on_fixtures() {
        let s = schema();
        let cases = [
            (
                "E(x, z), E(z, y) -> H(x, y)",
                "E(a, b). E(b, c). E(c, d). E(d, a).",
            ),
            (
                "E(x, y) -> exists z . H(x, z), K(z, y); H(x, y), H(x, z) -> y = z",
                "E(a, b). E(a, c). E(b, b).",
            ),
            (
                "E(x, y) -> exists z . H(x, z); E(x, y) -> exists w . K(x, w); \
                 H(x, y), K(x, z) -> y = z",
                "E(a, b). E(c, d).",
            ),
        ];
        for (deps_src, inst_src) in cases {
            let deps = parse_dependencies(&s, deps_src).unwrap();
            let inst = parse_instance(&s, inst_src).unwrap();
            let naive = chase_naive_with(
                inst.clone(),
                &deps,
                WitnessMode::FreshNulls(&NullGen::new()),
                ChaseLimits::default(),
            );
            let semi = chase_seminaive_with(
                inst,
                &deps,
                WitnessMode::FreshNulls(&NullGen::new()),
                ChaseLimits::default(),
            );
            assert!(naive.is_success() && semi.is_success(), "{deps_src}");
            assert!(
                instances_isomorphic(&naive.instance, &semi.instance),
                "{deps_src}: {:?} vs {:?}",
                naive.instance,
                semi.instance
            );
        }
    }

    #[test]
    fn engines_agree_on_failing_egds() {
        let s = schema();
        let deps = parse_dependencies(&s, "E(x, y) -> H(x, y); H(x, y), H(x, z) -> y = z").unwrap();
        let inst = parse_instance(&s, "E(a, b). E(a, c).").unwrap();
        let naive = chase_naive_with(
            inst.clone(),
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
        );
        let semi = chase_seminaive_with(
            inst,
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
        );
        assert!(naive.is_failure());
        assert!(semi.is_failure());
        assert_eq!(semi.outcome, ChaseOutcome::Failure { dep_index: 1 });
    }

    #[test]
    fn incremental_chase_matches_a_fresh_rechase() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, z), E(z, y) -> H(x, y); H(x, y) -> K(y, x); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        // Chase a base to fixpoint, then insert new facts at a fresh epoch
        // and re-chase only off the delta.
        let base = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
        let fixed = chase_seminaive_with(
            base,
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
        );
        assert!(fixed.is_success());
        let mut grown = fixed.instance;
        let watermark = grown.bump_epoch();
        grown.insert_consts("E", ["c", "d"]);
        let gen = null_gen_for(&grown);
        let incremental = chase_incremental_governed(
            grown.clone(),
            &deps,
            WitnessMode::FreshNulls(&gen),
            ChaseLimits::default(),
            &Governor::unlimited(),
            None,
            watermark,
        );
        assert!(incremental.is_success());
        // Oracle: a fresh full chase of the grown base.
        let fresh_base = parse_instance(&s, "E(a, b). E(b, c). E(c, d).").unwrap();
        let fresh = chase_seminaive_with(
            fresh_base,
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
        );
        assert!(fresh.is_success());
        assert!(
            instances_isomorphic(&incremental.instance, &fresh.instance),
            "{:?} vs {:?}",
            incremental.instance,
            fresh.instance
        );
        assert!(satisfies_all(&incremental.instance, &deps));
        // And the incremental run did less work than the fresh one: the
        // watermark skipped the already-fired base triggers.
        assert!(incremental.tgd_steps < fresh.tgd_steps);
    }

    #[test]
    fn seminaive_stats_count_rounds_and_delta_skips() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b). E(b, c). E(c, d).").unwrap();
        let res = chase_seminaive_with(
            inst,
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
        );
        assert!(res.is_success());
        // Round 1 fires both path triggers; round 2's delta is H-only, so
        // the E-only premise is never re-enumerated.
        assert_eq!(res.stats.rounds, 2);
        assert_eq!(res.stats.triggers_found, 2);
        assert_eq!(res.stats.triggers_fired, 2);
        assert_eq!(res.stats.triggers_fired, res.tgd_steps);
        assert_eq!(res.stats.skipped_by_delta, 2);
        assert_eq!(res.stats.egd_merges, 0);
    }

    #[test]
    fn governed_chase_stops_on_deadline_and_keeps_input_unpoisoned() {
        use pde_runtime::{Governor, GovernorConfig};
        use std::time::Duration;
        let s = Arc::new(parse_schema("target A/2;").unwrap());
        let mut a = Instance::new(s.clone());
        a.insert_consts("A", ["x", "y"]);
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let gen = NullGen::new();
        let governor = Governor::new(GovernorConfig {
            deadline: Some(Duration::ZERO),
            ..GovernorConfig::default()
        });
        for engine in [ChaseEngine::Seminaive, ChaseEngine::Naive] {
            let res = chase_governed_with(
                a.clone(),
                &deps,
                WitnessMode::FreshNulls(&gen),
                ChaseLimits::default(),
                engine,
                &governor,
            );
            let ChaseOutcome::Stopped { reason } = &res.outcome else {
                panic!("expected a governed stop, got {:?}", res.outcome);
            };
            assert!(
                matches!(reason, pde_runtime::StopReason::DeadlineExceeded { .. }),
                "{reason:?}"
            );
            // The zero deadline trips before any step is applied.
            assert_eq!(res.steps, 0);
            // Governor-derived numbers live in the report layer now.
            assert!(governor.report().deadline_remaining.is_some());
        }
        // The caller's instance is untouched (engines consume clones).
        assert_eq!(a.fact_count(), 1);
    }

    #[test]
    fn governed_chase_stops_on_memory_budget() {
        use pde_runtime::{Governor, GovernorConfig, StopReason};
        let s = Arc::new(parse_schema("target A/2;").unwrap());
        let mut a = Instance::new(s.clone());
        a.insert_consts("A", ["x", "y"]);
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let gen = NullGen::new();
        let governor = Governor::new(GovernorConfig {
            memory_budget_bytes: Some(1),
            ..GovernorConfig::default()
        });
        let res = chase_governed_with(
            a,
            &deps,
            WitnessMode::FreshNulls(&gen),
            ChaseLimits::default(),
            ChaseEngine::Seminaive,
            &governor,
        );
        let ChaseOutcome::Stopped { reason } = res.outcome else {
            panic!("expected a governed stop, got {:?}", res.outcome);
        };
        assert!(matches!(reason, StopReason::MemoryExhausted { .. }));
        assert!(governor.report().peak_bytes > 1);
    }

    #[test]
    fn governed_chase_observes_cancellation() {
        use pde_runtime::{CancelToken, Governor, GovernorConfig, StopReason};
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
        let token = CancelToken::new();
        token.cancel();
        let governor = Governor::new(GovernorConfig {
            cancel: Some(token),
            ..GovernorConfig::default()
        });
        let res = chase_governed_with(
            inst,
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
            ChaseEngine::Seminaive,
            &governor,
        );
        assert_eq!(
            res.outcome,
            ChaseOutcome::Stopped {
                reason: StopReason::Cancelled
            }
        );
        assert!(governor.report().cancellations_observed >= 1);
    }

    #[test]
    fn unlimited_governor_changes_nothing() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b). E(b, c). E(c, d).").unwrap();
        let plain = chase_seminaive_with(
            inst.clone(),
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
        );
        let governed = chase_governed_with(
            inst,
            &deps,
            WitnessMode::FreshNulls(&NullGen::new()),
            ChaseLimits::default(),
            ChaseEngine::Seminaive,
            &pde_runtime::Governor::unlimited(),
        );
        assert!(plain.is_success() && governed.is_success());
        assert!(plain.instance.same_facts(&governed.instance));
        assert_eq!(plain.steps, governed.steps);
    }

    #[test]
    fn default_engine_is_switchable() {
        assert_eq!(default_chase_engine(), ChaseEngine::Seminaive);
        set_default_chase_engine(ChaseEngine::Naive);
        assert_eq!(default_chase_engine(), ChaseEngine::Naive);
        set_default_chase_engine(ChaseEngine::Seminaive);
        assert_eq!(default_chase_engine(), ChaseEngine::Seminaive);
    }
}
