//! The chase engine: standard chase and the solution-aware chase of the
//! paper (Definitions 6–7).
//!
//! Both variants share the restricted-chase loop: repeatedly find an
//! *active trigger* — a premise homomorphism with no conclusion extension
//! (tgd), or one separating the equated variables (egd) — and apply the
//! corresponding step. They differ only in where a tgd step's existential
//! witnesses come from:
//!
//! * **standard** ([`WitnessMode::FreshNulls`]): mint a fresh labeled null
//!   per existential variable — the \[FKMP\] chase; results are universal.
//! * **solution-aware** ([`WitnessMode::FromSolution`]): pick witnesses
//!   from a supplied instance `K'` that contains the chased instance and
//!   satisfies the tgds (paper Def. 6). The chase then stays inside `K'`,
//!   which is how Lemma 2 extracts a polynomial-size sub-solution.

use crate::result::{ChaseLimits, ChaseOutcome, ChaseResult, StepRecord};
use crate::satisfy;
use pde_constraints::{Dependency, Egd, Tgd};
use pde_relational::{
    exists_hom, find_hom, for_each_hom, Assignment, Instance, NullGen, Tuple, Value,
};
use std::ops::ControlFlow;

/// Where tgd steps obtain witnesses for existential variables.
#[derive(Clone, Copy)]
pub enum WitnessMode<'a> {
    /// Mint fresh labeled nulls from the generator.
    FreshNulls(&'a NullGen),
    /// Draw witnesses from a given instance that contains the chased
    /// instance and satisfies the tgds (solution-aware chase, Def. 6).
    FromSolution(&'a Instance),
}

/// Chase `instance` with `deps` under the given witness mode and limits.
pub fn chase_with(
    mut instance: Instance,
    deps: &[Dependency],
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
) -> ChaseResult {
    let mut steps = 0usize;
    let mut tgd_steps = 0usize;
    let mut egd_steps = 0usize;
    let mut log: Vec<StepRecord> = Vec::new();

    'outer: loop {
        if steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
            return ChaseResult {
                outcome: ChaseOutcome::ResourceExceeded,
                instance,
                steps,
                tgd_steps,
                egd_steps,
                log,
            };
        }
        let mut progressed = false;
        for (i, dep) in deps.iter().enumerate() {
            match dep {
                Dependency::Tgd(tgd) => {
                    let applied =
                        apply_tgd_round(&mut instance, i, tgd, mode, limits, &mut steps, &mut log);
                    if applied > 0 {
                        tgd_steps += applied;
                        progressed = true;
                    }
                    if steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
                        continue 'outer; // limit check at loop head
                    }
                }
                Dependency::Egd(egd) => loop {
                    match apply_one_egd(&mut instance, egd) {
                        EgdStep::None => break,
                        EgdStep::Merged { from, to } => {
                            steps += 1;
                            egd_steps += 1;
                            progressed = true;
                            log.push(StepRecord::Egd {
                                dep_index: i,
                                from,
                                to,
                            });
                            if steps >= limits.max_steps {
                                continue 'outer;
                            }
                        }
                        EgdStep::Failure => {
                            return ChaseResult {
                                outcome: ChaseOutcome::Failure { dep_index: i },
                                instance,
                                steps: steps + 1,
                                tgd_steps,
                                egd_steps: egd_steps + 1,
                                log,
                            };
                        }
                    }
                },
            }
        }
        if !progressed {
            return ChaseResult {
                outcome: ChaseOutcome::Success,
                instance,
                steps,
                tgd_steps,
                egd_steps,
                log,
            };
        }
    }
}

/// Apply every *currently active* trigger of `tgd` once (re-validating each
/// before application, since earlier applications may have satisfied it).
/// Returns the number of steps applied.
#[allow(clippy::too_many_arguments)]
fn apply_tgd_round(
    instance: &mut Instance,
    dep_index: usize,
    tgd: &Tgd,
    mode: WitnessMode<'_>,
    limits: ChaseLimits,
    steps: &mut usize,
    log: &mut Vec<StepRecord>,
) -> usize {
    // Collect the active triggers against the current instance. Triggers
    // stay valid under insertions (homomorphisms are monotone), so batch
    // collection is sound in a round without egd steps.
    let mut triggers: Vec<Assignment> = Vec::new();
    let _ = for_each_hom(&tgd.premise.atoms, instance, &Assignment::new(), |h| {
        if !exists_hom(&tgd.conclusion.atoms, instance, h) {
            triggers.push(h.clone());
        }
        ControlFlow::Continue(())
    });
    let mut applied = 0usize;
    for h in triggers {
        if *steps >= limits.max_steps || instance.fact_count() >= limits.max_facts {
            break;
        }
        // Re-check: a previous application may have satisfied this trigger.
        if exists_hom(&tgd.conclusion.atoms, instance, &h) {
            continue;
        }
        let new_facts = apply_tgd_step(instance, tgd, &h, mode);
        log.push(StepRecord::Tgd {
            dep_index,
            new_facts,
        });
        *steps += 1;
        applied += 1;
    }
    applied
}

/// Apply one tgd step for trigger `h`; returns the number of new facts.
fn apply_tgd_step(
    instance: &mut Instance,
    tgd: &Tgd,
    h: &Assignment,
    mode: WitnessMode<'_>,
) -> usize {
    let mut ext = h.clone();
    match mode {
        WitnessMode::FreshNulls(gen) => {
            for v in &tgd.existentials {
                ext.bind(*v, Value::Null(gen.fresh()));
            }
        }
        WitnessMode::FromSolution(solution) => {
            // The premise image lies inside `solution` (it contains the
            // chased instance), and `solution` satisfies the tgd, so an
            // extension into `solution` exists; use its witnesses.
            let w = find_hom(&tgd.conclusion.atoms, solution, h).expect(
                "solution-aware chase: supplied instance does not satisfy the tgd \
                 (violates Def. 6's precondition)",
            );
            for v in &tgd.existentials {
                ext.bind(*v, w.get(*v).expect("extension binds existentials"));
            }
        }
    }
    let mut new_facts = 0usize;
    for atom in &tgd.conclusion.atoms {
        let vals = atom
            .ground(&|v| ext.get(v))
            .expect("conclusion fully bound after extension");
        if instance.insert(atom.rel, Tuple::new(vals)) {
            new_facts += 1;
        }
    }
    new_facts
}

enum EgdStep {
    None,
    Merged { from: Value, to: Value },
    Failure,
}

/// Find and apply one egd violation; substitutions invalidate other
/// outstanding homomorphisms, so egds are applied one at a time.
fn apply_one_egd(instance: &mut Instance, egd: &Egd) -> EgdStep {
    let Some(h) = satisfy::find_egd_violation(instance, egd) else {
        return EgdStep::None;
    };
    let l = h.get(egd.lhs).expect("bound");
    let r = h.get(egd.rhs).expect("bound");
    match (l, r) {
        (Value::Const(_), Value::Const(_)) => EgdStep::Failure,
        (Value::Null(_), _) => {
            instance.substitute(l, r);
            EgdStep::Merged { from: l, to: r }
        }
        (_, Value::Null(_)) => {
            instance.substitute(r, l);
            EgdStep::Merged { from: r, to: l }
        }
    }
}

/// Standard chase with fresh nulls and default limits.
pub fn chase(instance: Instance, deps: &[Dependency], gen: &NullGen) -> ChaseResult {
    chase_with(
        instance,
        deps,
        WitnessMode::FreshNulls(gen),
        ChaseLimits::default(),
    )
}

/// Chase with tgds only (no failure possible; outcome is success or
/// resource-exceeded).
pub fn chase_tgds(instance: Instance, tgds: &[Tgd], gen: &NullGen) -> ChaseResult {
    let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
    chase(instance, &deps, gen)
}

/// Solution-aware chase (paper Def. 7): chase `instance` with `deps`
/// drawing tgd witnesses from `solution`. The caller must ensure `solution`
/// contains `instance` and satisfies the tgds in `deps`.
pub fn solution_aware_chase(
    instance: Instance,
    deps: &[Dependency],
    solution: &Instance,
    limits: ChaseLimits,
) -> ChaseResult {
    chase_with(instance, deps, WitnessMode::FromSolution(solution), limits)
}

/// Seed a null generator safely above every null already in `instance`.
pub fn null_gen_for(instance: &Instance) -> NullGen {
    NullGen::starting_at(instance.max_null_id().map_or(0, |m| m + 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satisfy::{satisfies_all, satisfies_all_tgds};
    use pde_constraints::{parse_dependencies, parse_tgds};
    use pde_relational::{parse_instance, parse_schema, Schema};
    use std::sync::Arc;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2; target H/2; target K/2;").unwrap())
    }

    #[test]
    fn full_tgd_chase_reaches_fixpoint() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let inst = parse_instance(&s, "E(a, b). E(b, c). E(c, d).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.is_success());
        let out = res.instance;
        let h = s.rel_id("H").unwrap();
        assert_eq!(out.relation(h).len(), 2); // (a,c), (b,d)
        assert!(satisfies_all_tgds(&out, &tgds));
        assert!(out.is_ground());
    }

    #[test]
    fn existential_tgd_creates_nulls() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z), K(z, y)").unwrap();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.is_success());
        let out = res.instance;
        assert_eq!(out.fact_count(), 3);
        assert_eq!(out.nulls().len(), 1);
        assert!(satisfies_all_tgds(&out, &tgds));
    }

    #[test]
    fn restricted_chase_skips_satisfied_triggers() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        // H(a, q) already witnesses E(a, b): no step needed.
        let inst = parse_instance(&s, "E(a, b). H(a, q).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.is_success());
        assert_eq!(res.steps, 0);
        assert_eq!(res.instance.nulls().len(), 0);
    }

    #[test]
    fn egd_merges_null_with_constant() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, y) -> exists z . H(x, z); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let inst = parse_instance(&s, "E(a, b). H(a, c).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_success());
        let out = res.instance;
        let h = s.rel_id("H").unwrap();
        // Either zero steps (restricted chase sees H(a,c) as witness) or
        // the created null merges into c — both leave exactly H(a, c).
        assert_eq!(out.relation(h).len(), 1);
        assert!(out.is_ground());
        assert!(satisfies_all(&out, &deps));
    }

    #[test]
    fn egd_on_two_constants_fails() {
        let s = schema();
        let deps = parse_dependencies(&s, "H(x, y), H(x, z) -> y = z").unwrap();
        let inst = parse_instance(&s, "H(a, b). H(a, c).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_failure());
        assert_eq!(res.outcome, ChaseOutcome::Failure { dep_index: 0 });
    }

    #[test]
    fn egd_merges_two_nulls() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, y) -> exists z . H(x, z); E(x, y) -> exists w . K(x, w); \
             H(x, y), K(x, z) -> y = z",
        )
        .unwrap();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_success());
        let out = res.instance;
        assert_eq!(out.nulls().len(), 1, "the two nulls merged");
        assert!(satisfies_all(&out, &deps));
    }

    #[test]
    fn divergent_chase_hits_limit() {
        let s = Arc::new(parse_schema("target A/2;").unwrap());
        let mut a = Instance::new(s.clone());
        a.insert_consts("A", ["x", "y"]);
        let tgds = parse_tgds(&s, "A(x, y) -> exists z . A(y, z)").unwrap();
        let deps: Vec<Dependency> = tgds.into_iter().map(Dependency::Tgd).collect();
        let gen = NullGen::new();
        let res = chase_with(
            a,
            &deps,
            WitnessMode::FreshNulls(&gen),
            ChaseLimits::tight(50),
        );
        assert_eq!(res.outcome, ChaseOutcome::ResourceExceeded);
        assert!(res.steps >= 50);
    }

    #[test]
    fn solution_aware_chase_stays_inside_solution() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        // A "solution" containing inst and satisfying the tgd.
        let solution = parse_instance(&s, "E(a, b). H(a, w1). H(a, w2).").unwrap();
        let res = solution_aware_chase(inst, &deps, &solution, ChaseLimits::default());
        assert!(res.is_success());
        let out = res.instance;
        assert!(out.contained_in(&solution), "chase stayed inside K'");
        assert!(out.is_ground(), "witnesses come from K', not fresh nulls");
        assert!(satisfies_all_tgds(&out, &tgds));
        // Exactly one witness used, not both (minimality of the chase).
        let h = s.rel_id("H").unwrap();
        assert_eq!(out.relation(h).len(), 1);
    }

    #[test]
    #[should_panic(expected = "does not satisfy the tgd")]
    fn solution_aware_chase_validates_precondition() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let deps: Vec<Dependency> = tgds.iter().cloned().map(Dependency::Tgd).collect();
        let inst = parse_instance(&s, "E(a, b).").unwrap();
        let bogus = parse_instance(&s, "E(a, b).").unwrap(); // no H witness
        let _ = solution_aware_chase(inst, &deps, &bogus, ChaseLimits::default());
    }

    #[test]
    fn provenance_log_records_every_step() {
        let s = schema();
        let deps = parse_dependencies(
            &s,
            "E(x, y) -> exists z . H(x, z); H(x, y), H(x, z) -> y = z",
        )
        .unwrap();
        let inst = parse_instance(&s, "E(a, b). E(a, c). H(a, q).").unwrap();
        let gen = NullGen::new();
        let res = chase(inst, &deps, &gen);
        assert!(res.is_success());
        assert_eq!(res.log.len(), res.steps);
        let tgd_recs = res
            .log
            .iter()
            .filter(|r| matches!(r, crate::result::StepRecord::Tgd { .. }))
            .count();
        let egd_recs = res.log.len() - tgd_recs;
        assert_eq!(tgd_recs, res.tgd_steps);
        assert_eq!(egd_recs, res.egd_steps);
        // Dependency indexes point into the chased list.
        for r in &res.log {
            match r {
                crate::result::StepRecord::Tgd {
                    dep_index,
                    new_facts,
                } => {
                    assert_eq!(*dep_index, 0);
                    assert!(*new_facts <= 1);
                }
                crate::result::StepRecord::Egd {
                    dep_index,
                    from,
                    to,
                } => {
                    assert_eq!(*dep_index, 1);
                    assert!(from.is_null() || to.is_null());
                }
            }
        }
    }

    #[test]
    fn chase_without_steps_has_empty_log() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, y) -> exists z . H(x, z)").unwrap();
        let inst = parse_instance(&s, "E(a, b). H(a, w).").unwrap();
        let gen = NullGen::new();
        let res = chase_tgds(inst, &tgds, &gen);
        assert!(res.log.is_empty());
    }

    #[test]
    fn null_gen_for_avoids_collisions() {
        let s = schema();
        let inst = parse_instance(&s, "H(?5, a).").unwrap();
        let gen = null_gen_for(&inst);
        assert_eq!(gen.fresh().0, 6);
    }

    #[test]
    fn chase_is_idempotent_on_satisfied_instances() {
        let s = schema();
        let tgds = parse_tgds(&s, "E(x, z), E(z, y) -> H(x, y)").unwrap();
        let inst = parse_instance(&s, "E(a, b). E(b, c).").unwrap();
        let gen = NullGen::new();
        let once = chase_tgds(inst, &tgds, &gen).into_success().unwrap();
        let twice = chase_tgds(once.clone(), &tgds, &gen)
            .into_success()
            .unwrap();
        assert!(once.same_facts(&twice));
    }
}
