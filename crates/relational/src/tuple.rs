//! Tuples: flat, immutable arrays of [`Value`]s.

use crate::value::{NullId, Value};
use std::fmt;
use std::sync::Arc;

/// An immutable tuple of values.
///
/// Tuples are reference-counted so they can sit in both the insertion-order
/// list and the membership set of a relation without copying, and be shared
/// into chase provenance records.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build a tuple from values.
    pub fn new(values: impl Into<Vec<Value>>) -> Tuple {
        Tuple(values.into().into())
    }

    /// Build a tuple of constants from strings (test/fixture convenience).
    pub fn consts<S: AsRef<str>>(names: impl IntoIterator<Item = S>) -> Tuple {
        Tuple::new(
            names
                .into_iter()
                .map(|s| Value::constant(s.as_ref()))
                .collect::<Vec<_>>(),
        )
    }

    /// The tuple's arity.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values, as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Value at position `i`.
    pub fn get(&self, i: usize) -> Value {
        self.0[i]
    }

    /// Does any position hold a labeled null?
    pub fn has_null(&self) -> bool {
        self.0.iter().any(Value::is_null)
    }

    /// Iterate over the distinct nulls occurring in this tuple.
    pub fn nulls(&self) -> impl Iterator<Item = NullId> + '_ {
        self.0.iter().filter_map(Value::as_null)
    }

    /// A copy of this tuple with every occurrence of `from` replaced by `to`.
    /// Returns `None` when `from` does not occur (no allocation).
    pub fn replaced(&self, from: Value, to: Value) -> Option<Tuple> {
        if !self.0.contains(&from) {
            return None;
        }
        let vals: Vec<Value> = self
            .0
            .iter()
            .map(|v| if *v == from { to } else { *v })
            .collect();
        Some(Tuple::new(vals))
    }

    /// Apply `f` to every value, producing a new tuple.
    pub fn map(&self, mut f: impl FnMut(Value) -> Value) -> Tuple {
        Tuple::new(self.0.iter().map(|v| f(*v)).collect::<Vec<_>>())
    }
}

impl fmt::Debug for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consts_builder() {
        let t = Tuple::consts(["a", "b"]);
        assert_eq!(t.arity(), 2);
        assert!(!t.has_null());
        assert_eq!(t.get(0), Value::constant("a"));
    }

    #[test]
    fn equality_is_structural() {
        assert_eq!(Tuple::consts(["a", "b"]), Tuple::consts(["a", "b"]));
        assert_ne!(Tuple::consts(["a", "b"]), Tuple::consts(["b", "a"]));
    }

    #[test]
    fn replaced_substitutes_all_occurrences() {
        let n = Value::Null(NullId(0));
        let t = Tuple::new(vec![n, Value::constant("c"), n]);
        let r = t.replaced(n, Value::constant("d")).unwrap();
        assert_eq!(r, Tuple::consts(["d", "c", "d"]));
        assert!(t.replaced(Value::constant("zz"), n).is_none());
    }

    #[test]
    fn nulls_iterator() {
        let t = Tuple::new(vec![
            Value::Null(NullId(1)),
            Value::constant("c"),
            Value::Null(NullId(2)),
        ]);
        let ns: Vec<_> = t.nulls().collect();
        assert_eq!(ns, vec![NullId(1), NullId(2)]);
        assert!(t.has_null());
    }

    #[test]
    fn map_applies_per_value() {
        let t = Tuple::new(vec![Value::Null(NullId(7)), Value::constant("k")]);
        let mapped = t.map(|v| {
            if v.is_null() {
                Value::constant("filled")
            } else {
                v
            }
        });
        assert_eq!(mapped, Tuple::consts(["filled", "k"]));
    }
}
