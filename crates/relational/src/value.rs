//! The two-sorted domain of data exchange: constants and labeled nulls.
//!
//! Instances in (peer) data exchange draw values from two disjoint infinite
//! sets: `Const`, the ordinary constants, and `Var` (here [`Value::Null`]),
//! the labeled nulls created by chase steps to witness existential
//! quantifiers. Homomorphisms must preserve constants but may map nulls
//! anywhere — this asymmetry is what makes chase results *universal*.

use crate::symbol::Symbol;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Identifier of a labeled null.
///
/// Nulls are compared by identity: two nulls are the same value iff their
/// ids are equal. Fresh ids are minted by [`NullGen`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u32);

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_N{}", self.0)
    }
}

/// A value occurring in an instance: a constant or a labeled null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An ordinary constant (interned string).
    Const(Symbol),
    /// A labeled null, created to witness an existential quantifier.
    Null(NullId),
}

impl Value {
    /// Build a constant value from anything interning to a symbol.
    pub fn constant(s: impl Into<Symbol>) -> Value {
        Value::Const(s.into())
    }

    /// Is this a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this a labeled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The underlying symbol, if this is a constant.
    pub fn as_const(&self) -> Option<Symbol> {
        match self {
            Value::Const(s) => Some(*s),
            Value::Null(_) => None,
        }
    }

    /// The underlying null id, if this is a null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Const(_) => None,
            Value::Null(n) => Some(*n),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(n) => write!(f, "{n:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Const(s)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Value {
        Value::Null(n)
    }
}

/// Packed single-word storage id of a [`Value`].
///
/// Bit 0 tags the sort — `0` for constants, `1` for labeled nulls — and
/// bits 1..32 carry the payload: the global interner index of the constant's
/// [`Symbol`], or the [`NullId`]. Packing and unpacking are pure bit
/// arithmetic (the process-wide symbol interner *is* the intern table), so
/// a `ValueId` is stable across instances for the lifetime of the process.
///
/// Columnar relation storage ([`crate::relation::Relation`]) keeps rows as
/// per-attribute `Vec<ValueId>` columns and keys its open-addressed indexes
/// by the raw id; the all-ones raw word is reserved as those tables' empty
/// sentinel and is never produced by packing (payloads are bounded by
/// [`ValueId::MAX_PAYLOAD`]).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// Largest symbol index / null id a `ValueId` can carry. One short of
    /// the full 31-bit range so no packed id collides with the reserved
    /// all-ones storage sentinel.
    pub const MAX_PAYLOAD: u32 = (u32::MAX >> 1) - 1;

    /// Pack a value. O(1), no table lookups.
    ///
    /// # Panics
    /// Panics if the symbol index or null id exceeds
    /// [`ValueId::MAX_PAYLOAD`] (about two billion distinct constants or
    /// nulls — unreachable before the interner itself overflows).
    pub fn pack(v: Value) -> ValueId {
        match v {
            Value::Const(s) => {
                let ix = u32::try_from(s.index()).expect("symbol index overflow");
                assert!(ix <= Self::MAX_PAYLOAD, "symbol index overflow");
                ValueId(ix << 1)
            }
            Value::Null(n) => {
                assert!(n.0 <= Self::MAX_PAYLOAD, "null id overflow");
                ValueId((n.0 << 1) | 1)
            }
        }
    }

    /// Unpack back into a [`Value`]. O(1).
    pub fn value(self) -> Value {
        if self.0 & 1 == 1 {
            Value::Null(NullId(self.0 >> 1))
        } else {
            Value::Const(Symbol::from_index((self.0 >> 1) as usize))
        }
    }

    /// Is this the id of a labeled null?
    pub fn is_null(self) -> bool {
        self.0 & 1 == 1
    }

    /// Is this the id of a constant?
    pub fn is_const(self) -> bool {
        self.0 & 1 == 0
    }

    /// The raw packed word — the key the columnar storage hashes and
    /// stores. Never `u32::MAX` (reserved as the open-addressing sentinel).
    pub fn raw(self) -> u32 {
        self.0
    }
}

impl From<Value> for ValueId {
    fn from(v: Value) -> ValueId {
        ValueId::pack(v)
    }
}

impl From<ValueId> for Value {
    fn from(id: ValueId) -> Value {
        id.value()
    }
}

impl fmt::Debug for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.value())
    }
}

/// Generator of fresh labeled nulls.
///
/// Each chase run owns a generator so null ids are dense and deterministic
/// per run; the generator is thread-safe so parallel trigger evaluation can
/// share it.
#[derive(Debug)]
pub struct NullGen {
    next: AtomicU32,
}

impl NullGen {
    /// A generator starting at id 0.
    pub fn new() -> NullGen {
        NullGen::starting_at(0)
    }

    /// A generator whose first null has id `start` — used to continue a
    /// chase over an instance that already contains nulls.
    pub fn starting_at(start: u32) -> NullGen {
        NullGen {
            next: AtomicU32::new(start),
        }
    }

    /// Mint a fresh null.
    pub fn fresh(&self) -> NullId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        // Stay inside the 31-bit payload a packed [`ValueId`] can carry.
        assert!(id < ValueId::MAX_PAYLOAD, "null id overflow");
        NullId(id)
    }

    /// The number of ids handed out so far (relative to 0).
    pub fn high_water(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for NullGen {
    fn default() -> Self {
        NullGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compare_by_symbol() {
        assert_eq!(Value::constant("a"), Value::constant("a"));
        assert_ne!(Value::constant("a"), Value::constant("b"));
    }

    #[test]
    fn nulls_compare_by_id() {
        assert_eq!(Value::Null(NullId(3)), Value::Null(NullId(3)));
        assert_ne!(Value::Null(NullId(3)), Value::Null(NullId(4)));
    }

    #[test]
    fn constants_and_nulls_are_disjoint() {
        let c = Value::constant("7");
        let n = Value::Null(NullId(7));
        assert_ne!(c, n);
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(c.as_const().unwrap().as_str(), "7");
        assert_eq!(n.as_null(), Some(NullId(7)));
        assert_eq!(c.as_null(), None);
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn nullgen_mints_distinct_ids() {
        let g = NullGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn nullgen_starting_at_continues() {
        let g = NullGen::starting_at(10);
        assert_eq!(g.fresh(), NullId(10));
        assert_eq!(g.fresh(), NullId(11));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Value::constant("abc")), "abc");
        assert_eq!(format!("{}", Value::Null(NullId(2))), "_N2");
    }

    #[test]
    fn value_ids_round_trip() {
        for v in [
            Value::constant("a"),
            Value::constant("some longer constant"),
            Value::Null(NullId(0)),
            Value::Null(NullId(123_456)),
        ] {
            let id = ValueId::pack(v);
            assert_eq!(id.value(), v);
            assert_eq!(id.is_null(), v.is_null());
            assert_eq!(id.is_const(), v.is_const());
            assert_ne!(id.raw(), u32::MAX, "sentinel must stay reserved");
        }
    }

    #[test]
    fn value_ids_separate_the_sorts() {
        // A constant and a null with the same payload never collide: the
        // tag bit keeps the two sorts disjoint after packing.
        let c = ValueId::pack(Value::constant("x"));
        let n = ValueId::pack(Value::Null(NullId(
            u32::try_from(Symbol::intern("x").index()).unwrap(),
        )));
        assert_ne!(c, n);
    }

    #[test]
    #[should_panic(expected = "null id overflow")]
    fn value_id_rejects_sentinel_collision() {
        // The largest 31-bit null id would pack to the all-ones sentinel.
        let _ = ValueId::pack(Value::Null(NullId(u32::MAX >> 1)));
    }
}
