//! The two-sorted domain of data exchange: constants and labeled nulls.
//!
//! Instances in (peer) data exchange draw values from two disjoint infinite
//! sets: `Const`, the ordinary constants, and `Var` (here [`Value::Null`]),
//! the labeled nulls created by chase steps to witness existential
//! quantifiers. Homomorphisms must preserve constants but may map nulls
//! anywhere — this asymmetry is what makes chase results *universal*.

use crate::symbol::Symbol;
use std::fmt;
use std::sync::atomic::{AtomicU32, Ordering};

/// Identifier of a labeled null.
///
/// Nulls are compared by identity: two nulls are the same value iff their
/// ids are equal. Fresh ids are minted by [`NullGen`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NullId(pub u32);

impl fmt::Debug for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⊥{}", self.0)
    }
}

impl fmt::Display for NullId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_N{}", self.0)
    }
}

/// A value occurring in an instance: a constant or a labeled null.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// An ordinary constant (interned string).
    Const(Symbol),
    /// A labeled null, created to witness an existential quantifier.
    Null(NullId),
}

impl Value {
    /// Build a constant value from anything interning to a symbol.
    pub fn constant(s: impl Into<Symbol>) -> Value {
        Value::Const(s.into())
    }

    /// Is this a constant?
    pub fn is_const(&self) -> bool {
        matches!(self, Value::Const(_))
    }

    /// Is this a labeled null?
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null(_))
    }

    /// The underlying symbol, if this is a constant.
    pub fn as_const(&self) -> Option<Symbol> {
        match self {
            Value::Const(s) => Some(*s),
            Value::Null(_) => None,
        }
    }

    /// The underlying null id, if this is a null.
    pub fn as_null(&self) -> Option<NullId> {
        match self {
            Value::Const(_) => None,
            Value::Null(n) => Some(*n),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(n) => write!(f, "{n:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Const(s) => write!(f, "{s}"),
            Value::Null(n) => write!(f, "{n}"),
        }
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Const(s)
    }
}

impl From<NullId> for Value {
    fn from(n: NullId) -> Value {
        Value::Null(n)
    }
}

/// Generator of fresh labeled nulls.
///
/// Each chase run owns a generator so null ids are dense and deterministic
/// per run; the generator is thread-safe so parallel trigger evaluation can
/// share it.
#[derive(Debug)]
pub struct NullGen {
    next: AtomicU32,
}

impl NullGen {
    /// A generator starting at id 0.
    pub fn new() -> NullGen {
        NullGen::starting_at(0)
    }

    /// A generator whose first null has id `start` — used to continue a
    /// chase over an instance that already contains nulls.
    pub fn starting_at(start: u32) -> NullGen {
        NullGen {
            next: AtomicU32::new(start),
        }
    }

    /// Mint a fresh null.
    pub fn fresh(&self) -> NullId {
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        assert!(id != u32::MAX, "null id overflow");
        NullId(id)
    }

    /// The number of ids handed out so far (relative to 0).
    pub fn high_water(&self) -> u32 {
        self.next.load(Ordering::Relaxed)
    }
}

impl Default for NullGen {
    fn default() -> Self {
        NullGen::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_compare_by_symbol() {
        assert_eq!(Value::constant("a"), Value::constant("a"));
        assert_ne!(Value::constant("a"), Value::constant("b"));
    }

    #[test]
    fn nulls_compare_by_id() {
        assert_eq!(Value::Null(NullId(3)), Value::Null(NullId(3)));
        assert_ne!(Value::Null(NullId(3)), Value::Null(NullId(4)));
    }

    #[test]
    fn constants_and_nulls_are_disjoint() {
        let c = Value::constant("7");
        let n = Value::Null(NullId(7));
        assert_ne!(c, n);
        assert!(c.is_const() && !c.is_null());
        assert!(n.is_null() && !n.is_const());
        assert_eq!(c.as_const().unwrap().as_str(), "7");
        assert_eq!(n.as_null(), Some(NullId(7)));
        assert_eq!(c.as_null(), None);
        assert_eq!(n.as_const(), None);
    }

    #[test]
    fn nullgen_mints_distinct_ids() {
        let g = NullGen::new();
        let a = g.fresh();
        let b = g.fresh();
        assert_ne!(a, b);
        assert_eq!(g.high_water(), 2);
    }

    #[test]
    fn nullgen_starting_at_continues() {
        let g = NullGen::starting_at(10);
        assert_eq!(g.fresh(), NullId(10));
        assert_eq!(g.fresh(), NullId(11));
    }

    #[test]
    fn display_forms() {
        assert_eq!(format!("{}", Value::constant("abc")), "abc");
        assert_eq!(format!("{}", Value::Null(NullId(2))), "_N2");
    }
}
