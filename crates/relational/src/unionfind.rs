//! Union-find over [`Value`]s for batched egd merging.
//!
//! An egd round of the semi-naive chase discovers many `l = r` violations
//! before touching the instance. Instead of rewriting the whole instance
//! once per violation (the naive engine's behavior), the violations are
//! accumulated in a [`ValueUnionFind`]; each equivalence class elects a
//! *canonical representative* — a constant when the class contains one,
//! an arbitrary member null otherwise — and the instance is rewritten once
//! per round through [`crate::instance::Instance::apply_merges`], which
//! repairs only the index buckets of the merged values.
//!
//! A class can hold at most one constant: uniting two distinct constants is
//! the chase's *failure* condition and surfaces as [`ConstMergeConflict`].

use crate::store::FxBuildHasher;
use crate::value::{Value, ValueId};
use std::collections::HashMap;

/// A union-find (disjoint-set) structure over values, with constants
/// always winning representative elections.
///
/// Stored over packed [`ValueId`]s in a fast integer-keyed map: resolving
/// runs once per candidate value in every egd round, so the per-lookup
/// constant matters.
#[derive(Clone, Debug, Default)]
pub struct ValueUnionFind {
    /// Parent pointers for non-root values only: absence means root.
    parent: HashMap<ValueId, ValueId, FxBuildHasher>,
}

/// Two distinct constants were equated — the chase failure condition
/// (paper Def. 6, egd case).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConstMergeConflict {
    /// One of the clashing constants.
    pub left: Value,
    /// The other clashing constant.
    pub right: Value,
}

impl ValueUnionFind {
    /// An empty union-find (every value is its own class).
    pub fn new() -> ValueUnionFind {
        ValueUnionFind::default()
    }

    /// The canonical representative of `v`'s class (`v` itself when it was
    /// never merged).
    pub fn resolve(&self, v: Value) -> Value {
        let mut cur = ValueId::pack(v);
        while let Some(p) = self.parent.get(&cur) {
            cur = *p;
        }
        cur.value()
    }

    /// Merge the classes of `l` and `r`.
    ///
    /// Returns `Ok(Some((from, to)))` when two distinct classes were united
    /// — `from` is the losing representative (always a null) and `to` the
    /// surviving one, matching the orientation the chase engine logs in its
    /// `StepRecord::Egd` provenance records;
    /// `Ok(None)` when the values were already in one class; and
    /// `Err(ConstMergeConflict)` when both classes are rooted at distinct
    /// constants.
    pub fn union(
        &mut self,
        l: Value,
        r: Value,
    ) -> Result<Option<(Value, Value)>, ConstMergeConflict> {
        let rl = self.resolve(l);
        let rr = self.resolve(r);
        if rl == rr {
            return Ok(None);
        }
        // Constants win the election; between two nulls the right-hand
        // side survives (the naive engine's `substitute(l, r)` orientation).
        let (from, to) = match (rl, rr) {
            (Value::Const(_), Value::Const(_)) => {
                return Err(ConstMergeConflict {
                    left: rl,
                    right: rr,
                })
            }
            (Value::Null(_), _) => (rl, rr),
            (_, Value::Null(_)) => (rr, rl),
        };
        self.parent.insert(ValueId::pack(from), ValueId::pack(to));
        Ok(Some((from, to)))
    }

    /// Number of effective merges recorded (non-root values).
    pub fn merge_count(&self) -> usize {
        self.parent.len()
    }

    /// Has nothing been merged?
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Every value whose class representative is not itself — exactly the
    /// values whose occurrences must be rewritten in the instance.
    pub fn dirty_values(&self) -> Vec<Value> {
        self.parent.keys().map(|id| id.value()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    fn n(i: u32) -> Value {
        Value::Null(NullId(i))
    }

    #[test]
    fn union_prefers_constants() {
        let mut uf = ValueUnionFind::new();
        let c = Value::constant("c");
        assert_eq!(uf.union(n(0), c), Ok(Some((n(0), c))));
        assert_eq!(uf.union(c, n(1)), Ok(Some((n(1), c))));
        assert_eq!(uf.resolve(n(0)), c);
        assert_eq!(uf.resolve(n(1)), c);
        assert_eq!(uf.merge_count(), 2);
    }

    #[test]
    fn union_is_transitive_and_idempotent() {
        let mut uf = ValueUnionFind::new();
        assert_eq!(uf.union(n(0), n(1)), Ok(Some((n(0), n(1)))));
        assert_eq!(uf.union(n(1), n(2)), Ok(Some((n(1), n(2)))));
        // 0 and 2 are already connected through 1.
        assert_eq!(uf.union(n(0), n(2)), Ok(None));
        assert_eq!(uf.resolve(n(0)), n(2));
        let mut dirty = uf.dirty_values();
        dirty.sort();
        assert_eq!(dirty, vec![n(0), n(1)]);
    }

    #[test]
    fn constant_clash_is_a_conflict() {
        let mut uf = ValueUnionFind::new();
        let a = Value::constant("a");
        let b = Value::constant("b");
        uf.union(n(0), a).unwrap();
        uf.union(n(1), b).unwrap();
        // n(0) ~ a, n(1) ~ b: equating the nulls equates a and b.
        assert_eq!(
            uf.union(n(0), n(1)),
            Err(ConstMergeConflict { left: a, right: b })
        );
        // Same-constant unions are fine.
        assert_eq!(uf.union(n(2), a), Ok(Some((n(2), a))));
        assert_eq!(uf.union(n(2), a), Ok(None));
    }

    #[test]
    fn losing_representative_is_always_a_null() {
        let mut uf = ValueUnionFind::new();
        let c = Value::constant("c");
        for (l, r) in [(c, n(5)), (n(6), n(7)), (n(7), c)] {
            if let Ok(Some((from, _))) = uf.union(l, r) {
                assert!(from.is_null());
            }
        }
        assert!(uf.resolve(n(5)) == c && uf.resolve(n(6)) == c && uf.resolve(n(7)) == c);
    }
}
