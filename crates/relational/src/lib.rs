//! Relational substrate for peer data exchange (PODS 2005).
//!
//! This crate provides the model-theoretic ground floor the rest of the
//! workspace stands on:
//!
//! * two-sorted values — constants and labeled nulls ([`value`]), packed
//!   into single-word [`value::ValueId`]s at rest;
//! * schemas with source/target peer tags ([`schema`]);
//! * columnar, indexed instances over a schema ([`instance`], [`relation`],
//!   [`mod@tuple`]), with open-addressed storage primitives in the private
//!   `store` module (see `docs/STORAGE.md`);
//! * first-order syntax: variables, terms, atoms, conjunctions ([`atom`]);
//! * homomorphism search, formula→instance and instance→instance ([`hom`]);
//! * conjunctive queries and unions thereof ([`query`]);
//! * cores / minimal retracts of instances with nulls ([`retract`]);
//! * a small text syntax for all of the above ([`parser`]).
//!
//! Everything is deterministic and single-threaded except the global string
//! interner, which is shared and thread-safe.

pub mod atom;
pub mod hom;
pub mod instance;
pub mod parser;
pub mod query;
pub mod relation;
pub mod retract;
pub mod schema;
mod store;
pub mod symbol;
pub mod tuple;
pub mod unionfind;
pub mod value;

pub use atom::{Atom, Conjunction, Term, Var};
pub use hom::{
    all_homs, exists_hom, exists_hom_with, find_hom, for_each_hom, for_each_hom_seminaive,
    for_each_hom_with, instance_as_atoms, instance_hom, instance_hom_exists, instance_hom_with,
    instances_isomorphic, Assignment, HomConfig,
};
pub use instance::Instance;
pub use instance::StorageStats;
pub use parser::{
    parse_atom, parse_atom_list, parse_atoms, parse_instance, parse_query, parse_schema,
    parse_term, Lexer, ParseError, Span, Token,
};
pub use query::{ConjunctiveQuery, UnionQuery};
pub use relation::{Relation, BYTES_PER_FACT_BUDGET};
pub use retract::{core_of, fold_null, is_core};
pub use schema::{Peer, Position, RelId, RelationInfo, Schema};
pub use store::{FxBuildHasher, FxHasher};
pub use symbol::Symbol;
pub use tuple::Tuple;
pub use unionfind::{ConstMergeConflict, ValueUnionFind};
pub use value::{NullGen, NullId, Value, ValueId};
