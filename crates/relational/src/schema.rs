//! Schemas: relation symbols with fixed arities, split between two peers.
//!
//! A peer data exchange setting works over the combined schema **(S, T)** of
//! a *source* peer and a *target* peer (paper §2). We model the combination
//! as a single [`Schema`] in which every relation carries a [`Peer`] tag;
//! this keeps relation ids uniform across the pair instance `(I, J)` so the
//! chase never needs to translate ids between two schema objects.

use crate::symbol::Symbol;
use std::collections::HashMap;
use std::fmt;

/// Which peer a relation belongs to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Peer {
    /// The authoritative source peer (schema **S**); its data never changes.
    Source,
    /// The target peer (schema **T**); its data may be augmented.
    Target,
}

impl fmt::Display for Peer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Peer::Source => write!(f, "source"),
            Peer::Target => write!(f, "target"),
        }
    }
}

/// Dense id of a relation within a [`Schema`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

impl RelId {
    /// The id as a dense index.
    pub fn index(&self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R#{}", self.0)
    }
}

/// A position `(R, i)`: the `i`-th attribute of relation `R`.
///
/// Positions are the nodes of the dependency graph used for weak acyclicity
/// (paper Def. 5) and the unit at which markings are recorded (Def. 8).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Position {
    /// The relation.
    pub rel: RelId,
    /// Zero-based attribute index.
    pub attr: u16,
}

impl Position {
    /// Position at a `usize` attribute index, as produced by `enumerate()`.
    ///
    /// Arities are declared as `u16`, so any index reached while walking a
    /// well-formed atom fits; a larger index is a caller bug.
    pub fn at(rel: RelId, attr: usize) -> Position {
        let attr = u16::try_from(attr).expect("attribute index exceeds u16 arity bound");
        Position { rel, attr }
    }
}

/// Metadata of one relation symbol.
#[derive(Clone, Debug)]
pub struct RelationInfo {
    /// The relation's name.
    pub name: Symbol,
    /// Number of attributes.
    pub arity: u16,
    /// Owning peer.
    pub peer: Peer,
}

/// A finite collection of relation symbols, each with a fixed arity and an
/// owning peer.
#[derive(Clone, Debug, Default)]
pub struct Schema {
    relations: Vec<RelationInfo>,
    by_name: HashMap<Symbol, RelId>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Add a relation; returns its id.
    ///
    /// # Panics
    /// Panics if a relation with the same name already exists (schemas of the
    /// two peers are disjoint by definition, so a duplicate is a caller bug).
    pub fn add_relation(&mut self, name: impl Into<Symbol>, arity: u16, peer: Peer) -> RelId {
        let name = name.into();
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate relation {name}"
        );
        let id = RelId(u32::try_from(self.relations.len()).expect("schema overflow"));
        self.relations.push(RelationInfo { name, arity, peer });
        self.by_name.insert(name, id);
        id
    }

    /// Convenience: add a source relation.
    pub fn source(&mut self, name: impl Into<Symbol>, arity: u16) -> RelId {
        self.add_relation(name, arity, Peer::Source)
    }

    /// Convenience: add a target relation.
    pub fn target(&mut self, name: impl Into<Symbol>, arity: u16) -> RelId {
        self.add_relation(name, arity, Peer::Target)
    }

    /// Number of relations.
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Is the schema empty?
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }

    /// Look up a relation by name.
    pub fn rel_id(&self, name: impl Into<Symbol>) -> Option<RelId> {
        self.by_name.get(&name.into()).copied()
    }

    /// Metadata of relation `id`.
    pub fn info(&self, id: RelId) -> &RelationInfo {
        &self.relations[id.index()]
    }

    /// Arity of relation `id`.
    pub fn arity(&self, id: RelId) -> u16 {
        self.info(id).arity
    }

    /// Name of relation `id`.
    pub fn name(&self, id: RelId) -> Symbol {
        self.info(id).name
    }

    /// Peer owning relation `id`.
    pub fn peer(&self, id: RelId) -> Peer {
        self.info(id).peer
    }

    /// Iterate over all relation ids.
    pub fn rel_ids(&self) -> impl Iterator<Item = RelId> + '_ {
        let n = u32::try_from(self.relations.len()).expect("relation count exceeds u32 id space");
        (0..n).map(RelId)
    }

    /// Iterate over the relation ids belonging to `peer`.
    pub fn rels_of(&self, peer: Peer) -> impl Iterator<Item = RelId> + '_ {
        self.rel_ids().filter(move |id| self.peer(*id) == peer)
    }

    /// All positions `(R, i)` of the schema, in relation order.
    pub fn positions(&self) -> impl Iterator<Item = Position> + '_ {
        self.rel_ids()
            .flat_map(move |rel| (0..self.arity(rel)).map(move |attr| Position { rel, attr }))
    }

    /// Total number of positions.
    pub fn position_count(&self) -> usize {
        self.relations.iter().map(|r| r.arity as usize).sum()
    }

    /// A dense index for `pos` in `0..self.position_count()`, or `None` if
    /// the position is out of range.
    pub fn position_index(&self, pos: Position) -> Option<usize> {
        if pos.rel.index() >= self.relations.len() || pos.attr >= self.arity(pos.rel) {
            return None;
        }
        let mut base = 0usize;
        for id in 0..pos.rel.0 {
            base += self.relations[id as usize].arity as usize;
        }
        Some(base + pos.attr as usize)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.relations.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{} {}/{}", r.peer, r.name, r.arity)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        let mut s = Schema::new();
        s.source("E", 2);
        s.target("H", 2);
        s.target("P", 4);
        s
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        let e = s.rel_id("E").unwrap();
        assert_eq!(s.arity(e), 2);
        assert_eq!(s.peer(e), Peer::Source);
        assert_eq!(s.name(e).as_str(), "E");
        assert!(s.rel_id("Q").is_none());
    }

    #[test]
    fn peers_partition_relations() {
        let s = sample();
        let src: Vec<_> = s.rels_of(Peer::Source).collect();
        let tgt: Vec<_> = s.rels_of(Peer::Target).collect();
        assert_eq!(src.len(), 1);
        assert_eq!(tgt.len(), 2);
        assert_eq!(src.len() + tgt.len(), s.len());
    }

    #[test]
    #[should_panic(expected = "duplicate relation")]
    fn duplicate_names_panic() {
        let mut s = sample();
        s.source("E", 3);
    }

    #[test]
    fn positions_enumerate_all_attributes() {
        let s = sample();
        let positions: Vec<_> = s.positions().collect();
        assert_eq!(positions.len(), 8);
        assert_eq!(s.position_count(), 8);
        for (i, p) in positions.iter().enumerate() {
            assert_eq!(s.position_index(*p), Some(i));
        }
    }

    #[test]
    fn position_index_rejects_out_of_range() {
        let s = sample();
        let e = s.rel_id("E").unwrap();
        assert_eq!(s.position_index(Position { rel: e, attr: 2 }), None);
        assert_eq!(
            s.position_index(Position {
                rel: RelId(99),
                attr: 0
            }),
            None
        );
    }

    #[test]
    fn display_lists_relations() {
        let s = sample();
        let d = format!("{s}");
        assert!(d.contains("source E/2"));
        assert!(d.contains("target P/4"));
    }
}
