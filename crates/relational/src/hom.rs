//! Homomorphism search.
//!
//! Two flavours are needed by the paper's algorithms:
//!
//! 1. **Formula → instance**: find assignments of the variables of a
//!    conjunction of atoms to values of an instance such that every ground
//!    conjunct is a fact. This drives chase trigger enumeration, conjunctive
//!    query evaluation, and dependency satisfaction checks.
//! 2. **Instance → instance**: find a constant-preserving map on the nulls
//!    of one instance sending every fact into another instance. This is the
//!    test at the heart of `ExistsSolution` (paper Fig. 3): a homomorphism
//!    from (each block of) `I_can` to `I`.
//!
//! The search is backtracking with two optimizations that can be switched
//! off for the ablation experiment (EXPERIMENTS.md E13): *dynamic atom
//! ordering* (always expand the atom with the fewest estimated candidate
//! tuples next, preferring atoms already connected to the bound prefix) and
//! *index-driven candidate enumeration* (scan only the rows sharing a bound
//! value via the per-attribute hash indexes, instead of the whole relation).
//!
//! A third, *semi-naive* entry point ([`for_each_hom_seminaive`]) restricts
//! each atom to an insertion-epoch window so that only homomorphisms
//! touching a delta of recently inserted facts are enumerated — the
//! trigger-discovery mode of the semi-naive chase.

use crate::atom::{Atom, Term, Var};
use crate::instance::Instance;
use crate::relation::Relation;
use crate::store::FxBuildHasher;
use crate::value::{NullId, Value, ValueId};
use std::collections::HashMap;
use std::ops::ControlFlow;

/// A (partial) assignment of variables to values.
///
/// Backed by a fast integer-keyed hash map: binding and probing variables
/// is the innermost operation of the search, executed once per candidate
/// row per atom.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Assignment {
    map: HashMap<Var, Value, FxBuildHasher>,
}

impl Assignment {
    /// The empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Build from pairs.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Var, Value)>) -> Assignment {
        Assignment {
            map: pairs.into_iter().collect(),
        }
    }

    /// The value of `v`, if bound.
    pub fn get(&self, v: Var) -> Option<Value> {
        self.map.get(&v).copied()
    }

    /// Bind `v` to `val` (overwrites).
    pub fn bind(&mut self, v: Var, val: Value) {
        self.map.insert(v, val);
    }

    /// Remove the binding of `v`.
    pub fn unbind(&mut self, v: Var) {
        self.map.remove(&v);
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Is nothing bound?
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterate over bindings.
    pub fn iter(&self) -> impl Iterator<Item = (Var, Value)> + '_ {
        self.map.iter().map(|(v, val)| (*v, *val))
    }

    /// Evaluate a term under this assignment.
    pub fn eval(&self, t: &Term) -> Option<Value> {
        match t {
            Term::Const(c) => Some(Value::Const(*c)),
            Term::Var(v) => self.get(*v),
        }
    }
}

impl FromIterator<(Var, Value)> for Assignment {
    fn from_iter<T: IntoIterator<Item = (Var, Value)>>(iter: T) -> Self {
        Assignment::from_pairs(iter)
    }
}

/// Tuning switches for the search; the defaults enable everything.
#[derive(Clone, Copy, Debug)]
pub struct HomConfig {
    /// Use per-attribute indexes to enumerate candidate rows.
    pub use_index: bool,
    /// Pick the most constrained atom next instead of textual order.
    pub reorder_atoms: bool,
}

impl Default for HomConfig {
    fn default() -> Self {
        HomConfig {
            use_index: true,
            reorder_atoms: true,
        }
    }
}

/// A half-open insertion-epoch window `[lo, hi)` constraining which rows an
/// atom may match during a semi-naive search.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct EpochWindow {
    lo: u64,
    hi: u64,
}

impl EpochWindow {
    /// No constraint at all.
    const ALL: EpochWindow = EpochWindow {
        lo: 0,
        hi: u64::MAX,
    };

    /// Everything inserted strictly before `hi`.
    fn before(hi: u64) -> EpochWindow {
        EpochWindow { lo: 0, hi }
    }

    fn contains(self, epoch: u64) -> bool {
        self.lo <= epoch && epoch < self.hi
    }

    fn is_all(self) -> bool {
        self == EpochWindow::ALL
    }
}

struct Search<'a, F> {
    atoms: &'a [Atom],
    inst: &'a Instance,
    config: HomConfig,
    /// Per-atom epoch windows (parallel to `atoms`); `None` means
    /// unconstrained.
    windows: Option<&'a [EpochWindow]>,
    sink: F,
}

impl<F: FnMut(&Assignment) -> ControlFlow<()>> Search<'_, F> {
    fn run(&mut self, assign: &mut Assignment) -> ControlFlow<()> {
        let mut remaining: Vec<usize> = (0..self.atoms.len()).collect();
        self.step(assign, &mut remaining)
    }

    fn window(&self, atom_idx: usize) -> EpochWindow {
        self.windows.map_or(EpochWindow::ALL, |w| w[atom_idx])
    }

    /// Estimated number of candidate rows for atom `ai` under `assign`:
    /// the count at the most selective bound position, or the (window)
    /// relation size when nothing is bound.
    fn estimate(&self, ai: usize, assign: &Assignment) -> usize {
        let atom = &self.atoms[ai];
        let rel = self.inst.relation(atom.rel);
        let w = self.window(ai);
        let mut best = if w.is_all() {
            rel.len()
        } else {
            rel.window_size(w.lo, w.hi)
        };
        for (i, t) in atom.terms.iter().enumerate() {
            if let Some(v) = assign.eval(t) {
                let attr = u16::try_from(i).expect("attribute index exceeds u16 arity bound");
                best = best.min(rel.count_with_id(attr, ValueId::pack(v)));
            }
        }
        best
    }

    fn step(&mut self, assign: &mut Assignment, remaining: &mut Vec<usize>) -> ControlFlow<()> {
        let Some(slot) = self.pick(assign, remaining) else {
            return (self.sink)(assign);
        };
        let atom_idx = remaining.swap_remove(slot);
        // Clone the (small) atom so its borrow does not overlap the
        // recursive `&mut self` call below. The relation reference is
        // copied out of `self.inst` at the instance lifetime, so the
        // candidate iterators below never borrow `self` — candidates are
        // probed in place as packed ids, with no tuple materialization.
        let atom = self.atoms[atom_idx].clone();
        let rel: &Relation = self.inst.relation(atom.rel);
        let w = self.window(atom_idx);

        // Candidate rows: via the best bound-position index, or a scan of
        // the (windowed) live row ids.
        let mut anchor: Option<(u16, ValueId, usize)> = None;
        if self.config.use_index {
            for (i, t) in atom.terms.iter().enumerate() {
                if let Some(v) = assign.eval(t) {
                    let attr = u16::try_from(i).expect("attribute index exceeds u16 arity bound");
                    let id = ValueId::pack(v);
                    let c = rel.count_with_id(attr, id);
                    if anchor.as_ref().is_none_or(|(_, _, best)| c < *best) {
                        anchor = Some((attr, id, c));
                    }
                }
            }
        }
        match anchor {
            Some((attr, id, _)) => {
                let rows = rel
                    .rows_with_id(attr, id)
                    .filter(|r| w.contains(rel.epoch_of(*r)));
                self.expand(rel, &atom, atom_idx, rows, assign, remaining)
            }
            None if w.is_all() => {
                let rows = rel.live_row_ids();
                self.expand(rel, &atom, atom_idx, rows, assign, remaining)
            }
            None => {
                let rows = rel.row_ids_in_window(w.lo, w.hi);
                self.expand(rel, &atom, atom_idx, rows, assign, remaining)
            }
        }
    }

    /// Try every candidate row of `atom`: match its packed column values
    /// against the terms (constants and bound variables compare as ids in
    /// O(1); free variables bind), then recurse into the remaining atoms.
    fn expand(
        &mut self,
        rel: &Relation,
        atom: &Atom,
        atom_idx: usize,
        rows: impl Iterator<Item = u32>,
        assign: &mut Assignment,
        remaining: &mut Vec<usize>,
    ) -> ControlFlow<()> {
        for r in rows {
            let mut bound_here: Vec<Var> = Vec::new();
            let mut ok = true;
            for (i, term) in atom.terms.iter().enumerate() {
                let attr = u16::try_from(i).expect("attribute index exceeds u16 arity bound");
                let tv = rel.value_id_at(r, attr);
                match term {
                    Term::Const(c) => {
                        if ValueId::pack(Value::Const(*c)) != tv {
                            ok = false;
                            break;
                        }
                    }
                    Term::Var(v) => match assign.get(*v) {
                        Some(bound) => {
                            if ValueId::pack(bound) != tv {
                                ok = false;
                                break;
                            }
                        }
                        None => {
                            assign.bind(*v, tv.value());
                            bound_here.push(*v);
                        }
                    },
                }
            }
            if ok {
                if let ControlFlow::Break(()) = self.step(assign, remaining) {
                    for v in bound_here {
                        assign.unbind(v);
                    }
                    remaining.push(atom_idx);
                    return ControlFlow::Break(());
                }
            }
            for v in bound_here {
                assign.unbind(v);
            }
        }
        remaining.push(atom_idx);
        ControlFlow::Continue(())
    }

    /// Index *into `remaining`* of the atom to expand next: the most
    /// selective atom among those *connected* to the current assignment
    /// (sharing a bound variable or carrying a constant). Disconnected
    /// atoms are deferred — however small their relation, expanding one
    /// forks the search into a cartesian product with the bound prefix,
    /// which the per-atom estimate alone cannot see.
    fn pick(&self, assign: &Assignment, remaining: &[usize]) -> Option<usize> {
        if remaining.is_empty() {
            return None;
        }
        if !self.config.reorder_atoms {
            return Some(0);
        }
        let mut best = 0usize;
        let mut best_key = (true, usize::MAX);
        for (slot, &ai) in remaining.iter().enumerate() {
            let est = self.estimate(ai, assign);
            let connected = self.atoms[ai]
                .terms
                .iter()
                .any(|t| assign.eval(t).is_some());
            let key = (!connected, est);
            if key < best_key {
                best_key = key;
                best = slot;
            }
        }
        Some(best)
    }
}

/// Enumerate every homomorphism extending `partial` from `atoms` into
/// `inst`, invoking `f` on each. `f` may break to stop early.
pub fn for_each_hom_with(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Assignment,
    config: HomConfig,
    f: impl FnMut(&Assignment) -> ControlFlow<()>,
) -> ControlFlow<()> {
    let mut search = Search {
        atoms,
        inst,
        config,
        windows: None,
        sink: f,
    };
    let mut assign = partial.clone();
    search.run(&mut assign)
}

/// Enumerate every homomorphism extending `partial` from `atoms` into
/// `inst` that matches *at least one* atom against a fact whose insertion
/// epoch lies in `[delta_lo, delta_hi)` — the semi-naive delta mode. Facts
/// stamped `>= delta_hi` are invisible (the search sees the instance as of
/// `delta_hi`), so enumeration during a chase round is unaffected by that
/// round's own insertions.
///
/// Each qualifying homomorphism is produced exactly once via the standard
/// pivot decomposition: for each pivot position `p`, atom `p` matches
/// inside the delta, atoms before `p` match strictly before it, and atoms
/// after `p` match anywhere below `delta_hi` — so a homomorphism is found
/// for exactly one pivot, the first atom it matches against the delta.
///
/// An empty conjunction yields nothing: its empty homomorphism touches no
/// delta fact (callers wanting the seed-round semantics of the empty hom
/// use [`for_each_hom_with`] directly).
pub fn for_each_hom_seminaive(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Assignment,
    config: HomConfig,
    delta_lo: u64,
    delta_hi: u64,
    mut f: impl FnMut(&Assignment) -> ControlFlow<()>,
) -> ControlFlow<()> {
    // Trigger-discovery instrumentation point: one span per (dependency,
    // round) call, covering the whole pivot sweep.
    let _span = pde_trace::span("hom.search")
        .field("kind", "seminaive")
        .field("atoms", atoms.len())
        .field("delta_lo", delta_lo)
        .field("delta_hi", delta_hi);
    let mut windows = vec![EpochWindow::before(delta_hi); atoms.len()];
    for pivot in 0..atoms.len() {
        if inst
            .relation(atoms[pivot].rel)
            .window_size(delta_lo, delta_hi)
            == 0
        {
            continue; // this pivot's relation has no delta rows at all
        }
        for (j, w) in windows.iter_mut().enumerate() {
            *w = match j.cmp(&pivot) {
                std::cmp::Ordering::Less => EpochWindow::before(delta_lo),
                std::cmp::Ordering::Equal => EpochWindow {
                    lo: delta_lo,
                    hi: delta_hi,
                },
                std::cmp::Ordering::Greater => EpochWindow::before(delta_hi),
            };
        }
        let mut search = Search {
            atoms,
            inst,
            config,
            windows: Some(&windows),
            sink: &mut f,
        };
        let mut assign = partial.clone();
        search.run(&mut assign)?;
    }
    ControlFlow::Continue(())
}

/// [`for_each_hom_with`] with the default configuration.
pub fn for_each_hom(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Assignment,
    f: impl FnMut(&Assignment) -> ControlFlow<()>,
) -> ControlFlow<()> {
    for_each_hom_with(atoms, inst, partial, HomConfig::default(), f)
}

/// Is there a homomorphism extending `partial`?
pub fn exists_hom(atoms: &[Atom], inst: &Instance, partial: &Assignment) -> bool {
    exists_hom_with(atoms, inst, partial, HomConfig::default())
}

/// [`exists_hom`] with an explicit configuration (ablation hook).
pub fn exists_hom_with(
    atoms: &[Atom],
    inst: &Instance,
    partial: &Assignment,
    config: HomConfig,
) -> bool {
    for_each_hom_with(atoms, inst, partial, config, |_| ControlFlow::Break(())).is_break()
}

/// The first homomorphism extending `partial`, if any.
pub fn find_hom(atoms: &[Atom], inst: &Instance, partial: &Assignment) -> Option<Assignment> {
    let mut found = None;
    let _ = for_each_hom(atoms, inst, partial, |a| {
        found = Some(a.clone());
        ControlFlow::Break(())
    });
    found
}

/// All homomorphisms extending `partial` (use only when the count is known
/// to be manageable; prefer [`for_each_hom`] otherwise).
pub fn all_homs(atoms: &[Atom], inst: &Instance, partial: &Assignment) -> Vec<Assignment> {
    let mut out = Vec::new();
    let _ = for_each_hom(atoms, inst, partial, |a| {
        out.push(a.clone());
        ControlFlow::Continue(())
    });
    out
}

/// Internal variable namespace for nulls when casting an instance to a
/// conjunction. The prefix cannot collide with parsed variable names because
/// the parser rejects identifiers starting with `__pde`.
fn null_var(n: NullId) -> Var {
    Var::new(format!("__pde_null_{}", n.0))
}

/// Cast the facts of `from` into a conjunction: constants stay constants,
/// each null becomes a (shared) variable. A homomorphism of this conjunction
/// into `to` is exactly a constant-preserving map `from → to`.
pub fn instance_as_atoms(from: &Instance) -> Vec<Atom> {
    from.facts()
        .map(|(rel, t)| Atom {
            rel,
            terms: t
                .values()
                .iter()
                .map(|v| match v {
                    Value::Const(c) => Term::Const(*c),
                    Value::Null(n) => Term::Var(null_var(*n)),
                })
                .collect(),
        })
        .collect()
}

/// Find a constant-preserving homomorphism from `from` to `to`, returned as
/// a map on the nulls of `from`. Constants of `from` must appear verbatim in
/// `to` wherever required; nulls may map to any value.
pub fn instance_hom(from: &Instance, to: &Instance) -> Option<HashMap<NullId, Value>> {
    instance_hom_with(from, to, HomConfig::default())
}

/// [`instance_hom`] with an explicit configuration (ablation hook).
pub fn instance_hom_with(
    from: &Instance,
    to: &Instance,
    config: HomConfig,
) -> Option<HashMap<NullId, Value>> {
    // Block-level hom searches (Prop. 1) route through here; the span
    // gives `--profile` the cost of whole-instance mapping separately
    // from delta trigger discovery.
    let _span = pde_trace::span("hom.search")
        .field("kind", "instance")
        .field("facts", from.fact_count());
    let atoms = instance_as_atoms(from);
    let mut found = None;
    let _ = for_each_hom_with(&atoms, to, &Assignment::new(), config, |a| {
        found = Some(a.clone());
        ControlFlow::Break(())
    });
    let assign = found?;
    Some(
        from.nulls()
            .into_iter()
            .map(|n| {
                let v = assign
                    .get(null_var(n))
                    .expect("every null occurs in some atom");
                (n, v)
            })
            .collect(),
    )
}

/// Does a constant-preserving homomorphism `from → to` exist?
pub fn instance_hom_exists(from: &Instance, to: &Instance) -> bool {
    let atoms = instance_as_atoms(from);
    exists_hom(&atoms, to, &Assignment::new())
}

/// Are the two instances isomorphic: equal up to a renaming (bijection) of
/// their labeled nulls? Ground instances are isomorphic iff they hold the
/// same facts.
pub fn instances_isomorphic(a: &Instance, b: &Instance) -> bool {
    if a.fact_count() != b.fact_count() {
        return false;
    }
    let a_nulls = a.nulls();
    let b_nulls = b.nulls();
    if a_nulls.len() != b_nulls.len() {
        return false;
    }
    if a_nulls.is_empty() {
        return a.same_facts(b);
    }
    // Search for a null-bijective homomorphism a → b whose image is all of
    // b. Since fact counts match and the map is injective on nulls (and
    // the identity on constants), image = b suffices for isomorphism.
    let atoms = instance_as_atoms(a);
    let mut found = false;
    let _ = for_each_hom(&atoms, b, &Assignment::new(), |h| {
        // Injective on nulls, mapping nulls to nulls?
        let mut images = std::collections::HashSet::new();
        let injective_on_nulls = a_nulls.iter().all(|n| match h.get(null_var(*n)) {
            Some(Value::Null(m)) => images.insert(m),
            _ => false,
        });
        if !injective_on_nulls {
            return ControlFlow::Continue(());
        }
        let img = a.map_values(|v| match v {
            Value::Null(n) => h.get(null_var(n)).expect("null bound"),
            c => c,
        });
        if img.same_facts(b) {
            found = true;
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    });
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Peer, Schema};
    use crate::tuple::Tuple;
    use std::sync::Arc;

    fn path_instance(edges: &[(&str, &str)]) -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.add_relation("E", 2, Peer::Source);
        let s = Arc::new(s);
        let mut i = Instance::new(s.clone());
        for (a, b) in edges {
            i.insert_consts("E", [*a, *b]);
        }
        (s, i)
    }

    #[test]
    fn finds_path_of_length_two() {
        let (s, i) = path_instance(&[("a", "b"), ("b", "c")]);
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
        ];
        let h = find_hom(&atoms, &i, &Assignment::new()).unwrap();
        assert_eq!(h.get(Var::new("x")), Some(Value::constant("a")));
        assert_eq!(h.get(Var::new("y")), Some(Value::constant("b")));
        assert_eq!(h.get(Var::new("z")), Some(Value::constant("c")));
    }

    #[test]
    fn no_hom_when_pattern_absent() {
        let (s, i) = path_instance(&[("a", "b"), ("c", "d")]);
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
        ];
        assert!(!exists_hom(&atoms, &i, &Assignment::new()));
    }

    #[test]
    fn repeated_variable_forces_equal_values() {
        let (s, i) = path_instance(&[("a", "b"), ("c", "c")]);
        let atoms = vec![Atom::vars(&s, "E", &["x", "x"])];
        let homs = all_homs(&atoms, &i, &Assignment::new());
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Var::new("x")), Some(Value::constant("c")));
    }

    #[test]
    fn partial_assignment_restricts_search() {
        let (s, i) = path_instance(&[("a", "b"), ("a", "c")]);
        let atoms = vec![Atom::vars(&s, "E", &["x", "y"])];
        let partial = Assignment::from_pairs([(Var::new("y"), Value::constant("c"))]);
        let homs = all_homs(&atoms, &i, &partial);
        assert_eq!(homs.len(), 1);
        assert_eq!(homs[0].get(Var::new("x")), Some(Value::constant("a")));
    }

    #[test]
    fn constants_in_atoms_must_match() {
        let (s, i) = path_instance(&[("a", "b")]);
        let e = s.rel_id("E").unwrap();
        let atom_ok = Atom::new(
            &s,
            e,
            vec![
                Term::Const(crate::symbol::Symbol::intern("a")),
                Term::Var(Var::new("y")),
            ],
        );
        let atom_bad = Atom::new(
            &s,
            e,
            vec![
                Term::Const(crate::symbol::Symbol::intern("zz")),
                Term::Var(Var::new("y")),
            ],
        );
        assert!(exists_hom(
            std::slice::from_ref(&atom_ok),
            &i,
            &Assignment::new()
        ));
        assert!(!exists_hom(
            std::slice::from_ref(&atom_bad),
            &i,
            &Assignment::new()
        ));
    }

    #[test]
    fn all_homs_counts_matches() {
        let (s, i) = path_instance(&[("a", "b"), ("b", "c"), ("c", "d")]);
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
        ];
        // paths of length 2: a-b-c, b-c-d
        assert_eq!(all_homs(&atoms, &i, &Assignment::new()).len(), 2);
    }

    #[test]
    fn config_variants_agree() {
        let (s, i) = path_instance(&[("a", "b"), ("b", "c"), ("c", "a"), ("b", "a")]);
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "x"]),
        ];
        let configs = [
            HomConfig {
                use_index: true,
                reorder_atoms: true,
            },
            HomConfig {
                use_index: false,
                reorder_atoms: true,
            },
            HomConfig {
                use_index: true,
                reorder_atoms: false,
            },
            HomConfig {
                use_index: false,
                reorder_atoms: false,
            },
        ];
        let mut counts = Vec::new();
        for c in configs {
            let mut n = 0usize;
            let _ = for_each_hom_with(&atoms, &i, &Assignment::new(), c, |_| {
                n += 1;
                ControlFlow::Continue(())
            });
            counts.push(n);
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 2); // (a,b)-(b,a) and (b,a)-(a,b)
    }

    #[test]
    fn instance_hom_maps_nulls() {
        let (s, ground) = path_instance(&[("a", "b"), ("b", "a")]);
        let mut pat = Instance::new(s.clone());
        let e = s.rel_id("E").unwrap();
        let n0 = Value::Null(NullId(0));
        let n1 = Value::Null(NullId(1));
        pat.insert(e, Tuple::new(vec![n0, n1]));
        pat.insert(e, Tuple::new(vec![n1, n0]));
        let h = instance_hom(&pat, &ground).unwrap();
        assert_eq!(h.len(), 2);
        // The map must send the 2-cycle onto the 2-cycle.
        let img0 = h[&NullId(0)];
        let img1 = h[&NullId(1)];
        assert!(ground.contains(e, &Tuple::new(vec![img0, img1])));
        assert!(ground.contains(e, &Tuple::new(vec![img1, img0])));
    }

    #[test]
    fn instance_hom_preserves_constants() {
        let (s, ground) = path_instance(&[("a", "b")]);
        let mut pat = Instance::new(s.clone());
        let e = s.rel_id("E").unwrap();
        pat.insert(e, Tuple::consts(["b", "a"]));
        assert!(!instance_hom_exists(&pat, &ground));
        let mut pat2 = Instance::new(s.clone());
        pat2.insert(e, Tuple::consts(["a", "b"]));
        assert!(instance_hom_exists(&pat2, &ground));
    }

    #[test]
    fn isomorphism_detects_null_renamings() {
        let (s, _) = path_instance(&[]);
        let a = crate::parser::parse_instance(&s, "E(?0, a). E(?0, ?1).").unwrap();
        let b = crate::parser::parse_instance(&s, "E(?7, a). E(?7, ?3).").unwrap();
        let c = crate::parser::parse_instance(&s, "E(?7, a). E(?3, ?3).").unwrap();
        assert!(instances_isomorphic(&a, &b));
        assert!(!instances_isomorphic(&a, &c));
        assert!(instances_isomorphic(&a, &a));
    }

    #[test]
    fn isomorphism_on_ground_instances_is_equality() {
        let (_, x) = path_instance(&[("a", "b")]);
        let (_, y) = path_instance(&[("a", "b")]);
        let (_, z) = path_instance(&[("b", "a")]);
        assert!(instances_isomorphic(&x, &y));
        assert!(!instances_isomorphic(&x, &z));
    }

    #[test]
    fn isomorphism_rejects_non_bijective_foldings() {
        let (s, _) = path_instance(&[]);
        // a has two distinct nulls; b collapses them: hom exists a→b, but
        // no bijection.
        let a = crate::parser::parse_instance(&s, "E(?0, x). E(?1, x).").unwrap();
        let b = crate::parser::parse_instance(&s, "E(?5, x).").unwrap();
        assert!(instance_hom_exists(&a, &b));
        assert!(!instances_isomorphic(&a, &b));
    }

    #[test]
    fn empty_conjunction_has_the_empty_hom() {
        let (_, i) = path_instance(&[]);
        let homs = all_homs(&[], &i, &Assignment::new());
        assert_eq!(homs.len(), 1);
        assert!(homs[0].is_empty());
    }

    fn count_seminaive(atoms: &[Atom], i: &Instance, lo: u64, hi: u64) -> usize {
        let mut n = 0usize;
        let _ = for_each_hom_seminaive(
            atoms,
            i,
            &Assignment::new(),
            HomConfig::default(),
            lo,
            hi,
            |_| {
                n += 1;
                ControlFlow::Continue(())
            },
        );
        n
    }

    #[test]
    fn seminaive_mode_partitions_homs_by_pivot_epoch() {
        let (s, mut i) = path_instance(&[("a", "b"), ("b", "c")]);
        let e1 = i.bump_epoch();
        i.insert_consts("E", ["c", "d"]);
        i.insert_consts("E", ["d", "d"]); // self-loop: both atoms hit one delta fact
        let e2 = i.bump_epoch();
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
        ];
        // All homs: a-b-c, b-c-d, c-d-d, d-d-d.
        assert_eq!(all_homs(&atoms, &i, &Assignment::new()).len(), 4);
        // Old-only window reproduces the epoch-0 homs.
        assert_eq!(count_seminaive(&atoms, &i, 0, e1), 1);
        // Delta window: exactly the homs touching an epoch-1 fact, each
        // once — including d-d-d, where both atoms match the same delta row.
        assert_eq!(count_seminaive(&atoms, &i, e1, e2), 3);
        // The two windows partition the full enumeration.
        assert_eq!(count_seminaive(&atoms, &i, 0, e2), 4);
        // Facts at or above the high bound are invisible.
        assert_eq!(count_seminaive(&atoms, &i, e2, u64::MAX), 0);
    }

    #[test]
    fn seminaive_mode_ignores_the_empty_conjunction() {
        let (_, i) = path_instance(&[("a", "b")]);
        assert_eq!(count_seminaive(&[], &i, 0, u64::MAX), 0);
    }

    #[test]
    fn seminaive_configs_agree() {
        let (s, mut i) = path_instance(&[("a", "b"), ("b", "c"), ("b", "a")]);
        let e1 = i.bump_epoch();
        i.insert_consts("E", ["c", "a"]);
        let e2 = i.bump_epoch();
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
        ];
        let mut counts = Vec::new();
        for use_index in [true, false] {
            for reorder_atoms in [true, false] {
                let c = HomConfig {
                    use_index,
                    reorder_atoms,
                };
                let mut n = 0usize;
                let _ = for_each_hom_seminaive(&atoms, &i, &Assignment::new(), c, e1, e2, |_| {
                    n += 1;
                    ControlFlow::Continue(())
                });
                counts.push(n);
            }
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
        assert_eq!(counts[0], 2); // b-c-a and c-a-b touch the delta edge c-a
    }

    #[test]
    fn ordering_prefers_connected_atoms_over_small_disconnected_ones() {
        // A tiny disconnected relation next to a selective connected one:
        // the search must still find the right answers (counts are
        // config-independent; this guards the lexicographic pick).
        let mut s = Schema::new();
        s.add_relation("E", 2, Peer::Source);
        s.add_relation("T", 1, Peer::Source);
        let s = Arc::new(s);
        let mut i = Instance::new(s.clone());
        for k in 0..20 {
            i.insert_consts("E", [format!("v{k}"), format!("v{}", k + 1)]);
        }
        i.insert_consts("T", ["t0"]);
        i.insert_consts("T", ["t1"]);
        let atoms = vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
            Atom::vars(&s, "T", &["u"]),
        ];
        for c in [
            HomConfig::default(),
            HomConfig {
                use_index: true,
                reorder_atoms: false,
            },
        ] {
            let mut n = 0usize;
            let _ = for_each_hom_with(&atoms, &i, &Assignment::new(), c, |_| {
                n += 1;
                ControlFlow::Continue(())
            });
            assert_eq!(n, 19 * 2); // 19 length-2 paths × 2 T-values
        }
    }
}
