//! Flat open-addressed storage primitives behind the columnar
//! [`crate::relation::Relation`].
//!
//! Three pieces live here, all keyed by raw packed words rather than by
//! hashing two-word `Value` enums through SipHash:
//!
//! * [`IdMap`] — a linear-probing `u32 → u32` map with the all-ones key
//!   reserved as the empty sentinel (packed [`ValueId`]s never produce it).
//! * [`ColumnIndex`] — one per attribute: `ValueId → row-id list`, with
//!   single-row postings *inlined* into the map payload (most columns are
//!   nearly unique, so the common case costs 8 bytes per distinct value and
//!   one probe per lookup) and multi-row postings spilled to shared bucket
//!   storage with per-bucket dead counters and half-dead compaction.
//! * [`RowSet`] — the membership/dedup set over live rows, storing row ids
//!   open-addressed under a content hash of the row's packed ids; equality
//!   is delegated to the caller, which compares columns directly.
//!
//! There is also [`FxBuildHasher`], a multiply-rotate hasher for the
//! crate-internal hash maps that sit on hot paths (variable assignments,
//! union-find parents), where SipHash's per-lookup cost is measurable.
//!
//! None of these structures support key deletion; garbage is bounded by the
//! relation-level full rebuild that triggers once tombstones outnumber live
//! rows (see `relation.rs`).

use crate::value::ValueId;

/// Empty-slot sentinel for [`IdMap`] keys and [`RowSet`] slots. Reserved:
/// packed value ids and row ids never reach it.
const EMPTY: u32 = u32::MAX;

/// Deleted-slot sentinel for [`RowSet`] (row ids are bounded below it by
/// the relation overflow check).
const TOMB: u32 = u32::MAX - 1;

/// Mix a 32-bit key so the masked low bits of the product vary with every
/// input bit (plain multiplicative hashing mixes poorly downward).
fn hash32(k: u32) -> usize {
    let h = k.wrapping_mul(0x9E37_79B9);
    (h ^ (h >> 16)) as usize
}

/// Low bits of a 64-bit content hash as a table offset. Tables stay far
/// below 2^32 slots, so the truncation only discards bits the mask would.
#[allow(clippy::cast_possible_truncation)]
fn slot_of(hash: u64) -> usize {
    hash as usize
}

/// FNV-1a over a stream of packed ids — the row content hash used by
/// [`RowSet`]. Word-at-a-time keeps it cheap for the short rows of a
/// relational instance.
pub(crate) fn hash_ids(ids: impl Iterator<Item = ValueId>) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for id in ids {
        h = (h ^ u64::from(id.raw())).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Linear-probing `u32 → u32` map with power-of-two capacity and no
/// deletion. The all-ones key is the empty sentinel.
#[derive(Clone, Debug, Default)]
pub(crate) struct IdMap {
    keys: Vec<u32>,
    vals: Vec<u32>,
    len: usize,
}

impl IdMap {
    /// Slot holding `key`, or the empty slot where it would be inserted.
    /// Requires a non-empty table.
    fn probe(&self, key: u32) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = hash32(key) & mask;
        loop {
            let k = self.keys[i];
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// The value stored under `key`.
    pub fn get(&self, key: u32) -> Option<u32> {
        if self.keys.is_empty() {
            return None;
        }
        let i = self.probe(key);
        (self.keys[i] == key).then(|| self.vals[i])
    }

    /// Insert or overwrite; returns the previous value if the key existed.
    pub fn set(&mut self, key: u32, val: u32) -> Option<u32> {
        debug_assert_ne!(key, EMPTY, "reserved sentinel used as a key");
        if self.keys.len() < 2 * (self.len + 1) {
            self.grow();
        }
        let i = self.probe(key);
        if self.keys[i] == key {
            return Some(std::mem::replace(&mut self.vals[i], val));
        }
        self.keys[i] = key;
        self.vals[i] = val;
        self.len += 1;
        None
    }

    /// Double the table (or allocate the first 8 slots) and rehash.
    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(8);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = vec![0; cap];
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let i = self.probe(k);
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }

    /// Allocated slot count.
    pub fn capacity(&self) -> usize {
        self.keys.len()
    }

    /// Iterate over `(key, value)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.keys
            .iter()
            .zip(&self.vals)
            .filter(|(k, _)| **k != EMPTY)
            .map(|(k, v)| (*k, *v))
    }
}

/// Payload tag for [`ColumnIndex`] map values: bit 31 set means the low 31
/// bits are a single inlined row id; clear means they index into `spill`.
const INLINE: u32 = 1 << 31;
/// An inlined posting whose only row has died and been reclaimed.
const INLINE_TOMB: u32 = u32::MAX;
/// Largest row id that can be inlined (bigger ones always spill).
const INLINE_MAX_ROW: u32 = INLINE - 2;

/// A spilled multi-row posting list with its dead counter.
#[derive(Clone, Debug, Default)]
struct Bucket {
    rows: Vec<u32>,
    dead: u32,
}

/// Iterator over the row ids of one posting list.
pub(crate) enum Rows<'a> {
    /// No posting for the key.
    None,
    /// A single inlined row.
    One(u32),
    /// A spilled bucket.
    Many(std::slice::Iter<'a, u32>),
}

impl Iterator for Rows<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        match self {
            Rows::None => None,
            Rows::One(r) => {
                let r = *r;
                *self = Rows::None;
                Some(r)
            }
            Rows::Many(it) => it.next().copied(),
        }
    }
}

/// Per-attribute index: `ValueId → row ids carrying it at this position`.
///
/// Single-row postings are inlined into the [`IdMap`] payload; multi-row
/// postings live in `spill`, whose slots are recycled through a free list
/// when half-dead compaction empties a bucket. Keys are never removed —
/// a key whose rows all died is left as a tombstoned posting and reclaimed
/// only by the relation-level full rebuild.
#[derive(Clone, Debug, Default)]
pub(crate) struct ColumnIndex {
    map: IdMap,
    spill: Vec<Bucket>,
    free: Vec<u32>,
    /// Row ids stored across all postings, dead ones included (mirrors the
    /// relation's incremental `index_entries` accounting).
    entries: usize,
}

impl ColumnIndex {
    /// Record that `row` carries `id` at this attribute. O(1) amortized.
    pub fn insert(&mut self, id: ValueId, row: u32) {
        self.entries += 1;
        let key = id.raw();
        let Some(cur) = self.map.get(key) else {
            if row <= INLINE_MAX_ROW {
                self.map.set(key, INLINE | row);
            } else {
                let slot = self.new_bucket(vec![row]);
                self.map.set(key, slot);
            }
            return;
        };
        if cur == INLINE_TOMB {
            self.map.set(key, INLINE | row);
        } else if cur & INLINE != 0 {
            let slot = self.new_bucket(vec![cur & !INLINE, row]);
            self.map.set(key, slot);
        } else {
            self.spill[cur as usize].rows.push(row);
        }
    }

    /// Allocate a spill bucket (reusing a freed slot when available).
    fn new_bucket(&mut self, rows: Vec<u32>) -> u32 {
        if let Some(slot) = self.free.pop() {
            self.spill[slot as usize] = Bucket { rows, dead: 0 };
            slot
        } else {
            let slot = u32::try_from(self.spill.len()).expect("index spill overflow");
            assert!(slot & INLINE == 0, "index spill overflow");
            self.spill.push(Bucket { rows, dead: 0 });
            slot
        }
    }

    /// The posting list for `id`, dead rows included.
    pub fn rows(&self, id: ValueId) -> Rows<'_> {
        match self.map.get(id.raw()) {
            None | Some(INLINE_TOMB) => Rows::None,
            Some(v) if v & INLINE != 0 => Rows::One(v & !INLINE),
            Some(v) => Rows::Many(self.spill[v as usize].rows.iter()),
        }
    }

    /// Exact number of live rows carrying `id`, given a liveness oracle
    /// (only consulted for inlined postings; spilled buckets keep exact
    /// dead counters). O(1).
    pub fn count_live(&self, id: ValueId, is_live: impl Fn(u32) -> bool) -> usize {
        match self.map.get(id.raw()) {
            None | Some(INLINE_TOMB) => 0,
            Some(v) if v & INLINE != 0 => usize::from(is_live(v & !INLINE)),
            Some(v) => {
                let b = &self.spill[v as usize];
                b.rows.len() - b.dead as usize
            }
        }
    }

    /// Record that `row` (carrying `id` here) was tombstoned. An inlined
    /// posting is reclaimed immediately; a spilled bucket bumps its dead
    /// counter and compacts once half its rows are dead (emptied buckets
    /// return to the free list). Returns how many stored entries were
    /// dropped, for the relation's `index_entries` accounting.
    pub fn mark_dead(&mut self, id: ValueId, row: u32, is_live: impl Fn(u32) -> bool) -> usize {
        let key = id.raw();
        let Some(cur) = self.map.get(key) else {
            return 0;
        };
        if cur & INLINE != 0 {
            if cur != INLINE_TOMB && (cur & !INLINE) == row {
                self.map.set(key, INLINE_TOMB);
                self.entries -= 1;
                return 1;
            }
            return 0;
        }
        let b = &mut self.spill[cur as usize];
        b.dead += 1;
        if 2 * (b.dead as usize) < b.rows.len() {
            return 0;
        }
        let before = b.rows.len();
        b.rows.retain(|r| is_live(*r));
        b.dead = 0;
        let dropped = before - b.rows.len();
        self.entries -= dropped;
        if b.rows.is_empty() {
            b.rows = Vec::new();
            self.map.set(key, INLINE_TOMB);
            self.free.push(cur);
        }
        dropped
    }

    /// Total stored entries including dead ones (incremental counter).
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// Recount stored entries from the structure itself (diagnostics; the
    /// relation's consistency assertions compare this to `entry_count`).
    pub fn recount_entries(&self) -> usize {
        self.map
            .iter()
            .map(|(_, v)| {
                if v == INLINE_TOMB {
                    0
                } else if v & INLINE != 0 {
                    1
                } else {
                    self.spill[v as usize].rows.len()
                }
            })
            .sum()
    }

    /// Heap bytes: map slots, spill bucket headers, and stored row ids with
    /// a factor-two slack covering the posting vectors' growth headroom.
    /// O(1) — this feeds the per-round governor charge.
    pub fn heap_bytes(&self) -> usize {
        self.map.capacity() * 8
            + self.spill.capacity() * std::mem::size_of::<Bucket>()
            + self.entries * 8
    }

    /// [`ColumnIndex::heap_bytes`] computed from a from-scratch entry
    /// recount instead of the incremental counter (drift diagnostics).
    pub fn recount_heap_bytes(&self) -> usize {
        self.map.capacity() * 8
            + self.spill.capacity() * std::mem::size_of::<Bucket>()
            + self.recount_entries() * 8
    }
}

/// Open-addressed membership set over live rows, keyed by a content hash of
/// each row's packed ids. Stores only row ids — equality and (re)hashing of
/// stored rows are delegated to caller closures reading the columns, so the
/// per-fact cost is four bytes plus load-factor slack.
#[derive(Clone, Debug, Default)]
pub(crate) struct RowSet {
    slots: Vec<u32>,
    len: usize,
    tombs: usize,
}

impl RowSet {
    /// The stored row equal (per `eq`) to the probe key hashing to `hash`.
    pub fn find(&self, hash: u64, eq: impl Fn(u32) -> bool) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut i = slot_of(hash) & mask;
        loop {
            match self.slots[i] {
                EMPTY => return None,
                TOMB => {}
                r => {
                    if eq(r) {
                        return Some(r);
                    }
                }
            }
            i = (i + 1) & mask;
        }
    }

    /// Insert `row` (known absent) under `hash`; `hash_of` recomputes the
    /// hash of a stored row when the table grows.
    pub fn insert(&mut self, hash: u64, row: u32, hash_of: impl Fn(u32) -> u64) {
        debug_assert!(row < TOMB, "row id collides with a reserved sentinel");
        if 8 * (self.len + self.tombs + 1) > 7 * self.slots.len() {
            self.grow(&hash_of);
        }
        let mask = self.slots.len() - 1;
        let mut i = slot_of(hash) & mask;
        while self.slots[i] != EMPTY && self.slots[i] != TOMB {
            i = (i + 1) & mask;
        }
        if self.slots[i] == TOMB {
            self.tombs -= 1;
        }
        self.slots[i] = row;
        self.len += 1;
    }

    /// Remove `row` stored under `hash`; returns whether it was present.
    pub fn remove(&mut self, hash: u64, row: u32) -> bool {
        if self.slots.is_empty() {
            return false;
        }
        let mask = self.slots.len() - 1;
        let mut i = slot_of(hash) & mask;
        loop {
            match self.slots[i] {
                EMPTY => return false,
                r if r == row => {
                    self.slots[i] = TOMB;
                    self.len -= 1;
                    self.tombs += 1;
                    return true;
                }
                _ => {}
            }
            i = (i + 1) & mask;
        }
    }

    /// Rehash into a table sized for the live entries (doubling when the
    /// load is real, merely clearing tombstones when it is churn).
    fn grow(&mut self, hash_of: impl Fn(u32) -> u64) {
        let cap = if 4 * (self.len + 1) >= 3 * self.slots.len() {
            (self.slots.len() * 2).max(8)
        } else {
            self.slots.len()
        };
        let old = std::mem::replace(&mut self.slots, vec![EMPTY; cap]);
        self.tombs = 0;
        let mask = cap - 1;
        for r in old {
            if r == EMPTY || r == TOMB {
                continue;
            }
            let mut i = slot_of(hash_of(r)) & mask;
            while self.slots[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.slots[i] = r;
        }
    }

    /// Number of stored rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Heap bytes of the slot table. O(1).
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * 4
    }
}

/// A fast, non-cryptographic hasher (FxHash-style multiply-rotate) for
/// hash maps on hot paths: variable assignments in the homomorphism
/// search, union-find parent pointers, and the solvers' determined-fact
/// refcounts. Not DoS-resistant — use only on keys derived from interned
/// ids. Re-exported at the crate root for downstream hot paths.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher(u64);

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl std::hash::Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    fn write_u8(&mut self, n: u8) {
        self.add(u64::from(n));
    }

    fn write_u32(&mut self, n: u32) {
        self.add(u64::from(n));
    }

    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = std::hash::BuildHasherDefault<FxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NullId, Value};

    fn vid(i: u32) -> ValueId {
        ValueId::pack(Value::Null(NullId(i)))
    }

    #[test]
    fn idmap_set_get_grow() {
        let mut m = IdMap::default();
        assert_eq!(m.get(7), None);
        for k in 0..1000u32 {
            assert_eq!(m.set(k, k * 2), None);
        }
        for k in 0..1000u32 {
            assert_eq!(m.get(k), Some(k * 2));
        }
        assert_eq!(m.set(5, 99), Some(10));
        assert_eq!(m.get(5), Some(99));
        assert_eq!(m.len, 1000);
        assert!(m.capacity().is_power_of_two());
        assert_eq!(m.iter().count(), 1000);
    }

    #[test]
    fn column_index_inlines_singletons_and_spills_duplicates() {
        let mut ix = ColumnIndex::default();
        ix.insert(vid(1), 10);
        assert_eq!(ix.rows(vid(1)).collect::<Vec<_>>(), vec![10]);
        assert_eq!(ix.count_live(vid(1), |_| true), 1);
        // Second row with the same value spills, preserving order.
        ix.insert(vid(1), 11);
        ix.insert(vid(1), 12);
        assert_eq!(ix.rows(vid(1)).collect::<Vec<_>>(), vec![10, 11, 12]);
        assert_eq!(ix.entry_count(), 3);
        assert_eq!(ix.recount_entries(), 3);
        assert_eq!(ix.rows(vid(9)).count(), 0);
    }

    #[test]
    fn column_index_reclaims_dead_postings() {
        let mut ix = ColumnIndex::default();
        ix.insert(vid(1), 0);
        assert_eq!(ix.mark_dead(vid(1), 0, |_| false), 1);
        assert_eq!(ix.rows(vid(1)).count(), 0);
        assert_eq!(ix.count_live(vid(1), |_| true), 0);
        // The tombstoned posting accepts a fresh row again.
        ix.insert(vid(1), 5);
        assert_eq!(ix.rows(vid(1)).collect::<Vec<_>>(), vec![5]);
        assert_eq!(ix.entry_count(), 1);
        assert_eq!(ix.recount_entries(), 1);
    }

    #[test]
    fn column_index_compacts_half_dead_buckets() {
        let mut ix = ColumnIndex::default();
        for r in 0..8 {
            ix.insert(vid(1), r);
        }
        // Kill rows 0..4; liveness says only 4.. are alive.
        let mut dropped = 0;
        for r in 0..4 {
            dropped += ix.mark_dead(vid(1), r, |x| x >= 4);
        }
        assert!(dropped >= 4, "{dropped}");
        assert_eq!(ix.rows(vid(1)).filter(|r| *r >= 4).count(), 4);
        assert_eq!(ix.entry_count(), ix.recount_entries());
    }

    #[test]
    fn rowset_insert_find_remove() {
        // Key rows by a toy content function: hash of the row id's value.
        let h = |r: u32| hash_ids(std::iter::once(vid(r)));
        let mut s = RowSet::default();
        for r in 0..500 {
            assert!(s.find(h(r), |x| x == r).is_none());
            s.insert(h(r), r, h);
        }
        assert_eq!(s.len(), 500);
        for r in 0..500 {
            assert_eq!(s.find(h(r), |x| x == r), Some(r));
        }
        for r in 0..250 {
            assert!(s.remove(h(r), r));
            assert!(!s.remove(h(r), r));
        }
        assert_eq!(s.len(), 250);
        // Churn through tombstones: the table rehashes rather than filling.
        for r in 1000..4000 {
            s.insert(h(r), r, h);
            assert!(s.remove(h(r), r));
        }
        assert_eq!(s.len(), 250);
        assert_eq!(s.find(h(250), |x| x == 250), Some(250));
    }

    #[test]
    fn hash_ids_depends_on_order_and_content() {
        let a = hash_ids([vid(1), vid(2)].into_iter());
        let b = hash_ids([vid(2), vid(1)].into_iter());
        let c = hash_ids([vid(1), vid(2)].into_iter());
        assert_eq!(a, c);
        assert_ne!(a, b);
    }
}
