//! Conjunctive queries and unions of conjunctive queries.
//!
//! Certain answers in peer data exchange are defined for queries over the
//! target schema (paper Def. 4); the coNP upper bound (Theorem 2) holds for
//! all *monotone* queries. CQs and UCQs are monotone by construction, which
//! the evaluation here relies on: answers only ever grow as facts are added.

use crate::atom::{Atom, Var};
use crate::hom::{for_each_hom, Assignment};
use crate::instance::Instance;
use crate::schema::{Peer, Schema};
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

/// A conjunctive query `q(x̄) :- body`.
#[derive(Clone, PartialEq, Eq)]
pub struct ConjunctiveQuery {
    /// Head (answer) variables; empty for a Boolean query.
    pub head: Vec<Var>,
    /// The body atoms.
    pub body: Vec<Atom>,
}

impl ConjunctiveQuery {
    /// Build a query, checking safety: every head variable must occur in
    /// the body.
    ///
    /// # Panics
    /// Panics when a head variable does not occur in the body.
    pub fn new(head: Vec<Var>, body: Vec<Atom>) -> ConjunctiveQuery {
        let body_vars: BTreeSet<Var> = body.iter().flat_map(Atom::variables).collect();
        for v in &head {
            assert!(
                body_vars.contains(v),
                "unsafe query: head variable {v} not in body"
            );
        }
        ConjunctiveQuery { head, body }
    }

    /// A Boolean (closed) query.
    pub fn boolean(body: Vec<Atom>) -> ConjunctiveQuery {
        ConjunctiveQuery::new(Vec::new(), body)
    }

    /// Is this a Boolean query?
    pub fn is_boolean(&self) -> bool {
        self.head.is_empty()
    }

    /// Does every body atom mention only relations of `peer`?
    pub fn over_peer(&self, schema: &Schema, peer: Peer) -> bool {
        self.body.iter().all(|a| schema.peer(a.rel) == peer)
    }

    /// Evaluate over `inst`: the set of head-variable images, including
    /// answers that contain labeled nulls (callers computing certain answers
    /// typically filter to ground answers).
    pub fn eval(&self, inst: &Instance) -> BTreeSet<Vec<Value>> {
        let mut out = BTreeSet::new();
        let _ = for_each_hom(&self.body, inst, &Assignment::new(), |h| {
            let row: Vec<Value> = self
                .head
                .iter()
                .map(|v| h.get(*v).expect("safe query: head var bound"))
                .collect();
            out.insert(row);
            ControlFlow::Continue(())
        });
        out
    }

    /// Evaluate a Boolean query.
    pub fn eval_bool(&self, inst: &Instance) -> bool {
        debug_assert!(self.is_boolean());
        crate::hom::exists_hom(&self.body, inst, &Assignment::new())
    }

    /// Does the fixed tuple `t` belong to `q(inst)`?
    pub fn contains_answer(&self, inst: &Instance, t: &[Value]) -> bool {
        if t.len() != self.head.len() {
            return false;
        }
        // Seed the search with the head binding; conflicting repeated head
        // variables are rejected up front.
        let mut partial = Assignment::new();
        for (v, val) in self.head.iter().zip(t) {
            match partial.get(*v) {
                Some(prev) if prev != *val => return false,
                _ => partial.bind(*v, *val),
            }
        }
        crate::hom::exists_hom(&self.body, inst, &partial)
    }

    /// The canonical ("frozen") instance of this query: head variables
    /// become reserved constants, other variables become labeled nulls,
    /// and every body atom becomes a fact. Returns the instance and the
    /// frozen head tuple. This is the classical tableau used for
    /// containment and minimization.
    fn freeze(&self, schema: &Arc<Schema>) -> (Instance, Vec<Value>) {
        use crate::value::NullId;
        let mut inst = Instance::new(schema.clone());
        let mut var_value: std::collections::HashMap<Var, Value> = std::collections::HashMap::new();
        for (i, v) in self.head.iter().enumerate() {
            var_value
                .entry(*v)
                .or_insert_with(|| Value::constant(format!("__pde_frozen_{i}")));
        }
        let mut next_null = 0u32;
        for atom in &self.body {
            let vals: Vec<Value> = atom
                .terms
                .iter()
                .map(|t| match t {
                    crate::atom::Term::Const(c) => Value::Const(*c),
                    crate::atom::Term::Var(v) => *var_value.entry(*v).or_insert_with(|| {
                        let n = NullId(next_null);
                        next_null += 1;
                        Value::Null(n)
                    }),
                })
                .collect();
            inst.insert(atom.rel, crate::tuple::Tuple::new(vals));
        }
        let head: Vec<Value> = self.head.iter().map(|v| var_value[v]).collect();
        (inst, head)
    }

    /// Is this query contained in `other` (`q ⊆ q'`: every answer of `q`
    /// on every instance is an answer of `q'`)? Chandra–Merlin: `q ⊆ q'`
    /// iff the frozen head of `q` is an answer of `q'` on `q`'s canonical
    /// instance. Queries must share head arity and a schema.
    pub fn contained_in(&self, other: &ConjunctiveQuery, schema: &Arc<Schema>) -> bool {
        if self.head.len() != other.head.len() {
            return false;
        }
        let (canonical, frozen_head) = self.freeze(schema);
        other.contains_answer(&canonical, &frozen_head)
    }

    /// Are the two queries equivalent?
    pub fn equivalent_to(&self, other: &ConjunctiveQuery, schema: &Arc<Schema>) -> bool {
        self.contained_in(other, schema) && other.contained_in(self, schema)
    }

    /// Minimize this query: the core of its canonical instance, read back
    /// as a body (Chandra–Merlin minimization). The result is equivalent
    /// to `self` and has a minimal number of atoms.
    pub fn minimize(&self, schema: &Arc<Schema>) -> ConjunctiveQuery {
        let (canonical, _) = self.freeze(schema);
        let cored = crate::retract::core_of(&canonical);
        // Read facts back as atoms: frozen constants → head variables,
        // nulls → fresh variables, other constants stay.
        let frozen_of = |v: Value| -> Option<Var> {
            let Value::Const(c) = v else { return None };
            let name = c.as_str();
            let idx: usize = name.strip_prefix("__pde_frozen_")?.parse().ok()?;
            Some(self.head[idx])
        };
        let body: Vec<Atom> = cored
            .facts()
            .map(|(rel, t)| Atom {
                rel,
                terms: t
                    .values()
                    .iter()
                    .map(|v| match v {
                        Value::Null(n) => crate::atom::Term::Var(Var::new(format!("m{}", n.0))),
                        Value::Const(_) => match frozen_of(*v) {
                            Some(hv) => crate::atom::Term::Var(hv),
                            None => crate::atom::Term::Const(v.as_const().expect("const")),
                        },
                    })
                    .collect(),
            })
            .collect();
        ConjunctiveQuery::new(self.head.clone(), body)
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a ConjunctiveQuery, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "q(")?;
                for (i, v) in self.0.head.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ") :- ")?;
                for (i, a) in self.0.body.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{:?} :- ", self.head)?;
        for (i, a) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a:?}")?;
        }
        Ok(())
    }
}

/// A union of conjunctive queries, all with the same head arity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnionQuery {
    /// The disjuncts.
    pub disjuncts: Vec<ConjunctiveQuery>,
}

impl UnionQuery {
    /// Build a union; all disjuncts must share the head arity.
    ///
    /// # Panics
    /// Panics on empty unions or mixed arities.
    pub fn new(disjuncts: Vec<ConjunctiveQuery>) -> UnionQuery {
        assert!(!disjuncts.is_empty(), "empty union query");
        let arity = disjuncts[0].head.len();
        assert!(
            disjuncts.iter().all(|q| q.head.len() == arity),
            "mixed arities in union query"
        );
        UnionQuery { disjuncts }
    }

    /// Head arity.
    pub fn arity(&self) -> usize {
        self.disjuncts[0].head.len()
    }

    /// Is this a Boolean UCQ?
    pub fn is_boolean(&self) -> bool {
        self.arity() == 0
    }

    /// Evaluate: union of the disjuncts' answers.
    pub fn eval(&self, inst: &Instance) -> BTreeSet<Vec<Value>> {
        let mut out = BTreeSet::new();
        for q in &self.disjuncts {
            out.extend(q.eval(inst));
        }
        out
    }

    /// Evaluate as a Boolean query.
    pub fn eval_bool(&self, inst: &Instance) -> bool {
        self.disjuncts.iter().any(|q| q.eval_bool(inst))
    }

    /// Does `t` belong to the union's answers?
    pub fn contains_answer(&self, inst: &Instance, t: &[Value]) -> bool {
        self.disjuncts.iter().any(|q| q.contains_answer(inst, t))
    }
}

impl From<ConjunctiveQuery> for UnionQuery {
    fn from(q: ConjunctiveQuery) -> UnionQuery {
        UnionQuery::new(vec![q])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Schema;
    use std::sync::Arc;

    fn setup() -> (Arc<Schema>, Instance) {
        let mut s = Schema::new();
        s.target("H", 2);
        let s = Arc::new(s);
        let mut j = Instance::new(s.clone());
        j.insert_consts("H", ["a", "b"]);
        j.insert_consts("H", ["b", "c"]);
        (s, j)
    }

    #[test]
    fn eval_binary_query() {
        let (s, j) = setup();
        let q = ConjunctiveQuery::new(
            vec![Var::new("x"), Var::new("z")],
            vec![
                Atom::vars(&s, "H", &["x", "y"]),
                Atom::vars(&s, "H", &["y", "z"]),
            ],
        );
        let ans = q.eval(&j);
        assert_eq!(ans.len(), 1);
        assert!(ans.contains(&vec![Value::constant("a"), Value::constant("c")]));
        assert!(q.contains_answer(&j, &[Value::constant("a"), Value::constant("c")]));
        assert!(!q.contains_answer(&j, &[Value::constant("a"), Value::constant("b")]));
    }

    #[test]
    fn boolean_query() {
        let (s, j) = setup();
        let q = ConjunctiveQuery::boolean(vec![
            Atom::vars(&s, "H", &["x", "y"]),
            Atom::vars(&s, "H", &["y", "x"]),
        ]);
        assert!(q.is_boolean());
        assert!(!q.eval_bool(&j));
        let mut j2 = j.clone();
        j2.insert_consts("H", ["b", "a"]);
        assert!(q.eval_bool(&j2));
    }

    #[test]
    #[should_panic(expected = "unsafe query")]
    fn unsafe_head_rejected() {
        let (s, _) = setup();
        ConjunctiveQuery::new(vec![Var::new("w")], vec![Atom::vars(&s, "H", &["x", "y"])]);
    }

    #[test]
    fn monotone_under_fact_addition() {
        let (s, j) = setup();
        let q = ConjunctiveQuery::new(vec![Var::new("x")], vec![Atom::vars(&s, "H", &["x", "y"])]);
        let before = q.eval(&j);
        let mut bigger = j.clone();
        bigger.insert_consts("H", ["z", "w"]);
        let after = q.eval(&bigger);
        assert!(before.is_subset(&after));
        assert!(after.len() > before.len());
    }

    #[test]
    fn union_query_unions_answers() {
        let (s, j) = setup();
        let q1 = ConjunctiveQuery::new(vec![Var::new("x")], vec![Atom::vars(&s, "H", &["x", "y"])]);
        let q2 = ConjunctiveQuery::new(vec![Var::new("y")], vec![Atom::vars(&s, "H", &["x", "y"])]);
        let u = UnionQuery::new(vec![q1, q2]);
        let ans = u.eval(&j);
        // sources {a,b} ∪ sinks {b,c}
        assert_eq!(ans.len(), 3);
        assert!(u.contains_answer(&j, &[Value::constant("c")]));
    }

    #[test]
    #[should_panic(expected = "mixed arities")]
    fn union_arity_mismatch_rejected() {
        let (s, _) = setup();
        let q1 = ConjunctiveQuery::boolean(vec![Atom::vars(&s, "H", &["x", "y"])]);
        let q2 = ConjunctiveQuery::new(vec![Var::new("x")], vec![Atom::vars(&s, "H", &["x", "y"])]);
        UnionQuery::new(vec![q1, q2]);
    }

    #[test]
    fn containment_classic_examples() {
        let mut s = Schema::new();
        s.target("H", 2);
        let s = Arc::new(s);
        // q1(x) :- H(x,y), H(y,z)   (2-path from x)
        // q2(x) :- H(x,y)           (1-step from x)
        let q1 = ConjunctiveQuery::new(
            vec![Var::new("x")],
            vec![
                Atom::vars(&s, "H", &["x", "y"]),
                Atom::vars(&s, "H", &["y", "z"]),
            ],
        );
        let q2 = ConjunctiveQuery::new(vec![Var::new("x")], vec![Atom::vars(&s, "H", &["x", "y"])]);
        // Having a 2-path implies having a 1-step, not vice versa.
        assert!(q1.contained_in(&q2, &s));
        assert!(!q2.contained_in(&q1, &s));
        assert!(!q1.equivalent_to(&q2, &s));
        // Self containment.
        assert!(q1.contained_in(&q1, &s));
    }

    #[test]
    fn containment_detects_equivalence_up_to_renaming() {
        let mut s = Schema::new();
        s.target("H", 2);
        let s = Arc::new(s);
        let q1 = ConjunctiveQuery::new(vec![Var::new("x")], vec![Atom::vars(&s, "H", &["x", "y"])]);
        let q2 = ConjunctiveQuery::new(vec![Var::new("a")], vec![Atom::vars(&s, "H", &["a", "b"])]);
        assert!(q1.equivalent_to(&q2, &s));
    }

    #[test]
    fn minimize_removes_redundant_atoms() {
        let mut s = Schema::new();
        s.target("H", 2);
        let s = Arc::new(s);
        // q(x) :- H(x,y), H(x,z): the second atom is redundant.
        let q = ConjunctiveQuery::new(
            vec![Var::new("x")],
            vec![
                Atom::vars(&s, "H", &["x", "y"]),
                Atom::vars(&s, "H", &["x", "z"]),
            ],
        );
        let m = q.minimize(&s);
        assert_eq!(m.body.len(), 1);
        assert!(m.equivalent_to(&q, &s));
    }

    #[test]
    fn minimize_keeps_necessary_atoms() {
        let mut s = Schema::new();
        s.target("H", 2);
        let s = Arc::new(s);
        // q(x, z) :- H(x,y), H(y,z): both atoms needed.
        let q = ConjunctiveQuery::new(
            vec![Var::new("x"), Var::new("z")],
            vec![
                Atom::vars(&s, "H", &["x", "y"]),
                Atom::vars(&s, "H", &["y", "z"]),
            ],
        );
        let m = q.minimize(&s);
        assert_eq!(m.body.len(), 2);
        assert!(m.equivalent_to(&q, &s));
    }

    #[test]
    fn boolean_query_containment() {
        let mut s = Schema::new();
        s.target("H", 2);
        let s = Arc::new(s);
        let loopq = ConjunctiveQuery::boolean(vec![Atom::vars(&s, "H", &["x", "x"])]);
        let edgeq = ConjunctiveQuery::boolean(vec![Atom::vars(&s, "H", &["x", "y"])]);
        // A self-loop is an edge; an edge need not be a self-loop.
        assert!(loopq.contained_in(&edgeq, &s));
        assert!(!edgeq.contained_in(&loopq, &s));
    }

    #[test]
    fn over_peer_checks_relations() {
        let mut s = Schema::new();
        s.source("E", 2);
        s.target("H", 2);
        let q = ConjunctiveQuery::boolean(vec![Atom::vars(&s, "H", &["x", "y"])]);
        assert!(q.over_peer(&s, Peer::Target));
        assert!(!q.over_peer(&s, Peer::Source));
    }
}
