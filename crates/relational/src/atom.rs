//! First-order syntax: variables, terms, atoms, and conjunctions.
//!
//! These are the building blocks of conjunctive queries and of the premises
//! and conclusions of tgds/egds. Atoms refer to relations by [`RelId`], so
//! they are always bound to a concrete [`Schema`].

use crate::schema::{RelId, Schema};
use crate::symbol::Symbol;
use crate::value::Value;
use std::collections::BTreeSet;
use std::fmt;

/// A variable (interned name).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub Symbol);

impl Var {
    /// Make a variable from a name.
    pub fn new(name: impl Into<Symbol>) -> Var {
        Var(name.into())
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Var {
        Var::new(s)
    }
}

/// A term: a variable or a constant.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A constant.
    Const(Symbol),
}

impl Term {
    /// The variable, if this term is one.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        }
    }

    /// Is this term a variable?
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "'{c}'"),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

/// An atomic formula `R(t1, …, tk)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The relation symbol.
    pub rel: RelId,
    /// The terms, one per attribute.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Build an atom; validates arity against `schema`.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn new(schema: &Schema, rel: RelId, terms: Vec<Term>) -> Atom {
        assert_eq!(
            terms.len(),
            schema.arity(rel) as usize,
            "arity mismatch building atom over {}",
            schema.name(rel)
        );
        Atom { rel, terms }
    }

    /// Build an atom with all-variable terms from names (test convenience).
    pub fn vars(schema: &Schema, rel: &str, names: &[&str]) -> Atom {
        let id = schema
            .rel_id(rel)
            .unwrap_or_else(|| panic!("unknown relation {rel}"));
        Atom::new(
            schema,
            id,
            names.iter().map(|n| Term::Var(Var::new(*n))).collect(),
        )
    }

    /// The variables occurring in this atom, with duplicates, in order.
    pub fn var_occurrences(&self) -> impl Iterator<Item = Var> + '_ {
        self.terms.iter().filter_map(Term::as_var)
    }

    /// The distinct variables of this atom.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.var_occurrences().collect()
    }

    /// Does variable `v` occur more than once?
    pub fn has_repeated_var(&self, v: Var) -> bool {
        self.var_occurrences().filter(|x| *x == v).count() > 1
    }

    /// Does any variable occur more than once?
    pub fn has_any_repeated_var(&self) -> bool {
        let vars: Vec<Var> = self.var_occurrences().collect();
        let set: BTreeSet<Var> = vars.iter().copied().collect();
        vars.len() != set.len()
    }

    /// Ground this atom under a total assignment, producing the values of a
    /// fact. Returns `None` if some variable is unassigned.
    pub fn ground(&self, assign: &dyn Fn(Var) -> Option<Value>) -> Option<Vec<Value>> {
        self.terms
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(Value::Const(*c)),
                Term::Var(v) => assign(*v),
            })
            .collect()
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.name(self.0.rel))?;
                for (i, t) in self.0.terms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}(", self.rel)?;
        for (i, t) in self.terms.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// A conjunction of atoms.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Conjunction {
    /// The conjuncts.
    pub atoms: Vec<Atom>,
}

impl Conjunction {
    /// Build from atoms.
    pub fn new(atoms: Vec<Atom>) -> Conjunction {
        Conjunction { atoms }
    }

    /// The distinct variables across all conjuncts.
    pub fn variables(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(Atom::variables).collect()
    }

    /// Total number of occurrences of variable `v`.
    pub fn occurrences_of(&self, v: Var) -> usize {
        self.atoms
            .iter()
            .flat_map(Atom::var_occurrences)
            .filter(|x| *x == v)
            .count()
    }

    /// Number of conjuncts.
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// Is the conjunction empty (trivially true)?
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Render with relation names resolved against `schema`.
    pub fn display<'a>(&'a self, schema: &'a Schema) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Conjunction, &'a Schema);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                for (i, a) in self.0.atoms.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", a.display(self.1))?;
                }
                Ok(())
            }
        }
        D(self, schema)
    }
}

impl fmt::Debug for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Peer;

    fn schema() -> Schema {
        let mut s = Schema::new();
        s.add_relation("E", 2, Peer::Source);
        s.add_relation("P", 4, Peer::Target);
        s
    }

    #[test]
    fn atom_variables() {
        let s = schema();
        let a = Atom::vars(&s, "P", &["x", "z", "y", "z"]);
        assert_eq!(a.variables().len(), 3);
        assert!(a.has_repeated_var(Var::new("z")));
        assert!(!a.has_repeated_var(Var::new("x")));
        assert!(a.has_any_repeated_var());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn atom_arity_checked() {
        let s = schema();
        Atom::vars(&s, "E", &["x"]);
    }

    #[test]
    fn ground_requires_total_assignment() {
        let s = schema();
        let a = Atom::vars(&s, "E", &["x", "y"]);
        let only_x = |v: Var| {
            if v == Var::new("x") {
                Some(Value::constant("a"))
            } else {
                None
            }
        };
        assert!(a.ground(&only_x).is_none());
        let both = |_v: Var| Some(Value::constant("a"));
        assert_eq!(
            a.ground(&both).unwrap(),
            vec![Value::constant("a"), Value::constant("a")]
        );
    }

    #[test]
    fn ground_keeps_constants() {
        let s = schema();
        let e = s.rel_id("E").unwrap();
        let a = Atom::new(
            &s,
            e,
            vec![Term::Const(Symbol::intern("k")), Term::Var(Var::new("y"))],
        );
        let vals = a.ground(&|_| Some(Value::constant("w"))).unwrap();
        assert_eq!(vals, vec![Value::constant("k"), Value::constant("w")]);
    }

    #[test]
    fn conjunction_bookkeeping() {
        let s = schema();
        let c = Conjunction::new(vec![
            Atom::vars(&s, "E", &["x", "y"]),
            Atom::vars(&s, "E", &["y", "z"]),
        ]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.variables().len(), 3);
        assert_eq!(c.occurrences_of(Var::new("y")), 2);
        assert_eq!(c.occurrences_of(Var::new("w")), 0);
    }

    #[test]
    fn display_resolves_names() {
        let s = schema();
        let a = Atom::vars(&s, "E", &["x", "y"]);
        assert_eq!(format!("{}", a.display(&s)), "E(x, y)");
    }
}
