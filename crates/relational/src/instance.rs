//! Instances over a schema, including the pair instance `(I, J)`.
//!
//! An [`Instance`] stores one [`Relation`] per relation symbol of its
//! [`Schema`]. Because a peer data exchange schema tags every relation with
//! its [`Peer`], the pair `(I, J)` of the paper is a *single* instance here;
//! helpers expose per-peer views (restriction, containment, active domain).

use crate::relation::Relation;
use crate::schema::{Peer, RelId, Schema};
use crate::tuple::Tuple;
use crate::unionfind::ValueUnionFind;
use crate::value::{NullId, Value, ValueId};
use std::collections::BTreeSet;
use std::fmt;
use std::ops::ControlFlow;
use std::sync::Arc;

/// A database instance over a fixed schema.
///
/// The instance owns a monotone *epoch counter*: every inserted fact is
/// stamped with the current epoch, and [`Instance::bump_epoch`] opens a new
/// one. The semi-naive chase bumps the epoch once per round and asks each
/// relation for its rows in the window between two epochs — the delta.
#[derive(Clone)]
pub struct Instance {
    schema: Arc<Schema>,
    relations: Vec<Relation>,
    epoch: u64,
}

impl Instance {
    /// An empty instance over `schema`.
    pub fn new(schema: Arc<Schema>) -> Instance {
        let relations = schema
            .rel_ids()
            .map(|id| Relation::new(schema.arity(id)))
            .collect();
        Instance {
            schema,
            relations,
            epoch: 0,
        }
    }

    /// The instance's schema.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// The epoch newly inserted facts are currently stamped with.
    pub fn current_epoch(&self) -> u64 {
        self.epoch
    }

    /// Open a new insertion epoch and return it: facts inserted from now on
    /// are distinguishable (as a delta) from everything inserted before.
    pub fn bump_epoch(&mut self) -> u64 {
        self.epoch += 1;
        self.epoch
    }

    /// Raise the insertion-epoch counter to `epoch` (never lowers it —
    /// per-row stamps must stay monotone). Used by the durable store's
    /// journal replay, which re-stamps recovered facts with the epoch they
    /// were originally committed under.
    pub fn set_epoch(&mut self, epoch: u64) {
        self.epoch = self.epoch.max(epoch);
    }

    /// Insert a fact `R(t)` stamped with the current epoch; returns `true`
    /// if new.
    pub fn insert(&mut self, rel: RelId, t: Tuple) -> bool {
        let epoch = self.epoch;
        self.relations[rel.index()].insert_at(t, epoch)
    }

    /// Insert a fact given the relation name and constant strings
    /// (fixture convenience).
    ///
    /// # Panics
    /// Panics if the relation is unknown.
    pub fn insert_consts<S: AsRef<str>>(
        &mut self,
        rel: &str,
        values: impl IntoIterator<Item = S>,
    ) -> bool {
        let id = self
            .schema
            .rel_id(rel)
            .unwrap_or_else(|| panic!("unknown relation {rel}"));
        self.insert(id, Tuple::consts(values))
    }

    /// Insert a fact given as packed value ids, stamped with the current
    /// epoch; returns `true` if new. The zero-copy twin of
    /// [`Instance::insert`] used for bulk copies between instances.
    ///
    /// # Panics
    /// Panics if `ids.len()` differs from the relation's arity.
    pub fn insert_ids(&mut self, rel: RelId, ids: &[ValueId]) -> bool {
        let epoch = self.epoch;
        self.relations[rel.index()].insert_ids_at(ids, epoch)
    }

    /// [`Instance::insert_ids`] stamped with an explicit insertion epoch
    /// (clamped monotone per relation). The durable store's snapshot loader
    /// uses this to restore each row's original epoch so delta windows
    /// survive a restart.
    pub fn insert_ids_at(&mut self, rel: RelId, ids: &[ValueId], epoch: u64) -> bool {
        self.relations[rel.index()].insert_ids_at(ids, epoch)
    }

    /// Membership test for a fact.
    pub fn contains(&self, rel: RelId, t: &Tuple) -> bool {
        self.relations[rel.index()].contains(t)
    }

    /// Remove a fact `R(t)`; returns `true` if it was present.
    pub fn remove(&mut self, rel: RelId, t: &Tuple) -> bool {
        self.relations[rel.index()].remove(t)
    }

    /// The stored relation for `rel`.
    pub fn relation(&self, rel: RelId) -> &Relation {
        &self.relations[rel.index()]
    }

    /// Total number of facts.
    pub fn fact_count(&self) -> usize {
        self.relations.iter().map(Relation::len).sum()
    }

    /// Heap footprint of all stored relations in bytes.
    ///
    /// O(#relations × arity): sums each relation's counter-maintained
    /// [`Relation::heap_bytes`]. The runtime governor charges this figure
    /// against a configured memory budget at every chase round, so it must
    /// stay cheap enough to call in a hot loop. With the columnar layout
    /// the figure is exact up to allocator rounding, not an estimate.
    pub fn heap_bytes(&self) -> usize {
        self.relations.iter().map(Relation::heap_bytes).sum()
    }

    /// Recompute [`Instance::heap_bytes`] from full structure scans
    /// instead of the incremental counters (drift diagnostics backing the
    /// heap-accounting property tests).
    pub fn recount_heap_bytes(&self) -> usize {
        self.relations
            .iter()
            .map(Relation::recount_heap_bytes)
            .sum()
    }

    /// Aggregate storage counters across all relations, for run reports
    /// and benches.
    pub fn storage_stats(&self) -> StorageStats {
        let facts = self.fact_count();
        let heap_bytes = self.heap_bytes();
        StorageStats {
            facts,
            slots: self.relations.iter().map(Relation::slot_count).sum(),
            index_entries: self.relations.iter().map(Relation::index_entry_count).sum(),
            heap_bytes,
        }
    }

    /// Number of facts belonging to `peer`.
    pub fn fact_count_of(&self, peer: Peer) -> usize {
        self.schema
            .rels_of(peer)
            .map(|id| self.relations[id.index()].len())
            .sum()
    }

    /// Iterate over all facts as `(rel, tuple)` pairs. Tuples are
    /// materialized from the columnar storage on the fly; hot paths should
    /// work on row ids via [`Instance::relation`] or scan packed rows with
    /// [`Instance::for_each_fact`] instead.
    pub fn facts(&self) -> impl Iterator<Item = (RelId, Tuple)> + '_ {
        self.schema
            .rel_ids()
            .flat_map(move |id| self.relations[id.index()].iter().map(move |t| (id, t)))
    }

    /// Visit every fact as `(rel, packed row)` without materializing
    /// tuples — the arena-backed twin of [`Instance::facts`] that snapshot
    /// serialization and bulk instance copies run on. Relations are visited
    /// in schema order, rows in insertion order; returning
    /// [`ControlFlow::Break`] stops the scan.
    pub fn for_each_fact(
        &self,
        mut f: impl FnMut(RelId, &[ValueId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        for id in self.schema.rel_ids() {
            self.relations[id.index()].for_each_row(|_, ids| f(id, ids))?;
        }
        ControlFlow::Continue(())
    }

    /// Iterate over the facts of one peer.
    pub fn facts_of(&self, peer: Peer) -> impl Iterator<Item = (RelId, Tuple)> + '_ {
        self.facts()
            .filter(move |(id, _)| self.schema.peer(*id) == peer)
    }

    /// Copy of this instance keeping only `peer`'s facts (other relations
    /// are emptied, the schema is unchanged). Rows are copied as packed
    /// ids — no tuple materialization.
    pub fn restrict(&self, peer: Peer) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        for id in self.schema.rel_ids() {
            if self.schema.peer(id) != peer {
                continue;
            }
            let target = &mut out.relations[id.index()];
            let _ = self.relations[id.index()].for_each_row(|_, ids| {
                target.insert_ids_at(ids, 0);
                ControlFlow::Continue(())
            });
        }
        out
    }

    /// Union of this instance with `other` (same schema required). Rows of
    /// `other` are copied as packed ids, stamped with `self`'s current
    /// epoch.
    pub fn union(&self, other: &Instance) -> Instance {
        assert!(
            Arc::ptr_eq(&self.schema, &other.schema) || self.schema.len() == other.schema.len(),
            "schema mismatch in union"
        );
        let mut out = self.clone();
        let epoch = out.epoch;
        for id in self.schema.rel_ids() {
            let target = &mut out.relations[id.index()];
            let _ = other.relations[id.index()].for_each_row(|_, ids| {
                target.insert_ids_at(ids, epoch);
                ControlFlow::Continue(())
            });
        }
        out
    }

    /// Is every fact of `self` a fact of `other`? Compares packed rows —
    /// no tuple materialization.
    pub fn contained_in(&self, other: &Instance) -> bool {
        self.schema.rel_ids().all(|id| {
            let target = &other.relations[id.index()];
            self.relations[id.index()]
                .for_each_row(|_, ids| {
                    if target.contains_ids(ids) {
                        ControlFlow::Continue(())
                    } else {
                        ControlFlow::Break(())
                    }
                })
                .is_continue()
        })
    }

    /// Is every fact of `self` belonging to `peer` also in `other`?
    pub fn peer_contained_in(&self, other: &Instance, peer: Peer) -> bool {
        self.schema.rel_ids().all(|id| {
            self.schema.peer(id) != peer || {
                let target = &other.relations[id.index()];
                self.relations[id.index()]
                    .for_each_row(|_, ids| {
                        if target.contains_ids(ids) {
                            ControlFlow::Continue(())
                        } else {
                            ControlFlow::Break(())
                        }
                    })
                    .is_continue()
            }
        })
    }

    /// Set equality of the stored facts (insertion order ignored).
    pub fn same_facts(&self, other: &Instance) -> bool {
        self.fact_count() == other.fact_count() && self.contained_in(other)
    }

    /// The active domain: every value occurring in some fact.
    pub fn active_domain(&self) -> BTreeSet<Value> {
        self.relations.iter().flat_map(Relation::values).collect()
    }

    /// The active domain restricted to one peer's relations.
    pub fn active_domain_of(&self, peer: Peer) -> BTreeSet<Value> {
        self.schema
            .rels_of(peer)
            .flat_map(|id| self.relations[id.index()].values())
            .collect()
    }

    /// The distinct labeled nulls occurring anywhere.
    pub fn nulls(&self) -> BTreeSet<NullId> {
        self.relations
            .iter()
            .flat_map(|r| r.values().filter_map(|v| v.as_null()))
            .collect()
    }

    /// Does the instance contain no nulls (a *ground* instance)?
    /// O(#relations): each relation tracks its live null occurrences.
    pub fn is_ground(&self) -> bool {
        !self.relations.iter().any(Relation::has_nulls)
    }

    /// Largest null id present, for seeding a
    /// [`crate::value::NullGen`] that must avoid collisions.
    pub fn max_null_id(&self) -> Option<u32> {
        self.nulls().iter().map(|n| n.0).max()
    }

    /// Replace every occurrence of `from` by `to`, in all relations.
    /// Rewritten facts are stamped with the current epoch (they count as
    /// new for delta purposes: merged facts can enable new triggers).
    pub fn substitute(&mut self, from: Value, to: Value) {
        let epoch = self.epoch;
        for r in &mut self.relations {
            r.substitute_at(from, to, epoch);
        }
    }

    /// Apply every merge recorded in a union-find at once: each fact
    /// containing a non-canonical value is rewritten to canonical
    /// representatives, with index repair targeted at the merged values'
    /// buckets. Rewritten facts are stamped with the current epoch. Returns
    /// the number of rewritten facts.
    pub fn apply_merges(&mut self, uf: &ValueUnionFind) -> usize {
        if uf.is_empty() {
            return 0;
        }
        let touched = uf.dirty_values();
        let epoch = self.epoch;
        self.relations
            .iter_mut()
            .map(|r| r.rewrite_values(&touched, |v| uf.resolve(v), epoch))
            .sum()
    }

    /// Do any facts carry an insertion epoch `>= since`? A cheap emptiness
    /// test for the delta view.
    pub fn has_facts_since(&self, since: u64) -> bool {
        self.relations
            .iter()
            .any(|r| r.row_ids_in_window(since, u64::MAX).next().is_some())
    }

    /// Apply a value mapping to every fact, producing a new instance
    /// (the homomorphic image `h(K)` used throughout §5 of the paper).
    /// Maps packed rows through one reused buffer — no tuple
    /// materialization.
    pub fn map_values(&self, mut f: impl FnMut(Value) -> Value) -> Instance {
        let mut out = Instance::new(self.schema.clone());
        let mut buf: Vec<ValueId> = Vec::new();
        for id in self.schema.rel_ids() {
            let target = &mut out.relations[id.index()];
            let _ = self.relations[id.index()].for_each_row(|_, ids| {
                buf.clear();
                buf.extend(ids.iter().map(|i| ValueId::pack(f(i.value()))));
                target.insert_ids_at(&buf, 0);
                ControlFlow::Continue(())
            });
        }
        out
    }
}

/// Aggregate storage counters of an [`Instance`], as reported by
/// [`Instance::storage_stats`] into run reports and benches.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Live facts across all relations.
    pub facts: usize,
    /// Storage slots including tombstones.
    pub slots: usize,
    /// Index entries across all attributes, dead ones included.
    pub index_entries: usize,
    /// Heap bytes ([`Instance::heap_bytes`]).
    pub heap_bytes: usize,
}

impl StorageStats {
    /// Heap bytes per live fact, rounded to nearest (0 when empty).
    pub fn bytes_per_fact(&self) -> usize {
        (self.heap_bytes + self.facts / 2)
            .checked_div(self.facts)
            .unwrap_or(0)
    }
}

impl PartialEq for Instance {
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Eq for Instance {}

impl fmt::Debug for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Instance {{")?;
        for rel in self.schema.rel_ids() {
            let r = self.relation(rel);
            if r.is_empty() {
                continue;
            }
            let mut tuples: Vec<String> = r.iter().map(|t| format!("{t}")).collect();
            tuples.sort();
            writeln!(f, "  {}: {}", self.schema.name(rel), tuples.join(" "))?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for Instance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for rel in self.schema.rel_ids() {
            for t in self.relation(rel).iter() {
                if !first {
                    write!(f, " ")?;
                }
                first = false;
                write!(f, "{}{}.", self.schema.name(rel), t)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        let mut s = Schema::new();
        s.source("E", 2);
        s.target("H", 2);
        Arc::new(s)
    }

    #[test]
    fn insert_and_query() {
        let mut i = Instance::new(schema());
        assert!(i.insert_consts("E", ["a", "b"]));
        assert!(!i.insert_consts("E", ["a", "b"]));
        assert_eq!(i.fact_count(), 1);
        assert_eq!(i.fact_count_of(Peer::Source), 1);
        assert_eq!(i.fact_count_of(Peer::Target), 0);
    }

    #[test]
    fn restrict_keeps_one_peer() {
        let mut i = Instance::new(schema());
        i.insert_consts("E", ["a", "b"]);
        i.insert_consts("H", ["a", "b"]);
        let src = i.restrict(Peer::Source);
        assert_eq!(src.fact_count(), 1);
        assert_eq!(src.fact_count_of(Peer::Target), 0);
    }

    #[test]
    fn union_and_containment() {
        let mut i = Instance::new(schema());
        i.insert_consts("E", ["a", "b"]);
        let mut j = Instance::new(schema());
        j.insert_consts("H", ["a", "b"]);
        let u = i.union(&j);
        assert_eq!(u.fact_count(), 2);
        assert!(i.contained_in(&u));
        assert!(j.contained_in(&u));
        assert!(!u.contained_in(&i));
        assert!(j.peer_contained_in(&u, Peer::Target));
    }

    #[test]
    fn active_domain_collects_values() {
        let mut i = Instance::new(schema());
        i.insert_consts("E", ["a", "b"]);
        i.insert_consts("H", ["b", "c"]);
        let adom = i.active_domain();
        assert_eq!(adom.len(), 3);
        assert!(adom.contains(&Value::constant("c")));
        let src = i.active_domain_of(Peer::Source);
        assert_eq!(src.len(), 2);
        assert!(!src.contains(&Value::constant("c")));
    }

    #[test]
    fn nulls_and_groundness() {
        let s = schema();
        let mut i = Instance::new(s.clone());
        let h = s.rel_id("H").unwrap();
        i.insert(
            h,
            Tuple::new(vec![Value::Null(NullId(3)), Value::constant("a")]),
        );
        assert!(!i.is_ground());
        assert_eq!(i.nulls().len(), 1);
        assert_eq!(i.max_null_id(), Some(3));
        i.substitute(Value::Null(NullId(3)), Value::constant("z"));
        assert!(i.is_ground());
        assert!(i.contains(h, &Tuple::consts(["z", "a"])));
    }

    #[test]
    fn map_values_builds_homomorphic_image() {
        let s = schema();
        let mut i = Instance::new(s.clone());
        let h = s.rel_id("H").unwrap();
        i.insert(
            h,
            Tuple::new(vec![Value::Null(NullId(0)), Value::Null(NullId(1))]),
        );
        let img = i.map_values(|v| if v.is_null() { Value::constant("c") } else { v });
        assert!(img.contains(h, &Tuple::consts(["c", "c"])));
        assert_eq!(img.fact_count(), 1);
    }

    #[test]
    fn epochs_track_insertion_rounds() {
        let mut i = Instance::new(schema());
        i.insert_consts("E", ["a", "b"]);
        let e1 = i.bump_epoch();
        i.insert_consts("E", ["b", "c"]);
        assert_eq!(i.current_epoch(), e1);
        let e = i.schema().rel_id("E").unwrap();
        assert_eq!(i.relation(e).rows_in_window(e1, u64::MAX).count(), 1);
        assert!(i.has_facts_since(e1));
        assert!(!i.has_facts_since(e1 + 1));
    }

    #[test]
    fn apply_merges_rewrites_through_the_union_find() {
        use crate::unionfind::ValueUnionFind;
        let s = schema();
        let mut i = Instance::new(s.clone());
        let h = s.rel_id("H").unwrap();
        let n0 = Value::Null(NullId(0));
        let n1 = Value::Null(NullId(1));
        i.insert(h, Tuple::new(vec![n0, n1]));
        i.insert(h, Tuple::new(vec![Value::constant("a"), n1]));
        let mut uf = ValueUnionFind::new();
        uf.union(n0, Value::constant("a")).unwrap();
        uf.union(n1, n0).unwrap();
        let rewritten = i.apply_merges(&uf);
        assert_eq!(rewritten, 2);
        // Both facts collapse to H(a, a).
        assert_eq!(i.fact_count(), 1);
        assert!(i.contains(h, &Tuple::consts(["a", "a"])));
        assert!(i.is_ground());
    }

    #[test]
    fn same_facts_is_order_insensitive() {
        let mut a = Instance::new(schema());
        a.insert_consts("E", ["a", "b"]);
        a.insert_consts("E", ["b", "c"]);
        let mut b = Instance::new(schema());
        b.insert_consts("E", ["b", "c"]);
        b.insert_consts("E", ["a", "b"]);
        assert!(a.same_facts(&b));
        assert_eq!(a, b);
        b.insert_consts("E", ["c", "d"]);
        assert!(!a.same_facts(&b));
    }
}
