//! Cores of instances with labeled nulls.
//!
//! The *core* of an instance `K` is a smallest subinstance `C ⊆ K` with a
//! homomorphism `K → C` (a retract); it is unique up to isomorphism
//! (Fagin–Kolaitis–Popa, "Data exchange: getting to the core", cited by
//! the paper). Cores matter in data exchange because the core of a
//! universal solution is the smallest universal solution; here they also
//! give minimal witnesses: the core of any materialized solution of a
//! Σt = ∅ setting is again a solution (Σts is antitone in the target, Σst
//! is preserved under the retraction).
//!
//! Algorithm: greedy null folding. A null `n` is *foldable* when `K` maps
//! homomorphically into `K` minus all facts mentioning `n`; folding
//! replaces `K` by that image. When no null is foldable, every
//! endomorphism of `K` is surjective on nulls, i.e. `K` is a core.

use crate::hom::instance_hom;
use crate::instance::Instance;
use crate::value::{NullId, Value};

/// One folding step: try to eliminate a specific null. Returns the folded
/// instance when `n` is foldable.
pub fn fold_null(k: &Instance, n: NullId) -> Option<Instance> {
    // Target: K without the facts mentioning n.
    let mut without = Instance::new(k.schema().clone());
    for (rel, t) in k.facts() {
        if !t.nulls().any(|m| m == n) {
            without.insert(rel, t);
        }
    }
    let h = instance_hom(k, &without)?;
    Some(k.map_values(|v| match v {
        Value::Null(m) => h.get(&m).copied().unwrap_or(v),
        Value::Const(_) => v,
    }))
}

/// Compute the core of `k` by greedy null folding.
///
/// Worst case exponential in the number of nulls per block (each fold is a
/// homomorphism search), but linear in the number of folds: every
/// successful fold removes at least one null.
pub fn core_of(k: &Instance) -> Instance {
    let mut cur = k.clone();
    'outer: loop {
        let nulls: Vec<NullId> = cur.nulls().into_iter().collect();
        for n in nulls {
            if let Some(folded) = fold_null(&cur, n) {
                debug_assert!(folded.contained_in(&cur));
                debug_assert!(!folded.nulls().contains(&n));
                cur = folded;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Is `k` its own core (no null foldable)?
pub fn is_core(k: &Instance) -> bool {
    k.nulls().into_iter().all(|n| fold_null(k, n).is_none())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hom::instance_hom_exists;
    use crate::parser::{parse_instance, parse_schema};
    use std::sync::Arc;

    fn schema() -> Arc<crate::schema::Schema> {
        Arc::new(parse_schema("target H/2;").unwrap())
    }

    #[test]
    fn ground_instances_are_their_own_core() {
        let s = schema();
        let k = parse_instance(&s, "H(a, b). H(b, c).").unwrap();
        assert!(is_core(&k));
        assert!(core_of(&k).same_facts(&k));
    }

    #[test]
    fn redundant_null_fact_folds_away() {
        // H(a, ?0) is subsumed by H(a, b).
        let s = schema();
        let k = parse_instance(&s, "H(a, b). H(a, ?0).").unwrap();
        let c = core_of(&k);
        assert_eq!(c.fact_count(), 1);
        assert!(c.is_ground());
        assert!(is_core(&c));
    }

    #[test]
    fn null_chain_collapses_onto_loop() {
        // A null path folds onto a constant self-loop.
        let s = schema();
        let k = parse_instance(&s, "H(a, a). H(?0, ?1). H(?1, ?2).").unwrap();
        let c = core_of(&k);
        assert_eq!(c.fact_count(), 1);
        assert!(c.contains(
            s.rel_id("H").unwrap(),
            &crate::tuple::Tuple::consts(["a", "a"])
        ));
    }

    #[test]
    fn non_redundant_nulls_survive() {
        // H(a, ?0), H(?0, b): the 2-path through the null has no ground
        // match, so the core keeps the null.
        let s = schema();
        let k = parse_instance(&s, "H(a, ?0). H(?0, b).").unwrap();
        let c = core_of(&k);
        assert_eq!(c.fact_count(), 2);
        assert_eq!(c.nulls().len(), 1);
        assert!(is_core(&c));
    }

    #[test]
    fn core_is_hom_equivalent_to_original() {
        let s = schema();
        let k = parse_instance(&s, "H(a, b). H(a, ?0). H(?1, b). H(?2, ?3).").unwrap();
        let c = core_of(&k);
        assert!(instance_hom_exists(&k, &c));
        assert!(instance_hom_exists(&c, &k));
        assert!(c.contained_in(&k));
        assert!(is_core(&c));
    }

    #[test]
    fn core_is_idempotent() {
        let s = schema();
        let k = parse_instance(&s, "H(a, ?0). H(?0, ?1). H(?1, a). H(b, ?2).").unwrap();
        let c1 = core_of(&k);
        let c2 = core_of(&c1);
        assert!(c1.same_facts(&c2));
    }

    #[test]
    fn fold_null_reports_unfoldable() {
        let s = schema();
        let k = parse_instance(&s, "H(a, ?0). H(?0, b).").unwrap();
        let n = k.nulls().into_iter().next().unwrap();
        assert!(fold_null(&k, n).is_none());
    }

    #[test]
    fn core_size_independent_of_rendering_order() {
        let s = schema();
        let a = parse_instance(&s, "H(a, ?0). H(a, b). H(?1, b).").unwrap();
        let b = parse_instance(&s, "H(?1, b). H(a, ?0). H(a, b).").unwrap();
        assert_eq!(core_of(&a).fact_count(), core_of(&b).fact_count());
        assert_eq!(core_of(&a).fact_count(), 1);
    }
}
