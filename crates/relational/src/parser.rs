//! Text syntax for schemas, instances, atoms, and conjunctive queries.
//!
//! The grammar is deliberately small and close to the paper's notation:
//!
//! ```text
//! schema   :  ("source" | "target") NAME "/" ARITY ";" ...
//! instance :  E(a, b). E(b, c). H(?0, c).        -- bare terms are constants,
//!                                                -- ?k is labeled null k
//! atoms    :  E(x, y), E(y, z)                   -- bare terms are variables,
//!                                                -- 'a' is the constant a
//! query    :  q(x, z) :- H(x, y), H(y, z)        -- or ":- body" (Boolean)
//! ```
//!
//! The dependency (tgd/egd) parser in the `pde-constraints` crate builds on
//! the [`Lexer`] and atom parser exported here.

use crate::atom::{Atom, Term, Var};
use crate::instance::Instance;
use crate::query::ConjunctiveQuery;
use crate::schema::{Peer, Schema};
use crate::symbol::Symbol;
use crate::tuple::Tuple;
use crate::value::{NullId, Value};
use std::fmt;
use std::sync::Arc;

/// A half-open byte range `[start, end)` into a source string.
///
/// Spans flow from the lexer through every parse error and (via the
/// dependency parsers in `pde-constraints`) onto parsed constraints, so
/// diagnostics can point at the exact offending text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first byte covered.
    pub start: usize,
    /// Byte offset one past the last byte covered.
    pub end: usize,
}

impl Span {
    /// The span `[start, end)`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// An empty span at `at` (used for end-of-input errors).
    pub fn point(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based line and column of the span's start within `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let upto = &src[..self.start.min(src.len())];
        let line = upto.bytes().filter(|b| *b == b'\n').count() + 1;
        let col = upto
            .rfind('\n')
            .map_or(self.start + 1, |nl| self.start - nl);
        (line, col)
    }

    /// The text the span covers (clamped to `src`).
    pub fn slice<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start.min(src.len())..self.end.min(src.len())]
    }
}

/// A parse error with the span of the offending text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Where in the input the error was detected.
    pub span: Span,
}

impl ParseError {
    /// An error at a single byte offset (empty span).
    pub fn new(message: impl Into<String>, offset: usize) -> ParseError {
        ParseError {
            message: message.into(),
            span: Span::point(offset),
        }
    }

    /// An error covering `span`.
    pub fn at(message: impl Into<String>, span: Span) -> ParseError {
        ParseError {
            message: message.into(),
            span,
        }
    }

    /// Byte offset where the error was detected.
    pub fn offset(&self) -> usize {
        self.span.start
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at byte {}: {}",
            self.span.start, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Lexical tokens of the little language.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Token {
    /// Identifier (relation, variable, or bare constant, by context).
    Ident(String),
    /// Quoted constant: `'abc'` or `"abc"`.
    Quoted(String),
    /// Labeled null literal `?3`.
    NullLit(u32),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Period,
    /// `;`
    Semi,
    /// `/`
    Slash,
    /// `->`
    Arrow,
    /// `=`
    Eq,
    /// `:-`
    ColonDash,
    /// `&` (alternative conjunction separator)
    Amp,
    /// `|` (disjunction separator, for disjunctive tgds)
    Pipe,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Quoted(s) => write!(f, "'{s}'"),
            Token::NullLit(n) => write!(f, "?{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Period => write!(f, "."),
            Token::Semi => write!(f, ";"),
            Token::Slash => write!(f, "/"),
            Token::Arrow => write!(f, "->"),
            Token::Eq => write!(f, "="),
            Token::ColonDash => write!(f, ":-"),
            Token::Amp => write!(f, "&"),
            Token::Pipe => write!(f, "|"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
        }
    }
}

/// A peekable lexer over the little language.
pub struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    last_end: usize,
    peeked: Option<Option<(Token, Span)>>,
}

impl<'a> Lexer<'a> {
    /// Lex `src`.
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            last_end: 0,
            peeked: None,
        }
    }

    /// Current byte offset (for error messages).
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// End offset of the most recently *consumed* token (unaffected by
    /// peeking). Used to close the span of a just-parsed production.
    pub fn last_end(&self) -> usize {
        self.last_end
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Line comments: `# …` and `-- …`.
            if self.pos < self.bytes.len() && self.bytes[self.pos] == b'#'
                || self.pos + 1 < self.bytes.len() && &self.bytes[self.pos..self.pos + 2] == b"--"
            {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn lex_next(&mut self) -> Result<Option<(Token, Span)>, ParseError> {
        self.skip_ws();
        if self.pos >= self.bytes.len() {
            return Ok(None);
        }
        let start = self.pos;
        let b = self.bytes[self.pos];
        let tok = match b {
            b'(' => {
                self.pos += 1;
                Token::LParen
            }
            b')' => {
                self.pos += 1;
                Token::RParen
            }
            b',' => {
                self.pos += 1;
                Token::Comma
            }
            b'.' => {
                self.pos += 1;
                Token::Period
            }
            b';' => {
                self.pos += 1;
                Token::Semi
            }
            b'/' => {
                self.pos += 1;
                Token::Slash
            }
            b'=' => {
                self.pos += 1;
                Token::Eq
            }
            b'&' => {
                self.pos += 1;
                Token::Amp
            }
            b'|' => {
                self.pos += 1;
                Token::Pipe
            }
            b'[' => {
                self.pos += 1;
                Token::LBracket
            }
            b']' => {
                self.pos += 1;
                Token::RBracket
            }
            b'-' => {
                if self.bytes.get(self.pos + 1) == Some(&b'>') {
                    self.pos += 2;
                    Token::Arrow
                } else {
                    return Err(ParseError::new("expected '->'", start));
                }
            }
            b':' => {
                if self.bytes.get(self.pos + 1) == Some(&b'-') {
                    self.pos += 2;
                    Token::ColonDash
                } else {
                    return Err(ParseError::new("expected ':-'", start));
                }
            }
            b'\'' | b'"' => {
                let quote = b;
                self.pos += 1;
                let s = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos] != quote {
                    self.pos += 1;
                }
                if self.pos >= self.bytes.len() {
                    return Err(ParseError::new("unterminated quote", start));
                }
                let text = self.src[s..self.pos].to_owned();
                self.pos += 1;
                Token::Quoted(text)
            }
            b'?' => {
                self.pos += 1;
                let s = self.pos;
                while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
                    self.pos += 1;
                }
                if s == self.pos {
                    return Err(ParseError::new("expected digits after '?'", start));
                }
                let n: u32 = self.src[s..self.pos]
                    .parse()
                    .map_err(|_| ParseError::new("null id too large", start))?;
                Token::NullLit(n)
            }
            b if b.is_ascii_alphanumeric() || b == b'_' => {
                let s = self.pos;
                while self.pos < self.bytes.len()
                    && (self.bytes[self.pos].is_ascii_alphanumeric()
                        || self.bytes[self.pos] == b'_')
                {
                    self.pos += 1;
                }
                Token::Ident(self.src[s..self.pos].to_owned())
            }
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {:?}", other as char),
                    start,
                ))
            }
        };
        Ok(Some((tok, Span::new(start, self.pos))))
    }

    /// Peek the next token without consuming it.
    pub fn peek(&mut self) -> Result<Option<&Token>, ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex_next()?);
        }
        Ok(self.peeked.as_ref().unwrap().as_ref().map(|(t, _)| t))
    }

    /// Span of the next (peeked) token; an empty span at the current
    /// position when at end of input.
    pub fn peek_span(&mut self) -> Result<Span, ParseError> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lex_next()?);
        }
        Ok(self
            .peeked
            .as_ref()
            .unwrap()
            .as_ref()
            .map_or(Span::point(self.pos), |(_, s)| *s))
    }

    /// Consume and return the next token.
    #[allow(clippy::should_implement_trait)] // fallible lexer step, not Iterator
    pub fn next(&mut self) -> Result<Option<(Token, Span)>, ParseError> {
        let item = match self.peeked.take() {
            Some(p) => p,
            None => self.lex_next()?,
        };
        if let Some((_, span)) = &item {
            self.last_end = span.end;
        }
        Ok(item)
    }

    /// Consume the next token, requiring it to equal `want`.
    pub fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next()? {
            Some((t, _)) if t == *want => Ok(()),
            Some((t, span)) => Err(ParseError::at(format!("expected {want}, found {t}"), span)),
            None => Err(ParseError::new(
                format!("expected {want}, found end of input"),
                self.pos,
            )),
        }
    }

    /// Consume an identifier.
    pub fn expect_ident(&mut self) -> Result<(String, Span), ParseError> {
        match self.next()? {
            Some((Token::Ident(s), span)) => Ok((s, span)),
            Some((t, span)) => Err(ParseError::at(format!("expected name, found {t}"), span)),
            None => Err(ParseError::new(
                "expected name, found end of input",
                self.pos,
            )),
        }
    }

    /// Is the input exhausted (ignoring whitespace)?
    pub fn at_end(&mut self) -> Result<bool, ParseError> {
        Ok(self.peek()?.is_none())
    }
}

/// Parse a schema declaration list, e.g. `source E/2; target H/2;`.
/// Semicolons between declarations are optional; a trailing one is allowed.
pub fn parse_schema(src: &str) -> Result<Schema, ParseError> {
    let mut lex = Lexer::new(src);
    let mut schema = Schema::new();
    loop {
        if lex.at_end()? {
            break;
        }
        let (kw, span) = lex.expect_ident()?;
        let peer = match kw.as_str() {
            "source" => Peer::Source,
            "target" => Peer::Target,
            other => {
                return Err(ParseError::at(
                    format!("expected 'source' or 'target', found '{other}'"),
                    span,
                ))
            }
        };
        let (name, nspan) = lex.expect_ident()?;
        if schema.rel_id(name.as_str()).is_some() {
            return Err(ParseError::at(format!("duplicate relation {name}"), nspan));
        }
        lex.expect(&Token::Slash)?;
        let (ar, aspan) = lex.expect_ident()?;
        let arity: u16 = ar
            .parse()
            .map_err(|_| ParseError::at(format!("bad arity '{ar}'"), aspan))?;
        schema.add_relation(name.as_str(), arity, peer);
        if matches!(lex.peek()?, Some(Token::Semi)) {
            lex.next()?;
        }
    }
    Ok(schema)
}

/// Parse one term in *formula* context: bare identifiers are variables,
/// quoted strings are constants. Identifiers starting with `__pde` are
/// reserved for internal use and rejected.
pub fn parse_term(lex: &mut Lexer<'_>) -> Result<Term, ParseError> {
    match lex.next()? {
        Some((Token::Ident(s), span)) => {
            if s.starts_with("__pde") {
                return Err(ParseError::at(
                    "identifiers starting with __pde are reserved",
                    span,
                ));
            }
            Ok(Term::Var(Var::new(s.as_str())))
        }
        Some((Token::Quoted(s), _)) => Ok(Term::Const(Symbol::intern(&s))),
        Some((t, span)) => Err(ParseError::at(format!("expected term, found {t}"), span)),
        None => Err(ParseError::new(
            "expected term, found end of input",
            lex.offset(),
        )),
    }
}

/// Parse one atom `R(t1, …, tk)` in formula context.
pub fn parse_atom(schema: &Schema, lex: &mut Lexer<'_>) -> Result<Atom, ParseError> {
    let (name, span) = lex.expect_ident()?;
    let rel = schema
        .rel_id(name.as_str())
        .ok_or_else(|| ParseError::at(format!("unknown relation {name}"), span))?;
    lex.expect(&Token::LParen)?;
    let mut terms = Vec::new();
    if !matches!(lex.peek()?, Some(Token::RParen)) {
        loop {
            terms.push(parse_term(lex)?);
            match lex.peek()? {
                Some(Token::Comma) => {
                    lex.next()?;
                }
                _ => break,
            }
        }
    }
    lex.expect(&Token::RParen)?;
    if terms.len() != schema.arity(rel) as usize {
        return Err(ParseError::at(
            format!(
                "relation {name} has arity {}, got {} terms",
                schema.arity(rel),
                terms.len()
            ),
            Span::new(span.start, lex.last_end()),
        ));
    }
    Ok(Atom { rel, terms })
}

/// Parse a conjunction of atoms separated by `,` or `&`.
pub fn parse_atom_list(schema: &Schema, lex: &mut Lexer<'_>) -> Result<Vec<Atom>, ParseError> {
    let mut atoms = vec![parse_atom(schema, lex)?];
    while let Some(Token::Comma | Token::Amp) = lex.peek()? {
        lex.next()?;
        atoms.push(parse_atom(schema, lex)?);
    }
    Ok(atoms)
}

/// Parse a complete atom list from a string (must consume all input).
pub fn parse_atoms(schema: &Schema, src: &str) -> Result<Vec<Atom>, ParseError> {
    let mut lex = Lexer::new(src);
    let atoms = parse_atom_list(schema, &mut lex)?;
    if !lex.at_end()? {
        return Err(ParseError::new("trailing input after atoms", lex.offset()));
    }
    Ok(atoms)
}

/// Parse an instance: facts `R(a, b).` where bare identifiers and quoted
/// strings are constants and `?k` is the labeled null `k`. The final period
/// of the last fact is optional.
pub fn parse_instance(schema: &Arc<Schema>, src: &str) -> Result<Instance, ParseError> {
    let mut lex = Lexer::new(src);
    let mut inst = Instance::new(schema.clone());
    while !lex.at_end()? {
        let (name, span) = lex.expect_ident()?;
        let rel = schema
            .rel_id(name.as_str())
            .ok_or_else(|| ParseError::at(format!("unknown relation {name}"), span))?;
        lex.expect(&Token::LParen)?;
        let mut vals: Vec<Value> = Vec::new();
        if !matches!(lex.peek()?, Some(Token::RParen)) {
            loop {
                match lex.next()? {
                    Some((Token::Ident(s), _)) | Some((Token::Quoted(s), _)) => {
                        vals.push(Value::constant(s.as_str()));
                    }
                    Some((Token::NullLit(n), _)) => vals.push(Value::Null(NullId(n))),
                    Some((t, s)) => {
                        return Err(ParseError::at(format!("expected value, found {t}"), s))
                    }
                    None => {
                        return Err(ParseError::new(
                            "expected value, found end of input",
                            lex.offset(),
                        ))
                    }
                }
                match lex.peek()? {
                    Some(Token::Comma) => {
                        lex.next()?;
                    }
                    _ => break,
                }
            }
        }
        lex.expect(&Token::RParen)?;
        if vals.len() != schema.arity(rel) as usize {
            return Err(ParseError::at(
                format!(
                    "relation {name} has arity {}, got {} values",
                    schema.arity(rel),
                    vals.len()
                ),
                Span::new(span.start, lex.last_end()),
            ));
        }
        inst.insert(rel, Tuple::new(vals));
        if matches!(lex.peek()?, Some(Token::Period)) {
            lex.next()?;
        }
    }
    Ok(inst)
}

/// Parse a conjunctive query: `q(x, z) :- H(x, y), H(y, z)`, `:- H(x, y)`
/// (Boolean), or a bare atom list (also Boolean).
pub fn parse_query(schema: &Schema, src: &str) -> Result<ConjunctiveQuery, ParseError> {
    let mut lex = Lexer::new(src);
    let mut head: Vec<Var> = Vec::new();
    let mut has_head = false;
    match lex.peek()? {
        Some(Token::ColonDash) => {
            lex.next()?;
            has_head = true; // Boolean with explicit ":-"
        }
        Some(Token::Ident(name)) if schema.rel_id(name.as_str()).is_none() => {
            // Head predicate (any name not clashing with a relation).
            lex.next()?;
            lex.expect(&Token::LParen)?;
            if !matches!(lex.peek()?, Some(Token::RParen)) {
                loop {
                    match parse_term(&mut lex)? {
                        Term::Var(v) => head.push(v),
                        Term::Const(_) => {
                            return Err(ParseError::new(
                                "constants are not allowed in query heads",
                                lex.offset(),
                            ))
                        }
                    }
                    match lex.peek()? {
                        Some(Token::Comma) => {
                            lex.next()?;
                        }
                        _ => break,
                    }
                }
            }
            lex.expect(&Token::RParen)?;
            lex.expect(&Token::ColonDash)?;
            has_head = true;
        }
        _ => {}
    }
    let _ = has_head;
    let body = parse_atom_list(schema, &mut lex)?;
    if !lex.at_end()? {
        return Err(ParseError::new("trailing input after query", lex.offset()));
    }
    Ok(ConjunctiveQuery::new(head, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Arc<Schema> {
        Arc::new(parse_schema("source E/2; target H/2; target P/4;").unwrap())
    }

    #[test]
    fn schema_roundtrip() {
        let s = schema();
        assert_eq!(s.len(), 3);
        assert_eq!(s.peer(s.rel_id("E").unwrap()), Peer::Source);
        assert_eq!(s.arity(s.rel_id("P").unwrap()), 4);
    }

    #[test]
    fn schema_errors() {
        assert!(parse_schema("middle E/2").is_err());
        assert!(parse_schema("source E/x").is_err());
        assert!(parse_schema("source E/2; source E/3").is_err());
    }

    #[test]
    fn instance_parsing_with_nulls() {
        let s = schema();
        let i = parse_instance(&s, "E(a, b). E(b, c). H(?0, c)").unwrap();
        assert_eq!(i.fact_count(), 3);
        assert!(!i.is_ground());
        assert_eq!(i.nulls().len(), 1);
    }

    #[test]
    fn instance_arity_error() {
        let s = schema();
        assert!(parse_instance(&s, "E(a).").is_err());
        assert!(parse_instance(&s, "Q(a, b).").is_err());
    }

    #[test]
    fn atoms_are_variables_by_default() {
        let s = schema();
        let atoms = parse_atoms(&s, "E(x, y), E(y, z)").unwrap();
        assert_eq!(atoms.len(), 2);
        assert!(atoms[0].terms[0].is_var());
        let atoms2 = parse_atoms(&s, "E(x, 'a')").unwrap();
        assert!(!atoms2[0].terms[1].is_var());
    }

    #[test]
    fn ampersand_conjunction() {
        let s = schema();
        let atoms = parse_atoms(&s, "E(x, y) & H(y, z)").unwrap();
        assert_eq!(atoms.len(), 2);
    }

    #[test]
    fn reserved_prefix_rejected() {
        let s = schema();
        assert!(parse_atoms(&s, "E(__pde_null_0, y)").is_err());
    }

    #[test]
    fn query_with_head() {
        let s = schema();
        let q = parse_query(&s, "q(x, z) :- H(x, y), H(y, z)").unwrap();
        assert_eq!(q.head.len(), 2);
        assert_eq!(q.body.len(), 2);
    }

    #[test]
    fn boolean_query_forms() {
        let s = schema();
        let q1 = parse_query(&s, ":- H(x, y)").unwrap();
        assert!(q1.is_boolean());
        let q2 = parse_query(&s, "H(x, y)").unwrap();
        assert!(q2.is_boolean());
        let q3 = parse_query(&s, "q() :- P(x, x, x, x)").unwrap();
        assert!(q3.is_boolean());
    }

    #[test]
    fn comments_are_skipped() {
        let s = schema();
        let i = parse_instance(&s, "# a comment\nE(a, b). -- another\nE(b, c).").unwrap();
        assert_eq!(i.fact_count(), 2);
    }

    #[test]
    fn error_positions_are_reported() {
        let s = schema();
        let err = parse_atoms(&s, "E(x, y) @ E(y, z)").unwrap_err();
        assert!(err.offset() > 0);
        assert!(format!("{err}").contains("byte"));
    }

    #[test]
    fn error_spans_cover_offending_text() {
        let s = schema();
        let src = "E(x, y), Q(y, z)";
        let err = parse_atoms(&s, src).unwrap_err();
        assert_eq!(err.span.slice(src), "Q");
        let arity_src = "E(x, y, z)";
        let err = parse_atoms(&s, arity_src).unwrap_err();
        assert_eq!(err.span.slice(arity_src), "E(x, y, z)");
    }

    #[test]
    fn span_line_col() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 8).line_col(src), (3, 1));
        assert_eq!(Span::new(3, 5).merge(Span::new(6, 8)), Span::new(3, 8));
    }
}
