//! A single stored relation: columnar rows of packed value ids with flat
//! per-attribute indexes.
//!
//! The chase and the homomorphism search spend almost all of their time
//! asking "which rows of `R` have value `v` at position `i`?". Storage is
//! therefore laid out for that probe: rows live as per-attribute
//! `Vec<ValueId>` *columns* (structure-of-arrays — four bytes per value at
//! rest), and every attribute keeps an open-addressed
//! [`ValueId`]` → row-id list` index (`ColumnIndex` in the private `store`
//! module) probed by integer hashing instead of a `HashMap<Value, _>`.
//! Membership and deduplication go through a row-content hash set storing
//! only row ids (`RowSet`). See `docs/STORAGE.md` for the full layout.
//!
//! Rows additionally carry an *insertion epoch* (a monotone `u64` stamped
//! by the caller, see [`crate::instance::Instance::bump_epoch`]). Because
//! row ids are handed out in insertion order and never reused, the epoch
//! sequence is non-decreasing and the rows inserted at or after a given
//! epoch form a suffix of the row vector — the *delta view* the semi-naive
//! chase enumerates by binary search ([`Relation::rows_in_window`]).
//!
//! Deletion is lazy: [`Relation::remove`] tombstones the slot (liveness
//! bitmap) and leaves index postings in place, but per-bucket dead counters
//! trigger a bucket compaction once dead entries reach half the bucket, and
//! the whole relation is rebuilt (invalidating outstanding row ids) once
//! dead slots outnumber live ones. Amortized, insert/remove cycles are
//! O(arity) and never grow memory without bound.

use crate::store::{hash_ids, ColumnIndex, RowSet};
use crate::tuple::Tuple;
use crate::value::{Value, ValueId};
use std::ops::ControlFlow;

/// Slot count below which full-relation compaction is not worth running.
const COMPACT_MIN_SLOTS: usize = 32;

/// Budgeting constant: heap bytes per stored fact of the columnar layout,
/// measured as a cross-workload upper bound (bench E18 measures ~40–90
/// bytes/fact at arities 2–4 including index and membership tables; the
/// constant rounds up for load-factor headroom). Plan certificates derive
/// governor memory budgets as `fact_bound × BYTES_PER_FACT_BUDGET`, so this
/// is exported for `pde-analysis` to re-export — the row-oriented layout it
/// replaces needed 256.
pub const BYTES_PER_FACT_BUDGET: usize = 128;

/// A set of same-arity rows stored column-wise, with per-attribute value
/// indexes and insertion-epoch stamps.
#[derive(Clone, Debug, Default)]
pub struct Relation {
    arity: u16,
    /// `columns[i][r]` = packed value at attribute `i` of row `r`. Slots
    /// are never reused — a full compaction rebuilds the vectors instead,
    /// so a live row id always refers to the row it was handed out for.
    columns: Vec<Vec<ValueId>>,
    /// Liveness bitmap, parallel to the columns; `false` marks a tombstone.
    live: Vec<bool>,
    /// Insertion epoch of each row, parallel to the columns and
    /// non-decreasing.
    epochs: Vec<u64>,
    /// Membership/dedup set over live rows (content-hashed row ids).
    set: RowSet,
    /// One open-addressed index per attribute.
    index: Vec<ColumnIndex>,
    /// Number of tombstoned slots.
    dead: usize,
    /// Number of live rows.
    live_count: usize,
    /// Total row ids stored across all index postings, dead ones included.
    /// Maintained incrementally so [`Relation::heap_bytes`] is O(arity):
    /// inserts add `arity`, posting compactions subtract what they drop,
    /// and a full rebuild resets it to `live * arity`.
    index_entries: usize,
    /// Occurrences of labeled nulls in live rows (O(1) groundness checks).
    null_entries: usize,
    /// Largest epoch stamped so far; later inserts are clamped up to it so
    /// `epochs` stays sorted.
    last_epoch: u64,
}

/// Content hash of row `r` of `columns` (free function so callers can hash
/// one relation's row while mutating another part of the struct).
fn row_hash(columns: &[Vec<ValueId>], r: u32) -> u64 {
    hash_ids(columns.iter().map(|c| c[r as usize]))
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: u16) -> Relation {
        Relation {
            arity,
            columns: (0..arity).map(|_| Vec::new()).collect(),
            live: Vec::new(),
            epochs: Vec::new(),
            set: RowSet::default(),
            index: (0..arity).map(|_| ColumnIndex::default()).collect(),
            dead: 0,
            live_count: 0,
            index_entries: 0,
            null_entries: 0,
            last_epoch: 0,
        }
    }

    /// The arity of this relation.
    pub fn arity(&self) -> u16 {
        self.arity
    }

    /// Number of (live) tuples.
    pub fn len(&self) -> usize {
        self.live_count
    }

    /// Is the relation empty?
    pub fn is_empty(&self) -> bool {
        self.live_count == 0
    }

    /// Does any live row contain a labeled null? O(1).
    pub fn has_nulls(&self) -> bool {
        self.null_entries > 0
    }

    /// Insert a tuple stamped with the relation's current epoch; returns
    /// `true` if it was not already present.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    pub fn insert(&mut self, t: Tuple) -> bool {
        self.insert_at(t, self.last_epoch)
    }

    /// Insert a tuple stamped with insertion epoch `epoch` (clamped up to
    /// the largest epoch already stamped, so epochs stay monotone); returns
    /// `true` if it was not already present. Re-inserting an existing tuple
    /// keeps its original epoch: a re-derived fact is not a delta fact.
    ///
    /// # Panics
    /// Panics if the tuple's arity differs from the relation's.
    // By-value on purpose: this is the crate's fact-insertion API and
    // callers almost always pass a freshly built tuple (the columnar store
    // decomposes it instead of keeping it, which is what trips the lint).
    #[allow(clippy::needless_pass_by_value)]
    pub fn insert_at(&mut self, t: Tuple, epoch: u64) -> bool {
        assert_eq!(
            t.arity(),
            self.arity as usize,
            "arity mismatch inserting {t:?}"
        );
        let hash = hash_ids(t.values().iter().map(|v| ValueId::pack(*v)));
        if self.find_tuple_row(hash, &t).is_some() {
            return false;
        }
        let row = self.new_row_id();
        for (i, v) in t.values().iter().enumerate() {
            let id = ValueId::pack(*v);
            self.columns[i].push(id);
            self.index[i].insert(id, row);
            if id.is_null() {
                self.null_entries += 1;
            }
        }
        self.finish_insert(row, hash, epoch);
        true
    }

    /// Insert a row given as packed ids — the zero-copy twin of
    /// [`Relation::insert_at`], used by the re-insertion path of
    /// [`Relation::rewrite_values`] and by bulk copies between instances
    /// (snapshot load, union, restriction) that would otherwise
    /// materialize a [`Tuple`] per row.
    ///
    /// # Panics
    /// Panics if `ids.len()` differs from the relation's arity.
    pub fn insert_ids_at(&mut self, ids: &[ValueId], epoch: u64) -> bool {
        assert_eq!(
            ids.len(),
            self.arity as usize,
            "arity mismatch inserting packed row"
        );
        let hash = hash_ids(ids.iter().copied());
        let found = self
            .set
            .find(hash, |r| {
                self.columns
                    .iter()
                    .zip(ids)
                    .all(|(c, id)| c[r as usize] == *id)
            })
            .is_some();
        if found {
            return false;
        }
        let row = self.new_row_id();
        for (i, id) in ids.iter().enumerate() {
            self.columns[i].push(*id);
            self.index[i].insert(*id, row);
            if id.is_null() {
                self.null_entries += 1;
            }
        }
        self.finish_insert(row, hash, epoch);
        true
    }

    /// The next row id, checked against the id space (two top values are
    /// reserved as open-addressing sentinels).
    fn new_row_id(&self) -> u32 {
        let row = u32::try_from(self.epochs.len()).expect("relation overflow");
        assert!(row < u32::MAX - 1, "relation overflow");
        row
    }

    /// Common tail of the insertion paths: stamp the epoch, mark live,
    /// record membership, and bump the counters.
    fn finish_insert(&mut self, row: u32, hash: u64, epoch: u64) {
        let epoch = epoch.max(self.last_epoch);
        self.last_epoch = epoch;
        self.index_entries += self.arity as usize;
        let columns = &self.columns;
        self.set.insert(hash, row, |r| row_hash(columns, r));
        self.live.push(true);
        self.epochs.push(epoch);
        self.live_count += 1;
    }

    /// The live row storing exactly `t`, via the membership set.
    fn find_tuple_row(&self, hash: u64, t: &Tuple) -> Option<u32> {
        self.set.find(hash, |r| {
            self.columns
                .iter()
                .zip(t.values())
                .all(|(c, v)| c[r as usize] == ValueId::pack(*v))
        })
    }

    /// Membership test.
    pub fn contains(&self, t: &Tuple) -> bool {
        if t.arity() != self.arity as usize {
            return false;
        }
        let hash = hash_ids(t.values().iter().map(|v| ValueId::pack(*v)));
        self.find_tuple_row(hash, t).is_some()
    }

    /// Membership test on an already-packed row ([`Relation::contains`]
    /// without the tuple materialization). Rows of the wrong arity are
    /// simply absent.
    pub fn contains_ids(&self, ids: &[ValueId]) -> bool {
        if ids.len() != self.arity as usize {
            return false;
        }
        let hash = hash_ids(ids.iter().copied());
        self.set
            .find(hash, |r| {
                self.columns
                    .iter()
                    .zip(ids)
                    .all(|(c, id)| c[r as usize] == *id)
            })
            .is_some()
    }

    /// Remove a tuple; returns `true` if it was present. Removal is lazy —
    /// the slot is tombstoned in O(arity) — with two compaction triggers
    /// that keep long insert/remove cycles (the search solvers backtrack
    /// millions of times) from accumulating garbage: an index posting is
    /// rebuilt once half its ids are dead, and the whole relation is
    /// rebuilt once dead slots outnumber live ones.
    pub fn remove(&mut self, t: &Tuple) -> bool {
        if t.arity() != self.arity as usize {
            return false;
        }
        let hash = hash_ids(t.values().iter().map(|v| ValueId::pack(*v)));
        let Some(row) = self.find_tuple_row(hash, t) else {
            return false;
        };
        self.set.remove(hash, row);
        self.kill_row(row);
        self.maybe_compact_storage();
        true
    }

    /// Tombstone a live row: flip the liveness bit and notify each
    /// attribute's index, which reclaims or compacts its posting as needed.
    /// The membership-set entry must already be gone. Row ids stay valid
    /// (no slots move).
    fn kill_row(&mut self, row: u32) {
        debug_assert!(self.live[row as usize], "killing a dead row");
        self.live[row as usize] = false;
        self.live_count -= 1;
        self.dead += 1;
        let live = &self.live;
        for (i, ix) in self.index.iter_mut().enumerate() {
            let id = self.columns[i][row as usize];
            self.index_entries -= ix.mark_dead(id, row, |r| live[r as usize]);
            if id.is_null() {
                self.null_entries -= 1;
            }
        }
    }

    /// Rebuild columns, epochs, and indexes keeping live rows in insertion
    /// order, once tombstones outnumber live rows. Invalidates outstanding
    /// row ids — callers must not hold ids across `&mut self` calls.
    fn maybe_compact_storage(&mut self) {
        if self.epochs.len() < COMPACT_MIN_SLOTS || 2 * self.dead <= self.epochs.len() {
            return;
        }
        let old_columns: Vec<Vec<ValueId>> = self
            .columns
            .iter_mut()
            .map(std::mem::take)
            .collect::<Vec<_>>();
        let old_epochs = std::mem::take(&mut self.epochs);
        let old_live = std::mem::take(&mut self.live);
        // Fresh tables rather than cleared ones: the rebuild is the one
        // point where a shrunken relation gives its table memory back.
        self.set = RowSet::default();
        for ix in &mut self.index {
            *ix = ColumnIndex::default();
        }
        self.null_entries = 0;
        for c in &mut self.columns {
            c.reserve(self.live_count);
        }
        self.epochs.reserve(self.live_count);
        for slot in 0..old_epochs.len() {
            if !old_live[slot] {
                continue;
            }
            let row = u32::try_from(self.epochs.len()).expect("relation overflow");
            for (i, c) in old_columns.iter().enumerate() {
                let id = c[slot];
                self.columns[i].push(id);
                self.index[i].insert(id, row);
                if id.is_null() {
                    self.null_entries += 1;
                }
            }
            let hash = row_hash(&self.columns, row);
            let columns = &self.columns;
            self.set.insert(hash, row, |r| row_hash(columns, r));
            self.live.push(true);
            self.epochs.push(old_epochs[slot]);
        }
        self.index_entries = self.live_count * self.arity as usize;
        self.dead = 0;
        // Compaction is the natural checkpoint for the incremental
        // counters: a drifting counter would silently skew every governed
        // memory budget, so recount everything in debug builds.
        debug_assert_eq!(self.heap_bytes(), self.recount_heap_bytes());
    }

    /// Materialize row `r` as a [`Tuple`] (no liveness check — internal).
    fn tuple_at(&self, r: u32) -> Tuple {
        Tuple::new(
            self.columns
                .iter()
                .map(|c| c[r as usize].value())
                .collect::<Vec<_>>(),
        )
    }

    /// Iterate over live tuples in insertion order (materialized from the
    /// columns on the fly; hot paths iterate row ids and probe
    /// [`Relation::value_id_at`] instead).
    pub fn iter(&self) -> impl Iterator<Item = Tuple> + '_ {
        self.live_row_ids().map(|r| self.tuple_at(r))
    }

    /// Visit every live row in insertion order as `(row id, packed ids)`,
    /// gathering each row into one reused scratch buffer — the arena-backed
    /// twin of [`Relation::iter`], allocating zero tuples. Returning
    /// [`ControlFlow::Break`] from the callback stops the scan early.
    pub fn for_each_row(
        &self,
        mut f: impl FnMut(u32, &[ValueId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        self.for_each_row_in_window(0, u64::MAX, &mut f)
    }

    /// [`Relation::for_each_row`] restricted to live rows whose insertion
    /// epoch lies in `[lo, hi)` — the zero-copy delta view.
    pub fn for_each_row_in_window(
        &self,
        lo: u64,
        hi: u64,
        f: &mut impl FnMut(u32, &[ValueId]) -> ControlFlow<()>,
    ) -> ControlFlow<()> {
        let start = self.first_row_at(lo);
        let end = self.first_row_at(hi);
        let mut buf: Vec<ValueId> = Vec::with_capacity(self.arity as usize);
        for r in start..end {
            if !self.live[r] {
                continue;
            }
            buf.clear();
            buf.extend(self.columns.iter().map(|c| c[r]));
            f(u32::try_from(r).expect("relation overflow"), &buf)?;
        }
        ControlFlow::Continue(())
    }

    /// Row ids of live rows, in insertion order.
    pub fn live_row_ids(&self) -> impl Iterator<Item = u32> + '_ {
        self.live
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(|(r, _)| u32::try_from(r).expect("relation overflow"))
    }

    /// The packed value at attribute `attr` of row `r` — the zero-copy
    /// probe the homomorphism search matches candidates with.
    ///
    /// # Panics
    /// Panics if `r` or `attr` is out of bounds (dead rows keep their
    /// values and may be read).
    pub fn value_id_at(&self, r: u32, attr: u16) -> ValueId {
        self.columns[attr as usize][r as usize]
    }

    /// Row ids of live rows having `v` at attribute `attr`. The returned
    /// ids are valid arguments to [`Relation::row`] until the next `&mut`
    /// call (a compaction may renumber rows).
    pub fn rows_with(&self, attr: u16, v: Value) -> impl Iterator<Item = u32> + '_ {
        self.rows_with_id(attr, ValueId::pack(v))
    }

    /// [`Relation::rows_with`] keyed by an already-packed id.
    pub fn rows_with_id(&self, attr: u16, id: ValueId) -> impl Iterator<Item = u32> + '_ {
        self.index[attr as usize]
            .rows(id)
            .filter(move |r| self.live[*r as usize])
    }

    /// Number of live rows having `v` at attribute `attr`. Exact and O(1):
    /// the per-posting dead counters make up for the lazily deleted ids.
    pub fn count_with(&self, attr: u16, v: Value) -> usize {
        self.count_with_id(attr, ValueId::pack(v))
    }

    /// [`Relation::count_with`] keyed by an already-packed id.
    pub fn count_with_id(&self, attr: u16, id: ValueId) -> usize {
        self.index[attr as usize].count_live(id, |r| self.live[r as usize])
    }

    /// The tuple at row id `r`, if live (materialized from the columns).
    pub fn row(&self, r: u32) -> Option<Tuple> {
        (self.live.get(r as usize) == Some(&true)).then(|| self.tuple_at(r))
    }

    /// The insertion epoch of row id `r` (dead rows keep their stamp).
    pub fn epoch_of(&self, r: u32) -> u64 {
        self.epochs[r as usize]
    }

    /// First row id whose epoch is `>= epoch` (epochs are non-decreasing,
    /// so all rows from here on belong to the suffix stamped at or after
    /// `epoch`).
    fn first_row_at(&self, epoch: u64) -> usize {
        self.epochs.partition_point(|e| *e < epoch)
    }

    /// Upper bound on the number of live rows with epoch in `[lo, hi)`
    /// (counts tombstones; O(log n)).
    pub fn window_size(&self, lo: u64, hi: u64) -> usize {
        self.first_row_at(hi).saturating_sub(self.first_row_at(lo))
    }

    /// Row ids of live rows whose insertion epoch lies in `[lo, hi)`, in
    /// insertion order — the delta view.
    pub fn row_ids_in_window(&self, lo: u64, hi: u64) -> impl Iterator<Item = u32> + '_ {
        let start = self.first_row_at(lo);
        let end = self.first_row_at(hi);
        self.live[start..end]
            .iter()
            .enumerate()
            .filter(|(_, l)| **l)
            .map(move |(off, _)| u32::try_from(start + off).expect("relation overflow"))
    }

    /// Live rows whose insertion epoch lies in `[lo, hi)`, as
    /// `(row id, tuple)` pairs in insertion order. Materializes each tuple;
    /// hot paths use [`Relation::row_ids_in_window`].
    pub fn rows_in_window(&self, lo: u64, hi: u64) -> impl Iterator<Item = (u32, Tuple)> + '_ {
        self.row_ids_in_window(lo, hi)
            .map(|r| (r, self.tuple_at(r)))
    }

    /// Total slot count including tombstones (storage introspection, used
    /// by the compaction regression tests).
    pub fn slot_count(&self) -> usize {
        self.epochs.len()
    }

    /// Total number of index entries including dead ones (storage
    /// introspection, used by the compaction regression tests). O(1):
    /// reads the incrementally maintained counter.
    pub fn index_entry_count(&self) -> usize {
        debug_assert_eq!(
            self.index_entries,
            self.index
                .iter()
                .map(ColumnIndex::recount_entries)
                .sum::<usize>(),
            "index_entries counter out of sync"
        );
        self.index_entries
    }

    /// Heap footprint of this relation in bytes, O(arity).
    ///
    /// This is the figure the runtime governor charges against a memory
    /// budget, computed from the actual allocation sizes: column, epoch,
    /// and liveness capacities (tombstones included — their storage is
    /// still allocated), the membership table, and the per-attribute index
    /// tables (whose posting storage is charged from the incremental
    /// `index_entries` counter with growth-slack headroom). Exact up to
    /// allocator rounding — a step change from the row-oriented layout's
    /// per-tuple `Arc` estimates.
    pub fn heap_bytes(&self) -> usize {
        let slot_bytes: usize = self
            .columns
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<ValueId>())
            .sum::<usize>()
            + self.epochs.capacity() * std::mem::size_of::<u64>()
            + self.live.capacity();
        slot_bytes
            + self.set.heap_bytes()
            + self
                .index
                .iter()
                .map(ColumnIndex::heap_bytes)
                .sum::<usize>()
    }

    /// Recompute [`Relation::heap_bytes`] from a full structure scan
    /// instead of the incremental counters (drift diagnostics: the
    /// heap-accounting property tests assert this equals `heap_bytes`).
    /// Also recounts the liveness, null, and index-entry counters and
    /// compares them to their incremental twins in debug builds.
    pub fn recount_heap_bytes(&self) -> usize {
        debug_assert_eq!(
            self.live_count,
            self.live.iter().filter(|l| **l).count(),
            "live_count counter out of sync"
        );
        debug_assert_eq!(
            self.set.len(),
            self.live_count,
            "membership set out of sync with liveness"
        );
        debug_assert_eq!(
            self.index_entries,
            self.index
                .iter()
                .map(ColumnIndex::entry_count)
                .sum::<usize>(),
            "per-index entry counters out of sync"
        );
        debug_assert_eq!(
            self.dead,
            self.live.iter().filter(|l| !**l).count(),
            "dead counter out of sync"
        );
        debug_assert_eq!(
            self.null_entries,
            self.columns
                .iter()
                .flat_map(|c| c.iter().enumerate())
                .filter(|(r, id)| self.live[*r] && id.is_null())
                .count(),
            "null_entries counter out of sync"
        );
        debug_assert_eq!(
            self.index_entries,
            self.index
                .iter()
                .map(ColumnIndex::recount_entries)
                .sum::<usize>(),
            "index_entries counter out of sync"
        );
        let slot_bytes: usize = self
            .columns
            .iter()
            .map(|c| c.capacity() * std::mem::size_of::<ValueId>())
            .sum::<usize>()
            + self.epochs.capacity() * std::mem::size_of::<u64>()
            + self.live.capacity();
        slot_bytes
            + self.set.heap_bytes()
            + self
                .index
                .iter()
                .map(ColumnIndex::recount_heap_bytes)
                .sum::<usize>()
    }

    /// Replace every occurrence of value `from` by `to` in all rows.
    /// Rewritten rows that collide with existing ones are merged, and are
    /// stamped with the relation's current epoch.
    pub fn substitute(&mut self, from: Value, to: Value) {
        self.substitute_at(from, to, self.last_epoch);
    }

    /// [`Relation::substitute`] stamping rewritten rows at `epoch`.
    pub fn substitute_at(&mut self, from: Value, to: Value, epoch: u64) {
        if from == to {
            return;
        }
        self.rewrite_values(
            std::slice::from_ref(&from),
            |v| if v == from { to } else { v },
            epoch,
        );
    }

    /// Rewrite every row containing one of the `touched` values through
    /// `resolve`, re-inserting the images stamped at `epoch` (targeted
    /// index repair: only the rows reachable from the touched values'
    /// index postings are visited). Returns the number of rewritten rows.
    /// This is the bulk form of [`Relation::substitute`] used to apply a
    /// whole union-find of egd merges in one pass.
    pub fn rewrite_values(
        &mut self,
        touched: &[Value],
        resolve: impl Fn(Value) -> Value,
        epoch: u64,
    ) -> usize {
        let mut affected: Vec<u32> = Vec::new();
        for attr in 0..self.arity {
            for v in touched {
                affected.extend(self.rows_with(attr, *v));
            }
        }
        affected.sort_unstable();
        affected.dedup();
        let mut rewritten: Vec<Vec<ValueId>> = Vec::new();
        for r in affected {
            let old_ids: Vec<ValueId> = self
                .columns
                .iter()
                .map(|c| c[r as usize])
                .collect::<Vec<_>>();
            let new_ids: Vec<ValueId> = old_ids
                .iter()
                .map(|id| ValueId::pack(resolve(id.value())))
                .collect();
            if new_ids == old_ids {
                continue; // stale index entry: the row no longer needs rewriting
            }
            let old_hash = hash_ids(old_ids.iter().copied());
            self.set.remove(old_hash, r);
            self.kill_row(r);
            rewritten.push(new_ids);
        }
        let count = rewritten.len();
        for ids in rewritten {
            self.insert_ids_at(&ids, epoch);
        }
        self.maybe_compact_storage();
        count
    }

    /// All values occurring in live rows (column-major order, with
    /// repetitions).
    pub fn values(&self) -> impl Iterator<Item = Value> + '_ {
        self.columns.iter().flat_map(move |c| {
            c.iter()
                .enumerate()
                .filter(|(r, _)| self.live[*r])
                .map(|(_, id)| id.value())
        })
    }
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        self.arity == other.arity
            && self.live_count == other.live_count
            && self.live_row_ids().all(|r| {
                let hash = row_hash(&self.columns, r);
                other
                    .set
                    .find(hash, |s| {
                        self.columns
                            .iter()
                            .zip(&other.columns)
                            .all(|(a, b)| a[r as usize] == b[s as usize])
                    })
                    .is_some()
            })
    }
}

impl Eq for Relation {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::NullId;

    #[test]
    fn insert_deduplicates() {
        let mut r = Relation::new(2);
        assert!(r.insert(Tuple::consts(["a", "b"])));
        assert!(!r.insert(Tuple::consts(["a", "b"])));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["a", "b"])));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_panics() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a"]));
    }

    #[test]
    fn index_finds_rows() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        r.insert(Tuple::consts(["a", "c"]));
        r.insert(Tuple::consts(["d", "b"]));
        let rows: Vec<_> = r
            .rows_with(0, Value::constant("a"))
            .filter_map(|i| r.row(i))
            .collect();
        assert_eq!(rows.len(), 2);
        assert_eq!(r.count_with(1, Value::constant("b")), 2);
        assert_eq!(r.count_with(1, Value::constant("zzz")), 0);
    }

    #[test]
    fn value_ids_are_readable_per_cell() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        assert_eq!(r.value_id_at(0, 0).value(), Value::constant("a"));
        assert_eq!(r.value_id_at(0, 1).value(), Value::constant("b"));
    }

    #[test]
    fn substitute_rewrites_and_merges() {
        let n = Value::Null(NullId(0));
        let mut r = Relation::new(2);
        r.insert(Tuple::new(vec![n, Value::constant("b")]));
        r.insert(Tuple::consts(["a", "b"]));
        assert_eq!(r.len(), 2);
        // Substituting the null by "a" makes the two tuples collide.
        r.substitute(n, Value::constant("a"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["a", "b"])));
    }

    #[test]
    fn remove_deletes_and_keeps_index_consistent() {
        let mut r = Relation::new(2);
        r.insert(Tuple::consts(["a", "b"]));
        r.insert(Tuple::consts(["a", "c"]));
        assert!(r.remove(&Tuple::consts(["a", "b"])));
        assert!(!r.remove(&Tuple::consts(["a", "b"])));
        assert_eq!(r.len(), 1);
        assert!(!r.contains(&Tuple::consts(["a", "b"])));
        // Index lookups skip the tombstone.
        assert_eq!(r.rows_with(0, Value::constant("a")).count(), 1);
        // Re-insertion works after removal.
        assert!(r.insert(Tuple::consts(["a", "b"])));
        assert_eq!(r.rows_with(0, Value::constant("a")).count(), 2);
    }

    #[test]
    fn substitute_noop_when_absent() {
        let mut r = Relation::new(1);
        r.insert(Tuple::consts(["x"]));
        r.substitute(Value::constant("q"), Value::constant("z"));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::consts(["x"])));
    }

    #[test]
    fn substitute_handles_repeated_occurrences() {
        let n = Value::Null(NullId(5));
        let mut r = Relation::new(3);
        r.insert(Tuple::new(vec![n, n, Value::constant("c")]));
        r.substitute(n, Value::constant("z"));
        assert!(r.contains(&Tuple::consts(["z", "z", "c"])));
        assert_eq!(r.len(), 1);
        // Index remains usable after substitution.
        assert_eq!(r.rows_with(0, Value::constant("z")).count(), 1);
        assert_eq!(r.rows_with(0, n).count(), 0);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let mut a = Relation::new(1);
        a.insert(Tuple::consts(["x"]));
        a.insert(Tuple::consts(["y"]));
        let mut b = Relation::new(1);
        b.insert(Tuple::consts(["y"]));
        b.insert(Tuple::consts(["x"]));
        assert_eq!(a, b);
    }

    #[test]
    fn epochs_partition_the_rows() {
        let mut r = Relation::new(1);
        r.insert_at(Tuple::consts(["a"]), 0);
        r.insert_at(Tuple::consts(["b"]), 1);
        r.insert_at(Tuple::consts(["c"]), 1);
        r.insert_at(Tuple::consts(["d"]), 3);
        let delta: Vec<_> = r.rows_in_window(1, 3).map(|(_, t)| t).collect();
        assert_eq!(delta, vec![Tuple::consts(["b"]), Tuple::consts(["c"])]);
        assert_eq!(r.window_size(0, 1), 1);
        assert_eq!(r.window_size(3, u64::MAX), 1);
        assert_eq!(r.rows_in_window(0, u64::MAX).count(), 4);
        // Re-inserting an existing tuple does not move it into the delta.
        assert!(!r.insert_at(Tuple::consts(["a"]), 5));
        assert_eq!(r.window_size(4, u64::MAX), 0);
    }

    #[test]
    fn epochs_are_clamped_monotone() {
        let mut r = Relation::new(1);
        r.insert_at(Tuple::consts(["a"]), 7);
        // A lower stamp is clamped up so the epoch sequence stays sorted.
        r.insert_at(Tuple::consts(["b"]), 2);
        assert_eq!(r.epoch_of(1), 7);
        assert_eq!(r.rows_in_window(7, 8).count(), 2);
    }

    #[test]
    fn insert_remove_cycles_do_not_grow_memory() {
        let mut r = Relation::new(2);
        // A few long-lived tuples sharing the churned value at attribute 0.
        for i in 0..4 {
            r.insert(Tuple::consts(["hot", &format!("keep{i}")]));
        }
        for i in 0..10_000 {
            let t = Tuple::consts(["hot", &format!("tmp{}", i % 3)]);
            r.insert(t.clone());
            r.remove(&t);
        }
        assert_eq!(r.len(), 4);
        // Tombstoned slots are compacted away, not accumulated.
        assert!(
            r.slot_count() <= 2 * COMPACT_MIN_SLOTS,
            "{}",
            r.slot_count()
        );
        // Index postings shed their dead ids too (the "hot" posting was
        // hit by every cycle).
        assert!(
            r.index_entry_count() <= 4 * COMPACT_MIN_SLOTS,
            "{}",
            r.index_entry_count()
        );
        assert_eq!(r.count_with(0, Value::constant("hot")), 4);
        assert_eq!(r.rows_with(0, Value::constant("hot")).count(), 4);
    }

    #[test]
    fn heap_estimate_tracks_growth_and_compaction() {
        let mut r = Relation::new(2);
        assert_eq!(r.heap_bytes(), 0);
        for i in 0..100 {
            r.insert(Tuple::consts([&format!("a{i}"), "b"]));
        }
        let full = r.heap_bytes();
        // Lower bound: 100 rows of 2 packed values can't fit in fewer
        // bytes than their raw column payload.
        assert!(full >= 100 * 2 * std::mem::size_of::<ValueId>(), "{full}");
        // Deletion eventually gives the memory back (full compaction).
        for i in 0..100 {
            r.remove(&Tuple::consts([&format!("a{i}"), "b"]));
        }
        assert!(r.heap_bytes() < full / 2, "{}", r.heap_bytes());
        // The incremental counters survived the churn.
        assert_eq!(r.heap_bytes(), r.recount_heap_bytes());
        let _ = r.index_entry_count();
    }

    #[test]
    fn index_counter_stays_in_sync_under_rewrites() {
        let n = Value::Null(NullId(9));
        let mut r = Relation::new(2);
        for i in 0..50 {
            r.insert(Tuple::new(vec![n, Value::constant(format!("v{i}"))]));
        }
        r.substitute(n, Value::constant("a"));
        let _ = r.index_entry_count(); // debug-asserts counter consistency
        assert_eq!(r.len(), 50);
        assert_eq!(r.heap_bytes(), r.recount_heap_bytes());
    }

    #[test]
    fn compaction_preserves_insertion_order_and_epochs() {
        let mut r = Relation::new(1);
        for i in 0u64..40 {
            r.insert_at(Tuple::consts([&format!("v{i}")]), i);
        }
        for i in 0..30 {
            r.remove(&Tuple::consts([&format!("v{i}")]));
        }
        let left: Vec<_> = r.iter().collect();
        assert_eq!(left.len(), 10);
        assert_eq!(left[0], Tuple::consts(["v30"]));
        assert_eq!(left[9], Tuple::consts(["v39"]));
        // Epoch windows still line up after the rebuild.
        assert_eq!(r.rows_in_window(35, u64::MAX).count(), 5);
    }

    #[test]
    fn groundness_counter_tracks_null_occurrences() {
        let n = Value::Null(NullId(1));
        let mut r = Relation::new(2);
        assert!(!r.has_nulls());
        r.insert(Tuple::new(vec![n, Value::constant("b")]));
        assert!(r.has_nulls());
        r.substitute(n, Value::constant("a"));
        assert!(!r.has_nulls());
        r.insert(Tuple::new(vec![n, n]));
        assert!(r.has_nulls());
        r.remove(&Tuple::new(vec![n, n]));
        assert!(!r.has_nulls());
    }

    #[test]
    fn arity_zero_relations_work() {
        let mut r = Relation::new(0);
        assert!(r.insert(Tuple::new(Vec::new())));
        assert!(!r.insert(Tuple::new(Vec::new())));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&Tuple::new(Vec::new())));
        assert!(r.remove(&Tuple::new(Vec::new())));
        assert!(r.is_empty());
    }
}
